//! A synthetic integrated-modular-avionics (IMA) suite.
//!
//! The paper motivates the framework with flight-control integration:
//! "the integration for flight control SW involves display, sensor,
//! collision avoidance, and navigation SW onto a shared platform" (its
//! footnote cites the Boeing 777 AIMS). No real avionics load is
//! available, so this module provides a synthetic suite with the same
//! *shape*: mixed criticality (flight-critical TMR autopilot down to
//! cabin systems), location-bound resources (display head, radio), and a
//! sensor→control→display influence backbone. The attribute ranges are
//! plausible for a 50 ms minor frame (1 tick = 1 ms) but are synthetic.

use fcm_alloc::replication::{expand_replicas, Expansion};
use fcm_alloc::sw::{SwGraph, SwGraphBuilder};
use fcm_alloc::{HwGraph, HwNode};
use fcm_core::{AttributeSet, FactorKind, FaultTolerance};
use fcm_graph::NodeIdx;
use fcm_sim::model::{MediumId, SchedulingPolicy, SystemSpec, SystemSpecBuilder, TaskId};
use fcm_sim::SimError;

/// Index of each function in the suite graph (pre-expansion).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SuiteNodes {
    /// TMR flight-critical control laws.
    pub autopilot: NodeIdx,
    /// Duplex collision avoidance.
    pub collision: NodeIdx,
    /// Duplex sensor fusion.
    pub sensors: NodeIdx,
    /// Navigation / flight management.
    pub nav: NodeIdx,
    /// Primary flight display manager (needs the `display` resource).
    pub display: NodeIdx,
    /// Datalink manager (needs the `radio` resource).
    pub datalink: NodeIdx,
    /// Maintenance logging.
    pub maintenance: NodeIdx,
    /// Cabin systems.
    pub cabin: NodeIdx,
}

/// Builds the eight-function suite graph.
pub fn suite() -> (SwGraph, SuiteNodes) {
    let mut b = SwGraphBuilder::new();
    let autopilot = b.add_process(
        "autopilot",
        AttributeSet::default()
            .with_criticality(10)
            .with_fault_tolerance(FaultTolerance::TMR)
            .with_timing(0, 20, 5)
            .with_throughput(1.5),
    );
    let collision = b.add_process(
        "collision",
        AttributeSet::default()
            .with_criticality(9)
            .with_fault_tolerance(FaultTolerance::DUPLEX)
            .with_timing(0, 25, 6)
            .with_throughput(1.0),
    );
    let sensors = b.add_process(
        "sensors",
        AttributeSet::default()
            .with_criticality(8)
            .with_fault_tolerance(FaultTolerance::DUPLEX)
            .with_timing(0, 15, 4)
            .with_throughput(2.0),
    );
    let nav = b.add_process(
        "nav",
        AttributeSet::default()
            .with_criticality(7)
            .with_timing(5, 40, 6)
            .with_throughput(0.8),
    );
    let display = b.add_process(
        "display",
        AttributeSet::default()
            .with_criticality(5)
            .with_timing(10, 60, 8)
            .with_throughput(0.5),
    );
    let datalink = b.add_process(
        "datalink",
        AttributeSet::default()
            .with_criticality(4)
            .with_timing(0, 80, 10)
            .with_security(3)
            .with_throughput(0.4),
    );
    let maintenance = b.add_process(
        "maintenance",
        AttributeSet::default()
            .with_criticality(2)
            .with_timing(20, 200, 15)
            .with_throughput(0.2),
    );
    let cabin = b.add_process(
        "cabin",
        AttributeSet::default()
            .with_criticality(1)
            .with_timing(0, 150, 10)
            .with_throughput(0.3),
    );
    // Resource requirements.
    {
        let g = &mut b;
        // The builder exposes nodes only through the built graph; set the
        // requirements after build instead (see below).
        let _ = g;
    }
    // Influence backbone: sensors feed control; control feeds display.
    for (from, to, w) in [
        (sensors, autopilot, 0.6),
        (sensors, collision, 0.5),
        (sensors, nav, 0.4),
        (collision, autopilot, 0.35),
        (nav, autopilot, 0.3),
        (nav, display, 0.3),
        (collision, display, 0.25),
        (autopilot, display, 0.2),
        (datalink, nav, 0.15),
        (maintenance, datalink, 0.1),
        (cabin, maintenance, 0.1),
        (display, maintenance, 0.05),
    ] {
        b.add_influence(from, to, w)
            .expect("static influences valid");
    }
    let mut g = b.build();
    g.node_mut(display)
        .expect("node exists")
        .required_resources
        .insert("display".into());
    g.node_mut(datalink)
        .expect("node exists")
        .required_resources
        .insert("radio".into());
    (
        g,
        SuiteNodes {
            autopilot,
            collision,
            sensors,
            nav,
            display,
            datalink,
            maintenance,
            cabin,
        },
    )
}

/// The replica-expanded suite (12 nodes: 3 + 2 + 2 + 5).
pub fn expanded_suite() -> (Expansion, SuiteNodes) {
    let (g, nodes) = suite();
    (expand_replicas(&g), nodes)
}

/// A six-cabinet IMA platform: a complete network with the display head
/// on `hw0` and the radio on `hw1`.
pub fn platform() -> HwGraph {
    let nodes = vec![
        HwNode::new("hw0").with_resource("display"),
        HwNode::new("hw1").with_resource("radio"),
        HwNode::new("hw2"),
        HwNode::new("hw3"),
        HwNode::new("hw4"),
        HwNode::new("hw5"),
    ];
    let mut links = Vec::new();
    for a in 0..6 {
        for b in (a + 1)..6 {
            links.push((a, b, 1.0));
        }
    }
    HwGraph::new(nodes, &links)
}

/// Task/medium handles of the simulated control loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ControlLoop {
    /// Sensor acquisition task.
    pub sensors: TaskId,
    /// Autopilot control-law task.
    pub autopilot: TaskId,
    /// Display refresh task.
    pub display: TaskId,
    /// Low-criticality maintenance task sharing the autopilot's CPU.
    pub maintenance: TaskId,
    /// Shared-memory sensor image.
    pub sensor_shm: MediumId,
    /// Command message channel.
    pub cmd_channel: MediumId,
}

/// A two-processor executable model of the suite's control loop, used by
/// the fault-injection experiments (E3, E7):
///
/// * processor 0: `sensors` (10 ms period) and `autopilot` (20 ms period)
///   plus the `maintenance` task (released just before the autopilot, so
///   a non-preemptible overrun blocks it) — the co-location that makes
///   timing faults interesting;
/// * processor 1: `display` (40 ms period);
/// * media: a shared-memory sensor image (sensors → autopilot) and a
///   command channel (autopilot → display).
///
/// # Errors
///
/// Propagates [`SimError`] from the builder (cannot occur for the static
/// values used here unless the crate is modified).
pub fn control_loop_system(
    policy: SchedulingPolicy,
) -> Result<(SystemSpec, ControlLoop), SimError> {
    let mut b = SystemSpecBuilder::new(2);
    b.policy(policy);
    let sensor_shm = b.add_medium("sensor_image", FactorKind::SharedMemory, 0.8)?;
    let cmd_channel = b.add_medium("cmd_bus", FactorKind::MessagePassing, 0.6)?;
    let sensors = b
        .task("sensors", 0)
        .periodic(10, 0, 2)
        .writes(sensor_shm)
        .build()?;
    let autopilot = b
        .task("autopilot", 0)
        .periodic(20, 3, 4)
        .reads(sensor_shm)
        .writes(cmd_channel)
        .vulnerability(0.7)
        .build()?;
    let maintenance = b.task("maintenance", 0).periodic(50, 1, 3).build()?;
    let display = b
        .task("display", 1)
        .periodic(40, 8, 5)
        .reads(cmd_channel)
        .vulnerability(0.5)
        .build()?;
    let spec = b.build()?;
    Ok((
        spec,
        ControlLoop {
            sensors,
            autopilot,
            display,
            maintenance,
            sensor_shm,
            cmd_channel,
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcm_alloc::{heuristics, mapping};
    use fcm_core::ImportanceWeights;
    use fcm_sim::InfluenceCampaign;

    #[test]
    fn suite_shape() {
        let (g, nodes) = suite();
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.edge_count(), 12);
        let ap = g.node(nodes.autopilot).unwrap();
        assert_eq!(ap.attributes.fault_tolerance, FaultTolerance::TMR);
        assert!(g
            .node(nodes.display)
            .unwrap()
            .required_resources
            .contains("display"));
    }

    #[test]
    fn expansion_yields_twelve_nodes() {
        let (ex, _) = expanded_suite();
        assert_eq!(ex.graph.node_count(), 12);
    }

    #[test]
    fn suite_maps_onto_the_platform_end_to_end() {
        let (ex, _) = expanded_suite();
        let hw = platform();
        let c = heuristics::h1(&ex.graph, 6).unwrap();
        let m = mapping::approach_a(&ex.graph, &c, &hw, &ImportanceWeights::default()).unwrap();
        m.validate(&ex.graph, &c, &hw).unwrap();
    }

    #[test]
    fn platform_has_located_resources() {
        let hw = platform();
        assert_eq!(hw.len(), 6);
        assert!(hw.node(NodeIdx(0)).unwrap().resources.contains("display"));
        assert!(hw.node(NodeIdx(1)).unwrap().resources.contains("radio"));
        assert!(hw.is_connected());
    }

    #[test]
    fn control_loop_runs_cleanly_without_injection() {
        let (spec, _) = control_loop_system(SchedulingPolicy::PreemptiveEdf).unwrap();
        let trace = fcm_sim::engine::run(&spec, &[], 0, 400);
        assert_eq!(trace.total_faults(), 0);
        assert!(trace.completions.iter().all(|&c| c > 0));
    }

    #[test]
    fn sensor_fault_reaches_the_display_through_the_chain() {
        let (spec, roles) = control_loop_system(SchedulingPolicy::PreemptiveEdf).unwrap();
        let campaign = InfluenceCampaign::new(spec, 400, 400, 5);
        let to_ap = campaign
            .measure_influence(roles.sensors, roles.autopilot)
            .unwrap();
        let to_display = campaign
            .measure_influence(roles.sensors, roles.display)
            .unwrap();
        // The chain attenuates: sensors influence the autopilot more than
        // the display, and both substantially.
        assert!(to_ap.estimate > to_display.estimate);
        assert!(to_display.estimate > 0.1);
    }

    #[test]
    fn maintenance_overrun_hurts_under_fifo_only() {
        use fcm_sim::{fault::FaultKind, Injection};
        for (policy, expect_victim_miss) in [
            (SchedulingPolicy::NonPreemptiveFifo, true),
            (SchedulingPolicy::PreemptiveEdf, false),
        ] {
            let (spec, roles) = control_loop_system(policy).unwrap();
            // Factor 5 keeps total utilisation below 1 (EDF absorbs it)
            // while the 15-tick non-preemptible block starves FIFO peers.
            let inj = Injection {
                at: 0,
                target: roles.maintenance,
                kind: FaultKind::TimingOverrun { factor: 5 },
            };
            let trace = fcm_sim::engine::run(&spec, &[inj], 3, 400);
            let victim_missed =
                trace.missed_deadline(roles.sensors) || trace.missed_deadline(roles.autopilot);
            assert_eq!(victim_missed, expect_victim_miss, "{policy:?}");
        }
    }
}
