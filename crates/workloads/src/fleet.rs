//! Large sparse fleet generator (the E15 sparse-engine experiment
//! input).
//!
//! Real integrations at fleet scale are sparse: tens of thousands of
//! FCMs, each influencing a handful of peers through shared services.
//! This generator models that shape directly as contiguous **service
//! blocks** of `hub_every` processes — inside a block, every process
//! reports to the block's hub and the block closes into an influence
//! ring (each block is one strongly connected component); hubs chain
//! forward block-to-block, and a seeded sprinkle of extra edges adds
//! short forward shortcuts. The strongly-connected-component
//! condensation is therefore a chain of blocks, reachability within a
//! truncated Eq. 3 walk stays local, and the CSR triples are emitted
//! without ever materialising an n×n matrix — a 50k-process fleet costs
//! O(nnz), not O(n²).
//!
//! Row sums are normalised to stay below [`SparseFleet::max_row_sum`]
//! (< 1), which guarantees the Eq. 3 walk series converges
//! geometrically ([`fcm_core::separation::SeparationAnalysis::series_converges`]
//! holds by construction).

use fcm_graph::{InfluenceMatrix, SparseMatrix};
use fcm_substrate::rng::Rng;

/// Parameters of the sparse fleet generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SparseFleet {
    /// Number of processes.
    pub processes: usize,
    /// Service-block size: one hub per contiguous block of this many
    /// processes (the hub is the block's first index).
    pub hub_every: usize,
    /// Expected random extra out-edges per process, on top of the
    /// block backbone. Extras jump forward by at most one block, so
    /// they never merge the per-block components.
    pub extra_edges_per_node: f64,
    /// Raw influence values are drawn uniformly from this range before
    /// row normalisation.
    pub influence_range: (f64, f64),
    /// Rows whose raw sum exceeds this are scaled down to it; keep it
    /// below 1 so the walk series always converges.
    pub max_row_sum: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SparseFleet {
    fn default() -> Self {
        SparseFleet {
            processes: 1024,
            hub_every: 64,
            extra_edges_per_node: 0.5,
            influence_range: (0.05, 0.7),
            max_row_sum: 0.9,
            seed: 7,
        }
    }
}

impl SparseFleet {
    /// Number of service blocks (= hubs) this configuration produces.
    #[must_use]
    pub fn hubs(&self) -> usize {
        self.processes.div_ceil(self.hub_every.max(1))
    }

    /// Builds the fleet's influence matrix in CSR form, deterministic
    /// in the seed. Duplicate extras collapse in
    /// [`SparseMatrix::from_triples`] by summation; the row-sum bound
    /// is enforced *after* building the matrix.
    #[must_use]
    pub fn matrix(&self) -> SparseMatrix {
        let n = self.processes;
        if n == 0 {
            return SparseMatrix::empty(0, 0);
        }
        let block = self.hub_every.max(1);
        let mut rng = Rng::seed_from_u64(self.seed);
        let (lo, hi) = self.influence_range;
        let lo = lo.max(1e-6);
        let hi = hi.min(1.0).max(lo);
        let draw = |rng: &mut Rng| if lo < hi { rng.gen_range(lo..hi) } else { lo };
        let mut triples: Vec<(usize, usize, f64)> = Vec::new();
        for i in 0..n {
            let start = i / block * block;
            let end = (start + block).min(n);
            // Ring successor inside the block: the wrap edge back to the
            // block start is what closes each block into one SCC.
            let succ = if i + 1 < end { i + 1 } else { start };
            if succ != i {
                triples.push((i, succ, draw(&mut rng)));
            }
            if i == start {
                // Hub → next block's hub: the condensation chain.
                if end < n {
                    triples.push((i, end, draw(&mut rng)));
                }
            } else {
                // Spoke → its hub.
                triples.push((i, start, draw(&mut rng)));
            }
        }
        // Seeded forward shortcuts, at most one block ahead — they add
        // local density without merging components.
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let extras = (n as f64 * self.extra_edges_per_node.max(0.0)) as usize;
        for _ in 0..extras {
            let from = rng.gen_range(0..n);
            let to = from + rng.gen_range(1..=block);
            if to < n {
                triples.push((from, to, draw(&mut rng)));
            }
        }
        let raw = SparseMatrix::from_triples(n, n, triples);
        normalize_rows(&raw, self.max_row_sum)
    }

    /// The fleet under the representation-selection policy — CSR for
    /// every configuration this generator is meant for (n ≥ 512 or
    /// density ≤ 5%), without a dense detour.
    #[must_use]
    pub fn influence(&self) -> InfluenceMatrix {
        let mut im = InfluenceMatrix::Sparse(self.matrix());
        im.rebalance();
        im
    }
}

/// Scales any row whose sum exceeds `max_row_sum` down to exactly that
/// bound (rows at or under the bound are kept bitwise as generated).
fn normalize_rows(m: &SparseMatrix, max_row_sum: f64) -> SparseMatrix {
    let mut triples: Vec<(usize, usize, f64)> = Vec::with_capacity(m.nnz());
    for i in 0..m.rows() {
        let (cols, vals) = m.row(i);
        let sum: f64 = vals.iter().sum();
        let scale = if sum > max_row_sum { max_row_sum / sum } else { 1.0 };
        for (&j, &v) in cols.iter().zip(vals) {
            triples.push((i, j, v * scale));
        }
    }
    SparseMatrix::from_triples(m.rows(), m.cols(), triples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let f = SparseFleet::default();
        assert_eq!(f.matrix(), f.matrix());
        let other = SparseFleet { seed: 8, ..SparseFleet::default() };
        assert_ne!(f.matrix(), other.matrix());
    }

    #[test]
    fn every_row_sum_stays_below_one() {
        let m = SparseFleet { processes: 2000, ..SparseFleet::default() }.matrix();
        for i in 0..m.rows() {
            let (_, vals) = m.row(i);
            let sum: f64 = vals.iter().sum();
            assert!(sum < 1.0, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn each_block_is_one_strongly_connected_component() {
        let f = SparseFleet { processes: 512, ..SparseFleet::default() };
        let comps = f.matrix().components();
        assert_eq!(comps.len(), f.hubs());
        for comp in &comps {
            assert_eq!(comp.len(), f.hub_every, "every block closes into one SCC");
        }
        // Reverse topological order: the last block (no outgoing chain
        // edge) condenses first.
        assert!(comps[0].contains(&(512 - 1)));
        assert!(comps.last().unwrap().contains(&0));
    }

    #[test]
    fn hubs_collect_their_block_fanin() {
        let f = SparseFleet { processes: 512, extra_edges_per_node: 0.0, ..SparseFleet::default() };
        let m = f.matrix();
        // Every non-hub spoke points at its hub: in-degree of column 0
        // is the block's spoke count plus the ring wrap edge.
        let fanin = m.entries().filter(|&(_, j, _)| j == 0).count();
        assert_eq!(fanin, f.hub_every - 1, "spokes 1..63 plus wrap, minus the double-counted pair");
    }

    #[test]
    fn truncated_walk_reach_stays_local() {
        let m = SparseFleet { processes: 2048, ..SparseFleet::default() }.matrix();
        let series = m.walk_series(8, 1e-12);
        // Reach is bounded by the block structure: nowhere near n per row.
        assert!(series.nnz() < 200 * m.rows(), "series nnz {}", series.nnz());
        assert!(series.nnz() > m.nnz(), "the walk does extend the direct edges");
    }

    #[test]
    fn fleet_is_sparse_and_policy_picks_csr() {
        let f = SparseFleet { processes: 1024, ..SparseFleet::default() };
        let im = f.influence();
        assert_eq!(im.repr(), "csr");
        assert!(im.density() < 0.05, "density {}", im.density());
        assert!(im.nnz() > 0);
    }

    #[test]
    fn ten_thousand_processes_build_quickly() {
        let m = SparseFleet { processes: 10_000, ..SparseFleet::default() }.matrix();
        assert_eq!(m.rows(), 10_000);
        // ~2 backbone edges per process + extras, far below dense n².
        assert!(m.nnz() > 10_000 && m.nnz() < 60_000, "nnz {}", m.nnz());
    }

    #[test]
    fn empty_and_tiny_fleets_are_well_formed() {
        assert_eq!(SparseFleet { processes: 0, ..SparseFleet::default() }.matrix().rows(), 0);
        let one = SparseFleet { processes: 1, ..SparseFleet::default() }.matrix();
        assert_eq!((one.rows(), one.nnz()), (1, 0));
    }
}
