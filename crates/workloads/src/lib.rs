//! Workload generators for the DDSI experiments.
//!
//! * [`paper`] — the worked example of the ICDCS'98 paper's §6: the eight
//!   processes of Table 1 with their criticality / fault-tolerance /
//!   timing attributes and the Fig. 3 influence graph (numerals lost to
//!   OCR are reconstructed; see the module docs for the invariants the
//!   reconstruction preserves);
//! * [`random`] — seeded random influence graphs with controllable size,
//!   density, attribute distributions (experiment E1's input);
//! * [`fleet`] — large sparse hub-and-spoke fleets emitted directly as
//!   CSR triples, never materialising n×n (the sparse-engine experiment
//!   E15's input);
//! * [`topologies`] — structured shapes (pipelines, hubs, bridged
//!   cliques, layers) for the heuristic-vs-structure experiment E10;
//! * [`materialize`] — turns a clustering + mapping into a runnable
//!   simulator system, closing the loop between the analytic model and
//!   execution (experiment E11);
//! * [`measured`] — the opposite direction: turns a measured influence
//!   matrix into the SW graph the heuristics consume, so the paper's
//!   workflow runs end-to-end from measurements (experiment E12);
//! * [`avionics`] — a synthetic integrated-modular-avionics suite in the
//!   spirit of the paper's motivating example ("the integration for
//!   flight control SW involves display, sensor, collision avoidance, and
//!   navigation SW onto a shared platform", with the Boeing 777 AIMS
//!   cited), both as a SW graph for allocation and as a simulator system
//!   for fault-injection experiments;
//! * [`automotive`] — a second domain instance (an ADAS suite with TMR
//!   planning, duplex braking, located sensors and a zonal ECU ring),
//!   demonstrating the framework beyond avionics;
//! * [`contracts`] — tightest-passing rely-guarantee contract synthesis
//!   for the paper/avionics/fleet workloads (the C017–C022 family's
//!   inputs).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod automotive;
pub mod avionics;
pub mod contracts;
pub mod fleet;
pub mod materialize;
pub mod measured;
pub mod paper;
pub mod random;
pub mod topologies;
