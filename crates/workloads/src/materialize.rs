//! Materialising an integrated mapping into an executable system.
//!
//! The allocation layer reasons about influence *analytically*; this
//! module closes the loop by turning a SW graph + clustering + mapping
//! into a runnable [`SystemSpec`] for the discrete-event simulator:
//!
//! * every SW process becomes a periodic task on its mapped processor,
//!   scheduled in a static frame so the baseline run is fault-free;
//! * every influence edge becomes a medium whose transmission equals the
//!   edge's influence value — shared memory within a processor, a message
//!   channel across processors, the latter attenuated by the HW
//!   fault-containment boundary factor.
//!
//! Experiment E11 uses this to *validate the reliability model against
//! the simulator*: the mapping that contains faults better analytically
//! must also leak fewer injected faults in execution.

use fcm_alloc::sw::SwEdge;
use fcm_alloc::{Clustering, Mapping, SwGraph};
use fcm_core::FactorKind;
use fcm_graph::NodeIdx;
use fcm_sched::Time;
use fcm_sim::model::{SchedulingPolicy, SystemSpec, SystemSpecBuilder, TaskId};
use fcm_sim::SimError;

/// A materialised system plus the SW-node → task correspondence.
#[derive(Debug, Clone)]
pub struct Materialized {
    /// The runnable system.
    pub spec: SystemSpec,
    /// `task_of[sw_node] = simulator task id`.
    pub task_of: Vec<TaskId>,
}

/// Recovery attributes wired into a materialised system: the watchdog
/// that detects node failures, the checkpoint interval every SW task
/// carries, and the retry policy that re-releases killed jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoverySpec {
    /// Watchdog heartbeat period (must be > 0).
    pub heartbeat_period: Time,
    /// Latency from the detecting heartbeat to the detection event.
    pub detection_latency: Time,
    /// Retry budget per killed job.
    pub max_retries: u32,
    /// Base backoff delay; attempt `k` waits `base << k` plus jitter.
    pub backoff_base: Time,
    /// Checkpoint interval for every SW task (0 disables checkpointing,
    /// so a restarted job loses all progress).
    pub checkpoint_every: Time,
}

impl Default for RecoverySpec {
    fn default() -> Self {
        RecoverySpec {
            heartbeat_period: 5,
            detection_latency: 1,
            max_retries: 3,
            backoff_base: 2,
            checkpoint_every: 1,
        }
    }
}

/// Builds an executable system from an integration outcome.
///
/// Tasks run in a static frame per processor (frame = 2 × the cluster's
/// total computation time), so without injections no deadline is ever
/// missed — faults observed later are attributable to the injection.
/// Cross-processor influence edges have their transmission multiplied by
/// `cross_node_attenuation`, mirroring the reliability model's HW
/// fault-containment boundaries.
///
/// # Errors
///
/// Propagates [`SimError`] from the system builder.
pub fn system_from_mapping(
    g: &SwGraph,
    clustering: &Clustering,
    mapping: &Mapping,
    policy: SchedulingPolicy,
    cross_node_attenuation: f64,
) -> Result<Materialized, SimError> {
    materialize(
        g,
        clustering,
        mapping,
        policy,
        cross_node_attenuation,
        false,
        None,
    )
}

/// As [`system_from_mapping`], but with the node-failure recovery
/// machinery wired in: the system gets a watchdog and retry policy, and
/// every SW task carries `recovery.checkpoint_every` as its checkpoint
/// interval, so injected `NodeCrash`/`NodeTransient` faults are detected
/// and the killed jobs re-released (failing over when the home node is
/// permanently dead).
///
/// # Errors
///
/// Propagates [`SimError`] from the system builder (e.g. a zero
/// heartbeat period or backoff base).
pub fn system_from_mapping_recoverable(
    g: &SwGraph,
    clustering: &Clustering,
    mapping: &Mapping,
    policy: SchedulingPolicy,
    cross_node_attenuation: f64,
    recovery: &RecoverySpec,
) -> Result<Materialized, SimError> {
    materialize(
        g,
        clustering,
        mapping,
        policy,
        cross_node_attenuation,
        false,
        Some(recovery),
    )
}

/// As [`system_from_mapping`], but with explicit **majority voters**: for
/// every bundle of influence edges from the replicas of one module to a
/// common target, a voter task is synthesised on the target's processor;
/// it reads the per-replica channels, outvotes minority corruption, and
/// forwards the voted value to the target. This materialises the
/// downstream half of the paper's TMR story ("replication and design
/// diversity"), so a single corrupt replica cannot reach its consumers.
///
/// # Errors
///
/// Propagates [`SimError`] from the system builder.
pub fn system_from_mapping_voted(
    g: &SwGraph,
    clustering: &Clustering,
    mapping: &Mapping,
    policy: SchedulingPolicy,
    cross_node_attenuation: f64,
) -> Result<Materialized, SimError> {
    materialize(
        g,
        clustering,
        mapping,
        policy,
        cross_node_attenuation,
        true,
        None,
    )
}

fn materialize(
    g: &SwGraph,
    clustering: &Clustering,
    mapping: &Mapping,
    policy: SchedulingPolicy,
    cross_node_attenuation: f64,
    voting: bool,
    recovery: Option<&RecoverySpec>,
) -> Result<Materialized, SimError> {
    use std::collections::BTreeMap;

    let processors = mapping
        .iter()
        .map(|(_, h)| h.index() + 1)
        .max()
        .unwrap_or(1);
    let mut b = SystemSpecBuilder::new(processors);
    b.policy(policy);
    if let Some(rec) = recovery {
        b.watchdog(rec.heartbeat_period, rec.detection_latency)?;
        b.retry(rec.max_retries, rec.backoff_base)?;
    }

    // Host processor per SW node.
    let mut host = vec![0usize; g.node_count()];
    for (ci, cluster) in clustering.clusters().iter().enumerate() {
        let h = mapping
            .hw_of(ci)
            .expect("mapping covers every cluster")
            .index();
        for &n in cluster {
            host[n.index()] = h;
        }
    }
    let medium_for = |b: &mut SystemSpecBuilder,
                      from: NodeIdx,
                      to: NodeIdx,
                      p: f64|
     -> Result<usize, SimError> {
        let same_host = host[from.index()] == host[to.index()];
        let (kind, transmission) = if same_host {
            (FactorKind::SharedMemory, p)
        } else {
            (
                FactorKind::MessagePassing,
                (p * cross_node_attenuation).clamp(0.0, 1.0),
            )
        };
        let from_name = &g.node(from).expect("edge endpoint exists").name;
        let to_name = &g.node(to).expect("edge endpoint exists").name;
        b.add_medium(format!("{from_name}->{to_name}"), kind, transmission)
    };

    // Media. In voted mode, edge bundles from one replica group to a
    // common target go through a synthesised voter.
    let mut reads: Vec<Vec<usize>> = vec![Vec::new(); g.node_count()];
    let mut writes: Vec<Vec<usize>> = vec![Vec::new(); g.node_count()];
    // (target node, voter input media, voted output medium)
    let mut voters: Vec<(NodeIdx, Vec<usize>, usize)> = Vec::new();
    // Bundle edges by (source replica group, target).
    let mut bundles: BTreeMap<(u32, usize), Vec<(NodeIdx, f64)>> = BTreeMap::new();
    for (_, e) in g.edges() {
        let SwEdge::Influence(p) = e.weight else {
            continue; // replica links carry no data
        };
        let group = g.node(e.from).expect("endpoint exists").replica_group;
        match group {
            Some(rg) if voting => {
                bundles
                    .entry((rg, e.to.index()))
                    .or_default()
                    .push((e.from, p));
            }
            _ => {
                let m = medium_for(&mut b, e.from, e.to, p)?;
                writes[e.from.index()].push(m);
                reads[e.to.index()].push(m);
            }
        }
    }
    for ((_, to), sources) in bundles {
        let to = NodeIdx(to);
        if sources.len() < 2 {
            // A lone replica edge needs no vote.
            for (from, p) in sources {
                let m = medium_for(&mut b, from, to, p)?;
                writes[from.index()].push(m);
                reads[to.index()].push(m);
            }
            continue;
        }
        let mut inputs = Vec::with_capacity(sources.len());
        for &(from, p) in &sources {
            let m = medium_for(&mut b, from, to, p)?;
            writes[from.index()].push(m);
            inputs.push(m);
        }
        let group_name = &g.node(sources[0].0).expect("endpoint exists").name;
        let to_name = &g.node(to).expect("endpoint exists").name;
        let voted = b.add_medium(
            format!("voted({group_name}..)->{to_name}"),
            FactorKind::SharedMemory,
            1.0,
        )?;
        reads[to.index()].push(voted);
        voters.push((to, inputs, voted));
    }

    // Tasks: a static frame per cluster keeps the baseline fault-free.
    // Voters run on their target's processor inside the same frame, so
    // the frame budget must include them.
    let mut voters_of: Vec<Vec<usize>> = vec![Vec::new(); g.node_count()];
    for (vi, (to, _, _)) in voters.iter().enumerate() {
        voters_of[to.index()].push(vi);
    }
    let mut task_of = vec![0usize; g.node_count()];
    for cluster in clustering.clusters() {
        let cts: Vec<Time> = cluster
            .iter()
            .map(|&n| {
                g.node(n)
                    .expect("cluster member exists")
                    .attributes
                    .timing
                    .map_or(1, |t| t.ct.max(1))
            })
            .collect();
        let voter_work: Time = cluster
            .iter()
            .map(|&n| voters_of[n.index()].len() as Time)
            .sum();
        let frame = ((cts.iter().sum::<Time>() + voter_work) * 2).max(4);
        let mut offset: Time = 0;
        for (&n, &ct) in cluster.iter().zip(&cts) {
            // The node's voters run immediately before it in the frame.
            for &vi in &voters_of[n.index()] {
                let (_, inputs, voted) = &voters[vi];
                let mut v = b
                    .task(
                        format!("voter{}_{}", vi, g.node(n).expect("member").name),
                        host[n.index()],
                    )
                    .periodic(frame, offset, 1)
                    .voter()
                    .writes(*voted);
                for &m in inputs {
                    v = v.reads(m);
                }
                v.build()?;
                offset += 1;
            }
            let node = g.node(n).expect("cluster member exists");
            let mut t = b
                .task(node.name.clone(), host[n.index()])
                .periodic(frame, offset, ct);
            if let Some(rec) = recovery {
                t = t.checkpoint(rec.checkpoint_every);
            }
            for &m in &reads[n.index()] {
                t = t.reads(m);
            }
            for &m in &writes[n.index()] {
                t = t.writes(m);
            }
            task_of[n.index()] = t.build()?;
            offset += ct;
        }
    }

    Ok(Materialized {
        spec: b.build()?,
        task_of,
    })
}

/// Convenience: the simulator task of a SW node.
impl Materialized {
    /// The task id materialised for `sw_node`.
    pub fn task(&self, sw_node: NodeIdx) -> TaskId {
        self.task_of[sw_node.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcm_alloc::heuristics::h1;
    use fcm_alloc::mapping::approach_a;
    use fcm_alloc::sw::SwGraphBuilder;
    use fcm_alloc::HwGraph;
    use fcm_core::{AttributeSet, ImportanceWeights};
    use fcm_sim::{engine, InfluenceCampaign, Injection};

    fn attrs(c: u32) -> AttributeSet {
        AttributeSet::default()
            .with_criticality(c)
            .with_timing(0, 30, 2)
    }

    fn setup(k: usize) -> (SwGraph, Clustering, Mapping) {
        let mut b = SwGraphBuilder::new();
        let n: Vec<_> = (0..4)
            .map(|i| b.add_process(format!("p{i}"), attrs(8 - i as u32)))
            .collect();
        b.add_influence(n[0], n[1], 0.9).unwrap();
        b.add_influence(n[1], n[2], 0.8).unwrap();
        b.add_influence(n[2], n[3], 0.7).unwrap();
        let g = b.build();
        let c = h1(&g, k).unwrap();
        let hw = HwGraph::complete(k);
        let m = approach_a(&g, &c, &hw, &ImportanceWeights::default()).unwrap();
        (g, c, m)
    }

    #[test]
    fn baseline_run_is_fault_free() {
        let (g, c, m) = setup(2);
        let mat = system_from_mapping(&g, &c, &m, SchedulingPolicy::PreemptiveEdf, 1.0).unwrap();
        let trace = engine::run(&mat.spec, &[], 0, 300);
        assert_eq!(trace.total_faults(), 0);
        assert!(trace.completions.iter().all(|&x| x > 0));
    }

    #[test]
    fn task_correspondence_round_trips() {
        let (g, c, m) = setup(2);
        let mat = system_from_mapping(&g, &c, &m, SchedulingPolicy::PreemptiveEdf, 1.0).unwrap();
        assert_eq!(mat.task_of.len(), 4);
        for n in g.node_indices() {
            let t = mat.task(n);
            assert_eq!(mat.spec.tasks[t].name, g.node(n).unwrap().name);
        }
    }

    #[test]
    fn same_host_edges_become_shared_memory() {
        let (g, c, m) = setup(2);
        let mat = system_from_mapping(&g, &c, &m, SchedulingPolicy::PreemptiveEdf, 0.5).unwrap();
        let mut kinds: Vec<FactorKind> = mat.spec.media.iter().map(|m| m.kind).collect();
        kinds.sort_by_key(|k| format!("{k:?}"));
        // 2 clusters over a 3-edge chain: at least one edge crosses.
        assert!(kinds.contains(&FactorKind::MessagePassing));
        assert!(kinds.contains(&FactorKind::SharedMemory));
        // Cross edges attenuated: transmission < original influence.
        for medium in &mat.spec.media {
            if medium.kind == FactorKind::MessagePassing {
                assert!(medium.transmission.value() <= 0.9 * 0.5 + 1e-12);
            }
        }
    }

    #[test]
    fn attenuation_reduces_measured_cross_processor_influence() {
        // H1 to 2 clusters groups {p0,p1,p2} | {p3}; the 0.7 edge p2→p3
        // crosses. A 7-tick horizon covers exactly one write→read
        // interaction (p2 completes at t=6 on processor 0, whose finish
        // event orders before p3's same-instant read on processor 1), so
        // the per-interaction probabilities are observable before
        // repetition saturates them.
        let (g, c, m) = setup(2);
        assert_eq!(c.len(), 2);
        let leaky = system_from_mapping(&g, &c, &m, SchedulingPolicy::PreemptiveEdf, 1.0).unwrap();
        let tight = system_from_mapping(&g, &c, &m, SchedulingPolicy::PreemptiveEdf, 0.1).unwrap();
        let src = mat_task(&leaky, &g, "p2");
        let dst = mat_task(&leaky, &g, "p3");
        let leaky_infl = InfluenceCampaign::new(leaky.spec, 7, 3000, 3)
            .measure_influence(src, dst)
            .unwrap()
            .estimate;
        let tight_infl = InfluenceCampaign::new(tight.spec, 7, 3000, 3)
            .measure_influence(src, dst)
            .unwrap()
            .estimate;
        assert!((leaky_infl - 0.7).abs() < 0.1, "{leaky_infl}");
        assert!((tight_infl - 0.07).abs() < 0.05, "{tight_infl}");
    }

    fn mat_task(mat: &Materialized, g: &SwGraph, name: &str) -> usize {
        g.nodes()
            .find(|(_, n)| n.name == name)
            .map(|(i, _)| mat.task(i))
            .expect("named node exists")
    }

    fn tmr_setup() -> (SwGraph, Clustering, Mapping) {
        use fcm_core::FaultTolerance;
        let mut b = SwGraphBuilder::new();
        let src = b.add_process("src", attrs(9).with_fault_tolerance(FaultTolerance::TMR));
        let dst = b.add_process("dst", attrs(5));
        b.add_influence(src, dst, 1.0).unwrap();
        let g = fcm_alloc::replication::expand_replicas(&b.build()).graph;
        let c = Clustering::singletons(&g);
        let hw = HwGraph::complete(4);
        let m = approach_a(&g, &c, &hw, &ImportanceWeights::default()).unwrap();
        (g, c, m)
    }

    #[test]
    fn voted_materialisation_masks_a_single_replica_fault() {
        let (g, c, m) = tmr_setup();
        let mat =
            system_from_mapping_voted(&g, &c, &m, SchedulingPolicy::PreemptiveEdf, 1.0).unwrap();
        // One synthesised voter task beyond the four SW nodes.
        assert_eq!(mat.spec.task_count(), 5);
        // Baseline clean.
        let clean = engine::run(&mat.spec, &[], 0, 100);
        assert_eq!(clean.total_faults(), 0);
        // One corrupt replica is outvoted at the consumer.
        let src_a = mat_task(&mat, &g, "srca");
        let dst = mat_task(&mat, &g, "dst");
        let one = engine::run(&mat.spec, &[Injection::value(0, src_a)], 3, 100);
        assert!(one.value_faulty(src_a));
        assert!(!one.value_faulty(dst), "single fault must be masked");
        // Two corrupt replicas defeat the vote.
        let src_b = mat_task(&mat, &g, "srcb");
        let two = engine::run(
            &mat.spec,
            &[Injection::value(0, src_a), Injection::value(0, src_b)],
            3,
            100,
        );
        assert!(two.value_faulty(dst), "majority corruption must pass");
    }

    #[test]
    fn unvoted_materialisation_leaks_a_single_replica_fault() {
        let (g, c, m) = tmr_setup();
        let mat = system_from_mapping(&g, &c, &m, SchedulingPolicy::PreemptiveEdf, 1.0).unwrap();
        let src_a = mat_task(&mat, &g, "srca");
        let dst = mat_task(&mat, &g, "dst");
        let one = engine::run(&mat.spec, &[Injection::value(0, src_a)], 3, 100);
        assert!(
            one.value_faulty(dst),
            "without voting the fault reaches dst"
        );
    }

    #[test]
    fn recoverable_materialisation_wires_the_recovery_attributes() {
        let (g, c, m) = setup(2);
        let rec = RecoverySpec::default();
        let mat = system_from_mapping_recoverable(
            &g,
            &c,
            &m,
            SchedulingPolicy::PreemptiveEdf,
            1.0,
            &rec,
        )
        .unwrap();
        let wd = mat.spec.watchdog.expect("watchdog wired");
        assert_eq!(wd.heartbeat_period, rec.heartbeat_period);
        assert_eq!(wd.detection_latency, rec.detection_latency);
        let rp = mat.spec.retry.expect("retry wired");
        assert_eq!(rp.max_retries, rec.max_retries);
        assert_eq!(rp.backoff_base, rec.backoff_base);
        for t in &mat.spec.tasks {
            assert_eq!(t.checkpoint, Some(rec.checkpoint_every));
        }
        // The plain materialisation stays recovery-free.
        let bare = system_from_mapping(&g, &c, &m, SchedulingPolicy::PreemptiveEdf, 1.0).unwrap();
        assert!(bare.spec.watchdog.is_none());
        assert!(bare.spec.retry.is_none());
        assert!(bare.spec.tasks.iter().all(|t| t.checkpoint.is_none()));
    }

    #[test]
    fn recoverable_system_detects_and_restarts_after_a_node_fault() {
        let (g, c, m) = setup(2);
        let rec = RecoverySpec {
            max_retries: 5,
            ..RecoverySpec::default()
        };
        let mat = system_from_mapping_recoverable(
            &g,
            &c,
            &m,
            SchedulingPolicy::PreemptiveEdf,
            1.0,
            &rec,
        )
        .unwrap();
        // Take processor 0 down briefly while its frame is executing.
        let trace = engine::run(
            &mat.spec,
            &[Injection::node_transient(1, 0, 4)],
            7,
            300,
        );
        assert!(trace.detections >= 1, "watchdog must detect the outage");
        assert!(
            trace.restarts >= 1,
            "the killed job must restart (detections {}, retries {})",
            trace.detections,
            trace.retries
        );
    }

    #[test]
    fn injection_propagates_along_the_materialised_chain() {
        let (g, c, m) = setup(2);
        let mat = system_from_mapping(&g, &c, &m, SchedulingPolicy::PreemptiveEdf, 1.0).unwrap();
        let src = mat_task(&mat, &g, "p0");
        let trace = engine::run(&mat.spec, &[Injection::value(0, src)], 5, 600);
        assert!(trace.value_faulty(src));
        // With p = 0.9/0.8/0.7 and many frames, the chain end is very
        // likely reached; at minimum the direct successor is.
        let p1 = mat_task(&mat, &g, "p1");
        assert!(trace.value_faulty(p1));
    }
}
