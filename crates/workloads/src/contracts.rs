//! Contract synthesis for the committed workloads.
//!
//! Every generator here hands its model to
//! [`fcm_check::contract::synthesize`], which produces the *tightest
//! passing* [`ContractSet`]: guarantees equal to actual row sums, relies
//! equal to exactly the interference the other guarantees entail, floors
//! equal to declared criticalities. The result certifies the workload
//! as-built — and any later drift (an edge strengthened, a criticality
//! lowered) fires the corresponding C017–C022 diagnostic.

use fcm_alloc::SwGraph;
use fcm_check::contract::synthesize;
use fcm_check::ContractSet;
use fcm_graph::{InfluenceMatrix, Matrix};

use crate::avionics;
use crate::fleet::SparseFleet;
use crate::paper;

/// The tightest passing contracts for any SW graph and its influence
/// matrix (names and criticality floors from the graph nodes).
#[must_use]
pub fn for_graph(g: &SwGraph, influence: &InfluenceMatrix) -> ContractSet {
    let names: Vec<String> = g.nodes().map(|(_, n)| n.name.clone()).collect();
    let crits: Vec<u32> = g.nodes().map(|(_, n)| n.attributes.criticality.0).collect();
    synthesize(&names, &crits, influence)
}

/// Contracts for the paper's §6 worked example (the Fig. 3 process
/// graph with its Eq. 2 derived matrix).
#[must_use]
pub fn for_paper() -> ContractSet {
    let g = paper::fig3_graph();
    let m = InfluenceMatrix::Dense(Matrix::from_graph(&g));
    for_graph(&g, &m)
}

/// Contracts for the avionics suite.
#[must_use]
pub fn for_avionics() -> ContractSet {
    let (g, _) = avionics::suite();
    let m = InfluenceMatrix::Dense(Matrix::from_graph(&g));
    for_graph(&g, &m)
}

/// Names, criticalities and contracts for a [`SparseFleet`]: process
/// `i` is `p{i}`; hubs (block heads) carry criticality 5, spokes 2 —
/// deterministic in the fleet's own parameters.
#[must_use]
pub fn for_fleet(fleet: &SparseFleet) -> (Vec<String>, Vec<u32>, ContractSet) {
    let n = fleet.processes;
    let block = fleet.hub_every.max(1);
    let names: Vec<String> = (0..n).map(|i| format!("p{i}")).collect();
    let crits: Vec<u32> = (0..n).map(|i| if i % block == 0 { 5 } else { 2 }).collect();
    let set = synthesize(&names, &crits, &fleet.influence());
    (names, crits, set)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcm_check::contract::{certified_bound, covers, rely_diags, row_sum};

    #[test]
    fn synthesized_workload_contracts_pass_their_own_checks() {
        for (label, set) in [("paper", for_paper()), ("avionics", for_avionics())] {
            assert!(!set.is_empty(), "{label}");
            assert!(rely_diags(&set).is_empty(), "{label}");
            // The paper's Fig. 3 graph has a row sum of 1.3, so its
            // tightest contracts honestly decline to certify a bound
            // (C022 warns); the bound math itself must still be sound.
            let b = certified_bound(&set, 4);
            assert_eq!(b.converges, b.max_guarantee < 1.0, "{label}");
        }
    }

    #[test]
    fn fleet_contracts_cover_and_certify_by_construction() {
        let fleet = SparseFleet { processes: 256, ..SparseFleet::default() };
        let (names, _, set) = for_fleet(&fleet);
        assert!(covers(&names, &set));
        let influence = fleet.influence();
        for (i, name) in names.iter().enumerate() {
            let c = set.get(name).expect("covered");
            assert!(row_sum(&influence, i) <= c.guarantee);
        }
        // max_row_sum < 1 by construction ⇒ the set certifies.
        assert!(certified_bound(&set, 4).converges);
    }
}
