//! The paper's end-to-end workflow: measure influence, then integrate.
//!
//! The paper closes by stressing that "developing techniques to determine
//! and measure actual parameters such as influence across FCMs is crucial
//! for the techniques to be applied to real systems". This module is the
//! bridge that applies the measurements: it runs (or accepts) a
//! fault-injection campaign over an executable system and turns the
//! measured influence matrix into the SW graph the allocation heuristics
//! consume — measurement → model → integration, with no hand-assigned
//! influence values anywhere.

use fcm_alloc::sw::{SwGraph, SwGraphBuilder};
use fcm_core::AttributeSet;
use fcm_sim::{InfluenceCampaign, SimError};

/// Builds an SW graph whose nodes are the campaign system's tasks and
/// whose influence edges are the *measured* pairwise influences, keeping
/// only edges at or above `min_influence` (the paper: "there is no edge
/// in any other case of non-influence"; sampling noise below the
/// threshold is treated as non-influence).
///
/// `attributes[i]` supplies the integration attributes of task `i`
/// (criticality, FT, timing); pass `&[]` to default them all.
///
/// # Errors
///
/// Returns [`SimError::UnknownTask`] when `attributes` is non-empty but
/// its length differs from the task count.
pub fn sw_graph_from_measurements(
    campaign: &InfluenceCampaign,
    attributes: &[AttributeSet],
    min_influence: f64,
) -> Result<SwGraph, SimError> {
    let spec = campaign.spec();
    let n = spec.task_count();
    if !attributes.is_empty() && attributes.len() != n {
        return Err(SimError::UnknownTask {
            index: attributes.len(),
        });
    }
    let matrix = campaign.influence_matrix();
    let mut b = SwGraphBuilder::new();
    let nodes: Vec<_> = spec
        .tasks
        .iter()
        .enumerate()
        .map(|(i, t)| {
            b.add_process(
                t.name.clone(),
                attributes.get(i).copied().unwrap_or_default(),
            )
        })
        .collect();
    for (i, &from) in nodes.iter().enumerate() {
        for (j, &to) in nodes.iter().enumerate() {
            if i == j {
                continue;
            }
            let measured = matrix.get(i, j).unwrap_or(0.0).clamp(0.0, 1.0);
            if measured >= min_influence && measured > 0.0 {
                b.add_influence(from, to, measured)
                    .expect("measured influence is in (0, 1]");
            }
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::avionics;
    use fcm_alloc::heuristics::h1;
    use fcm_graph::NodeIdx;
    use fcm_sim::model::SchedulingPolicy;

    fn campaign() -> (InfluenceCampaign, avionics::ControlLoop) {
        let (spec, roles) = avionics::control_loop_system(SchedulingPolicy::PreemptiveEdf).unwrap();
        (InfluenceCampaign::new(spec, 400, 300, 4242), roles)
    }

    #[test]
    fn measured_graph_has_one_node_per_task() {
        let (c, _) = campaign();
        let g = sw_graph_from_measurements(&c, &[], 0.05).unwrap();
        assert_eq!(g.node_count(), c.spec().task_count());
        let names: Vec<&str> = g.nodes().map(|(_, n)| n.name.as_str()).collect();
        assert!(names.contains(&"sensors"));
        assert!(names.contains(&"autopilot"));
    }

    #[test]
    fn measured_edges_follow_the_data_flow() {
        let (c, roles) = campaign();
        let g = sw_graph_from_measurements(&c, &[], 0.05).unwrap();
        let s = NodeIdx(roles.sensors);
        let a = NodeIdx(roles.autopilot);
        let d = NodeIdx(roles.display);
        // Forward influence measured; no backward edge survives.
        assert!(g.has_edge(s, a), "sensors → autopilot");
        assert!(g.has_edge(a, d), "autopilot → display");
        assert!(!g.has_edge(a, s));
        assert!(!g.has_edge(d, s));
    }

    #[test]
    fn threshold_filters_weak_noise() {
        let (c, _) = campaign();
        let loose = sw_graph_from_measurements(&c, &[], 0.01).unwrap();
        let strict = sw_graph_from_measurements(&c, &[], 0.9).unwrap();
        assert!(strict.edge_count() <= loose.edge_count());
        // An impossible threshold removes everything.
        let none = sw_graph_from_measurements(&c, &[], 1.1).unwrap();
        assert_eq!(none.edge_count(), 0);
    }

    #[test]
    fn attribute_vector_length_is_validated() {
        let (c, _) = campaign();
        let wrong = vec![AttributeSet::default(); 2];
        assert!(sw_graph_from_measurements(&c, &wrong, 0.1).is_err());
        let right = vec![AttributeSet::default().with_criticality(5); 4];
        let g = sw_graph_from_measurements(&c, &right, 0.1).unwrap();
        assert!(g.nodes().all(|(_, n)| n.attributes.criticality.0 == 5));
    }

    #[test]
    fn measured_workflow_co_locates_the_strong_interaction() {
        // End to end: measure → model → integrate. H1 on the measured
        // graph must group the sensors with the autopilot (their measured
        // influence dwarfs everything else).
        let (c, roles) = campaign();
        let g = sw_graph_from_measurements(&c, &[], 0.05).unwrap();
        let clustering = h1(&g, 3).unwrap();
        let cluster_of = |t: usize| {
            clustering
                .clusters()
                .iter()
                .position(|grp| grp.contains(&NodeIdx(t)))
                .expect("task is clustered")
        };
        assert_eq!(cluster_of(roles.sensors), cluster_of(roles.autopilot));
    }
}
