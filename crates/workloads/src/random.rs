//! Seeded random influence graphs (the E1 / E2 experiment inputs).
//!
//! The paper's example notes its influences "have been randomly generated
//! … for a real application, the values of influence would be determined
//! using Equations 1 and 2" — this module is the generalisation of that
//! generator, with controllable size, edge density and attribute
//! distributions, deterministic in the seed.

use fcm_substrate::rng::Rng;

use fcm_alloc::sw::{SwGraph, SwGraphBuilder};
use fcm_core::{AttributeSet, FaultTolerance};
use fcm_sched::Time;

/// Parameters of the random workload generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomWorkload {
    /// Number of processes (before replica expansion).
    pub processes: usize,
    /// Probability of an influence edge between any ordered pair.
    pub density: f64,
    /// Influence values are drawn uniformly from this range.
    pub influence_range: (f64, f64),
    /// Criticality drawn uniformly from `1..=max_criticality`.
    pub max_criticality: u32,
    /// Fraction of processes given `FT = 2`; half as many get `FT = 3`.
    pub replicated_fraction: f64,
    /// Whether to attach random ⟨EST, TCD, CT⟩ triples.
    pub with_timing: bool,
    /// Scheduling horizon used for the random timing windows.
    pub horizon: Time,
    /// RNG seed.
    pub seed: u64,
}

impl Default for RandomWorkload {
    fn default() -> Self {
        RandomWorkload {
            processes: 16,
            density: 0.25,
            influence_range: (0.05, 0.7),
            max_criticality: 10,
            replicated_fraction: 0.2,
            with_timing: true,
            horizon: 100,
            seed: 7,
        }
    }
}

impl RandomWorkload {
    /// Generates the SW graph.
    ///
    /// Timing windows are generous (slack ≥ work) so single processes are
    /// always feasible alone; conflicts only appear when clustering packs
    /// too much work into overlapping windows — exactly the behaviour the
    /// heuristics must navigate.
    pub fn generate(&self) -> SwGraph {
        let mut rng = Rng::seed_from_u64(self.seed);
        let mut b = SwGraphBuilder::new();
        let mut nodes = Vec::with_capacity(self.processes);
        for i in 0..self.processes {
            let criticality = rng.gen_range(1..=self.max_criticality.max(1));
            let ft = {
                let roll: f64 = rng.gen();
                if roll < self.replicated_fraction / 3.0 {
                    FaultTolerance::TMR
                } else if roll < self.replicated_fraction {
                    FaultTolerance::DUPLEX
                } else {
                    FaultTolerance::SIMPLEX
                }
            };
            let mut attrs = AttributeSet::default()
                .with_criticality(criticality)
                .with_fault_tolerance(ft)
                .with_throughput(rng.gen_range(0.1..2.0));
            if self.with_timing {
                let ct = rng.gen_range(1..=self.horizon / 10 + 1);
                let est = rng.gen_range(0..self.horizon / 2);
                let slack = rng.gen_range(ct..=self.horizon / 2 + ct);
                attrs = attrs.with_timing(est, est + ct + slack, ct);
            }
            nodes.push(b.add_process(format!("p{i}"), attrs));
        }
        let (lo, hi) = self.influence_range;
        for &from in &nodes {
            for &to in &nodes {
                if from != to && rng.gen::<f64>() < self.density {
                    let infl = rng.gen_range(lo.max(1e-6)..hi.min(1.0));
                    b.add_influence(from, to, infl)
                        .expect("generated influence is in range");
                }
            }
        }
        b.build()
    }

    /// Generates a random influence matrix with the same distribution but
    /// no attributes (for the E2 separation-convergence experiment).
    pub fn generate_matrix(&self) -> fcm_graph::Matrix {
        fcm_graph::Matrix::from_graph(&self.generate().map(|_, _| (), |_, e| e.weight.influence()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcm_alloc::sw::SwEdge;

    #[test]
    fn generation_is_deterministic() {
        let w = RandomWorkload::default();
        let a = w.generate();
        let b = w.generate();
        assert_eq!(a.node_count(), b.node_count());
        assert_eq!(a.edge_count(), b.edge_count());
        let ea: Vec<f64> = a.edges().map(|(_, e)| e.weight.influence()).collect();
        let eb: Vec<f64> = b.edges().map(|(_, e)| e.weight.influence()).collect();
        assert_eq!(ea, eb);
    }

    #[test]
    fn different_seeds_differ() {
        let a = RandomWorkload::default().generate();
        let b = RandomWorkload {
            seed: 8,
            ..RandomWorkload::default()
        }
        .generate();
        let ea: Vec<f64> = a.edges().map(|(_, e)| e.weight.influence()).collect();
        let eb: Vec<f64> = b.edges().map(|(_, e)| e.weight.influence()).collect();
        assert_ne!(ea, eb);
    }

    #[test]
    fn density_zero_yields_no_edges() {
        let g = RandomWorkload {
            density: 0.0,
            ..RandomWorkload::default()
        }
        .generate();
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.node_count(), 16);
    }

    #[test]
    fn density_one_yields_a_complete_digraph() {
        let g = RandomWorkload {
            processes: 6,
            density: 1.0,
            ..RandomWorkload::default()
        }
        .generate();
        assert_eq!(g.edge_count(), 6 * 5);
    }

    #[test]
    fn influences_respect_the_requested_range() {
        let g = RandomWorkload {
            influence_range: (0.3, 0.4),
            density: 0.5,
            ..RandomWorkload::default()
        }
        .generate();
        for (_, e) in g.edges() {
            match e.weight {
                SwEdge::Influence(v) => assert!((0.3..0.4).contains(&v)),
                SwEdge::ReplicaLink => panic!("generator emits no replica links"),
            }
        }
    }

    #[test]
    fn every_node_is_feasible_alone() {
        let g = RandomWorkload {
            processes: 40,
            seed: 99,
            ..RandomWorkload::default()
        }
        .generate();
        for (_, n) in g.nodes() {
            if let Some(t) = n.attributes.timing {
                assert!(t.is_well_formed(), "{}: {t}", n.name);
            }
        }
    }

    #[test]
    fn replicated_fraction_controls_ft() {
        let g = RandomWorkload {
            processes: 200,
            replicated_fraction: 0.5,
            seed: 3,
            ..RandomWorkload::default()
        }
        .generate();
        let replicated = g
            .nodes()
            .filter(|(_, n)| n.attributes.fault_tolerance.is_replicated())
            .count();
        assert!(replicated > 60 && replicated < 140, "{replicated}");
        let none = RandomWorkload {
            processes: 50,
            replicated_fraction: 0.0,
            ..RandomWorkload::default()
        }
        .generate();
        assert!(none
            .nodes()
            .all(|(_, n)| !n.attributes.fault_tolerance.is_replicated()));
    }

    #[test]
    fn matrix_generation_matches_graph_weights() {
        let w = RandomWorkload {
            processes: 5,
            density: 0.8,
            ..RandomWorkload::default()
        };
        let g = w.generate();
        let m = w.generate_matrix();
        assert_eq!(m.rows(), 5);
        for (_, e) in g.edges() {
            let entry = m.get(e.from.index(), e.to.index()).unwrap();
            assert!((entry - e.weight.influence()).abs() < 1e-12);
        }
    }
}
