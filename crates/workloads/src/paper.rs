//! The paper's §6 worked example: Table 1 and the Fig. 3 influence graph.
//!
//! # Reconstruction notes
//!
//! The available OCR of the paper loses most numerals. The values below
//! are reconstructed so that **every statement surviving in the prose
//! holds**:
//!
//! * p1 has the highest criticality and `FT = 3` ("has to be replicated
//!   three times to be run in a TMR mode"); p2 and p3 are "of
//!   intermediate criticality, with FT = 2"; p4…p8 "require no
//!   duplication";
//! * after replication the graph has **12** nodes;
//! * the multiset of influence weights in Fig. 3 is
//!   `{0.1×2, 0.2×4, 0.3×2, 0.5, 0.6, 0.7×2}` (these survive the OCR);
//! * p1–p2 has the highest mutual influence (1.2), so H1 combines them
//!   first, as the prose states;
//! * combining {p1, p2, p3} puts influences 0.7 (p3→p4) and 0.2 (p1→p4)
//!   onto the common neighbour p4, producing the Eq. 4 value
//!   `1 − (1−0.7)(1−0.2) = 0.76` that survives in Fig. 5;
//! * the timing triples make {p5, p7, p8} pairwise co-schedulable but
//!   jointly infeasible on one processor — the paper's "if p5 and p7 are
//!   scheduled on the same processor, then p8 cannot be scheduled on that
//!   processor due to conflicting timing requirements";
//! * the groupings appearing in Figs. 6–8 ({p1a,p2a}, {p1b,p2b,p3b},
//!   {p1c,p4,p5}, {p6,p7,p8}) are all schedulable.

use fcm_alloc::replication::{expand_replicas, Expansion};
use fcm_alloc::sw::{SwGraph, SwGraphBuilder};
use fcm_alloc::HwGraph;
use fcm_core::{AttributeSet, FaultTolerance};
use fcm_sched::Time;

/// One row of the (reconstructed) Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Table1Row {
    /// Process name (`"p1"` … `"p8"`).
    pub name: &'static str,
    /// Criticality C.
    pub criticality: u32,
    /// Fault tolerance FT (replication degree).
    pub ft: u8,
    /// Earliest start time.
    pub est: Time,
    /// Task completion deadline.
    pub tcd: Time,
    /// Computation time.
    pub ct: Time,
}

/// The reconstructed Table 1: attributes of the eight example processes.
pub const TABLE_1: [Table1Row; 8] = [
    Table1Row {
        name: "p1",
        criticality: 10,
        ft: 3,
        est: 0,
        tcd: 10,
        ct: 4,
    },
    Table1Row {
        name: "p2",
        criticality: 8,
        ft: 2,
        est: 0,
        tcd: 12,
        ct: 4,
    },
    Table1Row {
        name: "p3",
        criticality: 8,
        ft: 2,
        est: 2,
        tcd: 12,
        ct: 4,
    },
    Table1Row {
        name: "p4",
        criticality: 5,
        ft: 1,
        est: 0,
        tcd: 10,
        ct: 3,
    },
    Table1Row {
        name: "p5",
        criticality: 4,
        ft: 1,
        est: 10,
        tcd: 20,
        ct: 5,
    },
    Table1Row {
        name: "p6",
        criticality: 3,
        ft: 1,
        est: 4,
        tcd: 16,
        ct: 4,
    },
    Table1Row {
        name: "p7",
        criticality: 2,
        ft: 1,
        est: 10,
        tcd: 18,
        ct: 4,
    },
    Table1Row {
        name: "p8",
        criticality: 1,
        ft: 1,
        est: 12,
        tcd: 20,
        ct: 4,
    },
];

/// The reconstructed Fig. 3 influence edges `(from, to, influence)`,
/// indices into [`TABLE_1`]. The weight multiset matches the OCR.
pub const FIG_3_EDGES: [(usize, usize, f64); 12] = [
    (0, 1, 0.5), // p1 -> p2
    (1, 0, 0.7), // p2 -> p1 (mutual 1.2: H1's first combination)
    (1, 2, 0.3), // p2 -> p3
    (2, 1, 0.6), // p3 -> p2
    (2, 3, 0.7), // p3 -> p4  } fan-in on p4: Eq. 4 gives the
    (0, 3, 0.2), // p1 -> p4  } 0.76 of Fig. 5
    (3, 4, 0.1), // p4 -> p5
    (4, 5, 0.2), // p5 -> p6
    (4, 6, 0.2), // p5 -> p7
    (5, 6, 0.1), // p6 -> p7
    (6, 7, 0.3), // p7 -> p8
    (7, 0, 0.2), // p8 -> p1
];

/// Attribute set of one Table 1 row.
pub fn attributes(row: &Table1Row) -> AttributeSet {
    AttributeSet::default()
        .with_criticality(row.criticality)
        .with_fault_tolerance(FaultTolerance(row.ft))
        .with_timing(row.est, row.tcd, row.ct)
}

/// The initial 8-node SW graph of Fig. 3 (before replica expansion).
pub fn fig3_graph() -> SwGraph {
    let mut b = SwGraphBuilder::new();
    let nodes: Vec<_> = TABLE_1
        .iter()
        .map(|row| b.add_process(row.name, attributes(row)))
        .collect();
    for &(from, to, infl) in &FIG_3_EDGES {
        b.add_influence(nodes[from], nodes[to], infl)
            .expect("reconstructed influences are valid");
    }
    b.build()
}

/// The replica-expanded 12-node graph of Fig. 4.
pub fn fig4_expansion() -> Expansion {
    expand_replicas(&fig3_graph())
}

/// The example's HW platform: "a strongly connected network with 6 HW
/// nodes".
pub fn hw_platform() -> HwGraph {
    HwGraph::complete(6)
}

/// Renders Table 1 in the paper's layout.
pub fn render_table1() -> String {
    let mut s = String::from("Process   C  FT  EST  TCD  CT\n");
    for row in &TABLE_1 {
        s.push_str(&format!(
            "{:<7} {:>3} {:>3} {:>4} {:>4} {:>3}\n",
            row.name, row.criticality, row.ft, row.est, row.tcd, row.ct
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcm_alloc::heuristics;
    use fcm_graph::NodeIdx;
    use fcm_sched::{edf, Job, JobSet};

    #[test]
    fn table_has_the_prose_structure() {
        assert_eq!(TABLE_1[0].ft, 3);
        assert_eq!(TABLE_1[1].ft, 2);
        assert_eq!(TABLE_1[2].ft, 2);
        assert!(TABLE_1[3..].iter().all(|r| r.ft == 1));
        // p1 strictly most critical; p2, p3 intermediate and equal.
        assert!(TABLE_1[0].criticality > TABLE_1[1].criticality);
        assert_eq!(TABLE_1[1].criticality, TABLE_1[2].criticality);
        // Criticality is non-increasing down the table.
        for w in TABLE_1.windows(2) {
            assert!(w[0].criticality >= w[1].criticality);
        }
    }

    #[test]
    fn every_row_is_schedulable_alone() {
        for row in &TABLE_1 {
            assert!(
                attributes(row).timing.unwrap().is_well_formed(),
                "{}",
                row.name
            );
        }
    }

    #[test]
    fn influence_multiset_matches_ocr() {
        let mut weights: Vec<f64> = FIG_3_EDGES.iter().map(|&(_, _, w)| w).collect();
        weights.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let expect = [0.1, 0.1, 0.2, 0.2, 0.2, 0.2, 0.3, 0.3, 0.5, 0.6, 0.7, 0.7];
        assert_eq!(weights.len(), expect.len());
        for (w, e) in weights.iter().zip(&expect) {
            assert!((w - e).abs() < 1e-12);
        }
    }

    #[test]
    fn p1_p2_have_the_highest_mutual_influence() {
        let g = fig3_graph();
        let m12 = g.mutual_weight(NodeIdx(0), NodeIdx(1));
        assert!((m12 - 1.2).abs() < 1e-12);
        for i in 0..8 {
            for j in (i + 1)..8 {
                if (i, j) != (0, 1) {
                    assert!(g.mutual_weight(NodeIdx(i), NodeIdx(j)) < m12);
                }
            }
        }
    }

    #[test]
    fn expansion_has_twelve_nodes() {
        let ex = fig4_expansion();
        assert_eq!(ex.graph.node_count(), 12);
        let names: Vec<&str> = ex.graph.nodes().map(|(_, n)| n.name.as_str()).collect();
        assert!(names.contains(&"p1a"));
        assert!(names.contains(&"p1c"));
        assert!(names.contains(&"p2b"));
        assert!(names.contains(&"p3b"));
        assert!(names.contains(&"p8"));
    }

    #[test]
    fn p5_p7_p8_conflict_exactly_as_the_prose_says() {
        let jobs = |rows: &[usize]| {
            JobSet::new(
                rows.iter()
                    .map(|&i| {
                        let r = &TABLE_1[i];
                        Job::new(i as u64, r.est, r.tcd, r.ct)
                    })
                    .collect(),
            )
            .unwrap()
        };
        // Pairwise fine.
        assert!(edf::feasible(&jobs(&[4, 6])));
        assert!(edf::feasible(&jobs(&[4, 7])));
        assert!(edf::feasible(&jobs(&[6, 7])));
        // Jointly impossible.
        assert!(!edf::feasible(&jobs(&[4, 6, 7])));
    }

    #[test]
    fn figure_groupings_are_schedulable() {
        let check = |rows: &[usize]| {
            let set = JobSet::new(
                rows.iter()
                    .map(|&i| {
                        let r = &TABLE_1[i];
                        Job::new(i as u64, r.est, r.tcd, r.ct)
                    })
                    .collect(),
            )
            .unwrap();
            edf::feasible(&set)
        };
        assert!(check(&[0, 1])); // {p1a, p2a}
        assert!(check(&[0, 1, 2])); // {p1b, p2b, p3b}
        assert!(check(&[0, 3, 4])); // {p1c, p4, p5}
        assert!(check(&[5, 6, 7])); // {p6, p7, p8}
    }

    #[test]
    fn eq4_value_of_fig5_appears_when_p123_combine() {
        let g = fig3_graph();
        let clustering = fcm_alloc::Clustering::new(
            &g,
            vec![
                vec![NodeIdx(0), NodeIdx(1), NodeIdx(2)],
                vec![NodeIdx(3)],
                vec![NodeIdx(4)],
                vec![NodeIdx(5)],
                vec![NodeIdx(6)],
                vec![NodeIdx(7)],
            ],
        )
        .unwrap();
        let cond = clustering.condensed(&g);
        let w: f64 = *cond
            .graph
            .edge_weight_between(
                cond.group_of(NodeIdx(0)).unwrap(),
                cond.group_of(NodeIdx(3)).unwrap(),
            )
            .unwrap();
        assert!((w - 0.76).abs() < 1e-12);
    }

    #[test]
    fn h1_first_combines_p1_and_p2_on_the_unexpanded_graph() {
        let g = fig3_graph();
        let c = heuristics::h1(&g, 7).unwrap();
        assert!(c
            .clusters()
            .iter()
            .any(|grp| grp == &vec![NodeIdx(0), NodeIdx(1)]));
    }

    #[test]
    fn expanded_graph_reduces_to_six_clusters() {
        let ex = fig4_expansion();
        let c = heuristics::h1(&ex.graph, 6).unwrap();
        assert_eq!(c.len(), 6);
        // Replicas separated across clusters.
        for cluster in c.clusters() {
            for (k, &a) in cluster.iter().enumerate() {
                for &b in &cluster[k + 1..] {
                    let na = ex.graph.node(a).unwrap();
                    let nb = ex.graph.node(b).unwrap();
                    assert!(!na.is_replica_of(nb), "{} with {}", na.name, nb.name);
                }
            }
        }
    }

    #[test]
    fn platform_is_a_six_node_complete_network() {
        let hw = hw_platform();
        assert_eq!(hw.len(), 6);
        assert!(hw.is_connected());
    }

    #[test]
    fn table_renders_in_paper_layout() {
        let s = render_table1();
        assert_eq!(s.lines().count(), 9);
        assert!(s.starts_with("Process"));
        assert!(s.contains("p1       10   3    0   10   4"));
    }
}
