//! Integration-depth tradeoff analysis.
//!
//! The paper raises — and defers — the question *"Is there a limit to the
//! level of integration one should design for?"* (§6: "this however
//! raises the issue of tradeoffs in integrating SW beyond a HW resource
//! threshold. We defer details of the tradeoff analysis to a later
//! study"). This module is that later study: it sweeps the cluster count
//! `k` from the anti-affinity minimum up to one-process-per-node,
//! evaluating containment and mission reliability at each depth, and
//! locates the knee — the deepest integration (smallest platform) whose
//! reliability is still within a tolerance of the best achievable.

use std::fmt;

use fcm_alloc::heuristics::h1;
use fcm_alloc::mapping::approach_a;
use fcm_alloc::{AllocError, HwGraph, SwGraph};
use fcm_core::ImportanceWeights;

use crate::metrics::MappingQuality;
use crate::reliability::{ReliabilityEstimate, ReliabilityModel};
use crate::sweep::SweepDriver;

/// One point of the integration-depth sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffPoint {
    /// Cluster count (= processors used).
    pub clusters: usize,
    /// Static quality at this depth.
    pub quality: MappingQuality,
    /// Mission reliability at this depth.
    pub reliability: ReliabilityEstimate,
}

/// The full sweep.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TradeoffCurve {
    points: Vec<TradeoffPoint>,
    infeasible: Vec<(usize, String)>,
}

impl TradeoffCurve {
    /// The feasible points, ordered by increasing cluster count.
    pub fn points(&self) -> &[TradeoffPoint] {
        &self.points
    }

    /// Depths that admitted no feasible integration, with the reason.
    pub fn infeasible(&self) -> &[(usize, String)] {
        &self.infeasible
    }

    /// The point with the lowest mission-failure probability.
    pub fn best(&self) -> Option<&TradeoffPoint> {
        self.points.iter().min_by(|a, b| {
            a.reliability
                .mission_failure
                .partial_cmp(&b.reliability.mission_failure)
                .expect("finite probabilities")
        })
    }

    /// The integration limit: the smallest platform (fewest clusters)
    /// whose mission failure is within `tolerance` of the best point —
    /// integrating deeper than this buys hardware savings at a
    /// reliability cost exceeding the tolerance.
    pub fn knee(&self, tolerance: f64) -> Option<&TradeoffPoint> {
        let best = self.best()?.reliability.mission_failure;
        self.points
            .iter()
            .filter(|p| p.reliability.mission_failure <= best + tolerance)
            .min_by_key(|p| p.clusters)
    }
}

impl fmt::Display for TradeoffCurve {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:>8} {:>12} {:>12} {:>11} {:>13}",
            "clusters", "cross_infl", "crit_coloc", "max_crit", "mission_fail"
        )?;
        for p in &self.points {
            writeln!(
                f,
                "{:>8} {:>12.4} {:>12} {:>11} {:>13.4}",
                p.clusters,
                p.quality.cross_influence,
                p.quality.critical_colocations,
                p.quality.max_criticality_per_node,
                p.reliability.mission_failure
            )?;
        }
        for (k, reason) in &self.infeasible {
            writeln!(f, "{k:>8} infeasible: {reason}")?;
        }
        Ok(())
    }
}

/// Sweeps integration depth `k` over `k_range`, clustering with H1,
/// mapping with Approach A onto `platform_for(k)`, and evaluating with
/// `model`. Depths with no feasible integration are recorded, not
/// skipped silently.
///
/// Depths are independent cells, so the sweep fans out across the
/// [`SweepDriver`] thread pool; each depth is fully deterministic (the
/// Monte-Carlo seed lives in `model`), so the curve is identical for
/// any thread count.
pub fn integration_sweep(
    g: &SwGraph,
    k_range: impl IntoIterator<Item = usize>,
    platform_for: impl Fn(usize) -> HwGraph + Sync,
    model: &ReliabilityModel,
    weights: &ImportanceWeights,
) -> TradeoffCurve {
    let ks: Vec<usize> = k_range.into_iter().collect();
    let results = SweepDriver::new(model.seed).run(&ks, |&k, _| {
        (|| -> Result<TradeoffPoint, AllocError> {
            let clustering = h1(g, k)?;
            let hw = platform_for(k);
            let mapping = approach_a(g, &clustering, &hw, weights)?;
            let quality =
                MappingQuality::evaluate(g, &clustering, &mapping, &hw, model.critical_at);
            let reliability = model.evaluate(g, &clustering, &mapping);
            Ok(TradeoffPoint {
                clusters: k,
                quality,
                reliability,
            })
        })()
        .map_err(|e| e.to_string())
    });
    let mut curve = TradeoffCurve::default();
    for (k, attempt) in ks.into_iter().zip(results) {
        match attempt {
            Ok(point) => curve.points.push(point),
            Err(reason) => curve.infeasible.push((k, reason)),
        }
    }
    curve.points.sort_by_key(|p| p.clusters);
    curve
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcm_alloc::sw::SwGraphBuilder;
    use fcm_core::{AttributeSet, FaultTolerance};

    fn workload() -> SwGraph {
        let mut b = SwGraphBuilder::new();
        let crit = b.add_process(
            "crit",
            AttributeSet::default()
                .with_criticality(9)
                .with_fault_tolerance(FaultTolerance::DUPLEX),
        );
        let n: Vec<_> = (0..4)
            .map(|i| b.add_process(format!("p{i}"), AttributeSet::default().with_criticality(2)))
            .collect();
        b.add_influence(n[0], n[1], 0.5).unwrap();
        b.add_influence(n[1], n[2], 0.4).unwrap();
        b.add_influence(n[2], crit, 0.3).unwrap();
        b.add_influence(n[3], crit, 0.2).unwrap();
        fcm_alloc::replication::expand_replicas(&b.build()).graph
    }

    fn quick_model() -> ReliabilityModel {
        ReliabilityModel {
            p_hw: 0.05,
            p_sw: 0.05,
            trials: 3000,
            critical_at: 5,
            ..ReliabilityModel::default()
        }
    }

    #[test]
    fn sweep_covers_feasible_range_and_records_infeasible() {
        let g = workload(); // 6 nodes, duplex pair needs >= 2 clusters
        let curve = integration_sweep(
            &g,
            1..=6,
            HwGraph::complete,
            &quick_model(),
            &ImportanceWeights::default(),
        );
        // k = 1 cannot separate the duplex replicas.
        assert_eq!(curve.infeasible().len(), 1);
        assert_eq!(curve.infeasible()[0].0, 1);
        assert_eq!(curve.points().len(), 5);
        assert_eq!(curve.points()[0].clusters, 2);
    }

    #[test]
    fn cross_influence_shrinks_as_integration_deepens() {
        let g = workload();
        let curve = integration_sweep(
            &g,
            2..=6,
            HwGraph::complete,
            &quick_model(),
            &ImportanceWeights::default(),
        );
        let points = curve.points();
        for w in points.windows(2) {
            assert!(
                w[0].quality.cross_influence <= w[1].quality.cross_influence + 1e-9,
                "{} vs {}",
                w[0].clusters,
                w[1].clusters
            );
        }
    }

    #[test]
    fn best_and_knee_are_consistent() {
        let g = workload();
        let curve = integration_sweep(
            &g,
            2..=6,
            HwGraph::complete,
            &quick_model(),
            &ImportanceWeights::default(),
        );
        let best = curve.best().expect("non-empty");
        let knee = curve.knee(0.05).expect("non-empty");
        assert!(knee.clusters <= best.clusters);
        assert!(
            knee.reliability.mission_failure <= best.reliability.mission_failure + 0.05 + 1e-12
        );
        // Zero tolerance: the knee is the cheapest point tied with best.
        let strict = curve.knee(0.0).expect("non-empty");
        assert!(
            (strict.reliability.mission_failure - best.reliability.mission_failure).abs() < 1e-12
        );
    }

    #[test]
    fn empty_sweep_yields_empty_curve() {
        let g = workload();
        let curve = integration_sweep(
            &g,
            std::iter::empty(),
            HwGraph::complete,
            &quick_model(),
            &ImportanceWeights::default(),
        );
        assert!(curve.points().is_empty());
        assert!(curve.best().is_none());
        assert!(curve.knee(0.1).is_none());
    }

    #[test]
    fn display_renders_points_and_infeasible_rows() {
        let g = workload();
        let curve = integration_sweep(
            &g,
            1..=3,
            HwGraph::complete,
            &quick_model(),
            &ImportanceWeights::default(),
        );
        let s = curve.to_string();
        assert!(s.contains("infeasible"));
        assert!(s.contains("mission_fail"));
    }
}
