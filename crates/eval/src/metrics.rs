//! Static quality metrics of a clustering + mapping.
//!
//! These quantify §5.3's criteria for a "good" mapping: **containment of
//! faults** (cross-node influence left after clustering — lower is
//! better), **criticality** (critical modules sharing a processor —
//! "selected critical processes should be assigned to distinct HW
//! nodes"), plus communication dilation and the Eq. 3 separation floor.

use std::fmt;

use fcm_alloc::{Clustering, HwGraph, Mapping, SwGraph};
use fcm_core::separation::{SeparationAnalysis, DEFAULT_ORDER};
use fcm_graph::InfluenceMatrix;
use fcm_graph::NodeIdx;

/// The metric bundle for one integration outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct MappingQuality {
    /// Influence crossing cluster (= HW node) boundaries; the objective
    /// the paper's heuristics minimise.
    pub cross_influence: f64,
    /// Σ influence × hop distance over the HW topology.
    pub dilation: f64,
    /// Number of unordered pairs of *critical* SW nodes (criticality ≥
    /// threshold) that share a processor — Approach B drives this to 0.
    pub critical_colocations: usize,
    /// Largest summed criticality hosted on one processor ("minimizing
    /// the number of critical processes scheduled on one processor also
    /// minimizes the number of processes lost due to such a HW fault").
    pub max_criticality_per_node: u32,
    /// Minimum Eq. 3 separation between FCMs on *different* HW nodes
    /// (1.0 when nothing crosses). Higher is better.
    pub min_cross_node_separation: f64,
    /// Largest security-level spread inside a single cluster (0 when
    /// every cluster is homogeneous). Co-locating processes of widely
    /// different security classifications weakens the "security of
    /// information" attribute the paper lists among the compatibility
    /// requirements.
    pub max_security_spread: u8,
    /// Number of clusters (= processors used).
    pub clusters: usize,
}

impl fcm_substrate::ToJson for MappingQuality {
    fn to_json(&self) -> fcm_substrate::Json {
        fcm_substrate::Json::object()
            .set("cross_influence", self.cross_influence)
            .set("dilation", self.dilation)
            .set("critical_colocations", self.critical_colocations)
            .set("max_criticality_per_node", self.max_criticality_per_node)
            .set("min_cross_node_separation", self.min_cross_node_separation)
            .set("max_security_spread", self.max_security_spread)
            .set("clusters", self.clusters)
    }
}

impl MappingQuality {
    /// Evaluates a clustering + mapping on a platform. `critical_at` is
    /// the criticality threshold above which a process counts as critical.
    pub fn evaluate(
        g: &SwGraph,
        clustering: &Clustering,
        mapping: &Mapping,
        hw: &HwGraph,
        critical_at: u32,
    ) -> MappingQuality {
        let cross_influence = clustering.cross_influence(g);
        let dilation = mapping.dilation(g, clustering, hw);

        let mut critical_colocations = 0usize;
        let mut max_criticality_per_node = 0u32;
        let mut max_security_spread = 0u8;
        for cluster in clustering.clusters() {
            let crits: Vec<u32> = cluster
                .iter()
                .map(|&n| g.node(n).expect("cluster member").attributes.criticality.0)
                .collect();
            let sum: u32 = crits.iter().sum();
            max_criticality_per_node = max_criticality_per_node.max(sum);
            let critical = crits.iter().filter(|&&c| c >= critical_at).count();
            critical_colocations += critical * critical.saturating_sub(1) / 2;
            let levels: Vec<u8> = cluster
                .iter()
                .map(|&n| g.node(n).expect("cluster member").attributes.security.0)
                .collect();
            if let (Some(&lo), Some(&hi)) = (levels.iter().min(), levels.iter().max()) {
                max_security_spread = max_security_spread.max(hi - lo);
            }
        }

        let min_cross_node_separation = min_cross_node_separation(g, clustering);

        MappingQuality {
            cross_influence,
            dilation,
            critical_colocations,
            max_criticality_per_node,
            min_cross_node_separation,
            max_security_spread,
            clusters: clustering.len(),
        }
    }
}

/// Minimum Eq. 3 separation over all ordered FCM pairs living in
/// different clusters (1.0 when no influence crosses at all).
fn min_cross_node_separation(g: &SwGraph, clustering: &Clustering) -> f64 {
    let analysis = match SeparationAnalysis::from_graph(g) {
        Ok(a) => a,
        Err(_) => return 0.0,
    };
    let mut membership = vec![usize::MAX; g.node_count()];
    for (ci, cluster) in clustering.clusters().iter().enumerate() {
        for &n in cluster {
            membership[n.index()] = ci;
        }
    }
    // One walk series for the whole scan instead of one per pair. The
    // sparse branch visits only stored entries: an unstored pair has
    // separation exactly 1.0, which can never lower the running minimum.
    let mut min_sep = 1.0f64;
    match analysis.influence_matrix() {
        InfluenceMatrix::Dense(_) => {
            let pairwise = analysis.pairwise(DEFAULT_ORDER);
            for i in g.node_indices() {
                for j in g.node_indices() {
                    if i != j && membership[i.index()] != membership[j.index()] {
                        min_sep = min_sep.min(pairwise[(i.index(), j.index())]);
                    }
                }
            }
        }
        InfluenceMatrix::Sparse(s) => {
            for (i, j, v) in s.walk_series(DEFAULT_ORDER, 1e-15).entries() {
                if i != j && membership[i] != membership[j] {
                    min_sep = min_sep.min(1.0 - v.min(1.0));
                }
            }
        }
    }
    min_sep
}

/// Pairwise separation of two specific FCMs at the default order —
/// convenience re-export for report code.
pub fn separation_between(g: &SwGraph, a: NodeIdx, b: NodeIdx) -> f64 {
    SeparationAnalysis::from_graph(g)
        .map(|s| s.separation(a, b, DEFAULT_ORDER))
        .unwrap_or(0.0)
}

impl fmt::Display for MappingQuality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "clusters={} cross_infl={:.4} dilation={:.4} crit_coloc={} max_crit/node={} min_sep={:.4} sec_spread={}",
            self.clusters,
            self.cross_influence,
            self.dilation,
            self.critical_colocations,
            self.max_criticality_per_node,
            self.min_cross_node_separation,
            self.max_security_spread
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcm_alloc::{heuristics, mapping, sw::SwGraphBuilder};
    use fcm_core::{AttributeSet, ImportanceWeights};

    fn attrs(c: u32) -> AttributeSet {
        AttributeSet::default().with_criticality(c)
    }

    fn setup() -> (SwGraph, Clustering, Mapping, HwGraph) {
        let mut b = SwGraphBuilder::new();
        let n: Vec<_> = (0..4)
            .map(|i| b.add_process(format!("p{i}"), attrs([9, 8, 2, 1][i])))
            .collect();
        b.add_influence(n[0], n[1], 0.8).unwrap();
        b.add_influence(n[1], n[2], 0.3).unwrap();
        b.add_influence(n[2], n[3], 0.6).unwrap();
        let g = b.build();
        let hw = HwGraph::complete(2);
        let clustering = heuristics::h1(&g, 2).unwrap();
        let m = mapping::approach_a(&g, &clustering, &hw, &ImportanceWeights::default()).unwrap();
        (g, clustering, m, hw)
    }

    #[test]
    fn cross_influence_counts_only_crossing_edges() {
        let (g, c, m, hw) = setup();
        let q = MappingQuality::evaluate(&g, &c, &m, &hw, 5);
        // H1 groups (p0,p1) and (p2,p3): only the 0.3 edge crosses.
        assert!((q.cross_influence - 0.3).abs() < 1e-12);
        assert_eq!(q.clusters, 2);
    }

    #[test]
    fn critical_colocations_counts_pairs_over_threshold() {
        let (g, c, m, hw) = setup();
        // p0 (9) and p1 (8) share a cluster: one critical pair at ≥5.
        let q = MappingQuality::evaluate(&g, &c, &m, &hw, 5);
        assert_eq!(q.critical_colocations, 1);
        assert_eq!(q.max_criticality_per_node, 17);
        // At threshold 10 nothing is critical.
        let q10 = MappingQuality::evaluate(&g, &c, &m, &hw, 10);
        assert_eq!(q10.critical_colocations, 0);
    }

    #[test]
    fn min_cross_node_separation_reflects_transitive_paths() {
        let (g, c, m, hw) = setup();
        let q = MappingQuality::evaluate(&g, &c, &m, &hw, 5);
        // The strongest cross-cluster transitive influence: p0→p2 via
        // 0.8·0.3 = 0.24 plus direct p1→p2 0.3 → min separation 0.7.
        assert!((q.min_cross_node_separation - 0.7).abs() < 1e-9);
    }

    #[test]
    fn perfectly_separated_mapping_has_unit_separation() {
        let mut b = SwGraphBuilder::new();
        let a = b.add_process("a", attrs(1));
        let c = b.add_process("b", attrs(1));
        b.add_influence(a, c, 0.9).unwrap();
        let g = b.build();
        let clustering = Clustering::new(&g, vec![vec![a, c]]).unwrap();
        let hw = HwGraph::complete(1);
        let m = mapping::approach_a(&g, &clustering, &hw, &ImportanceWeights::default()).unwrap();
        let q = MappingQuality::evaluate(&g, &clustering, &m, &hw, 5);
        assert_eq!(q.cross_influence, 0.0);
        assert_eq!(q.min_cross_node_separation, 1.0);
    }

    #[test]
    fn security_spread_tracks_the_widest_cluster() {
        let mut b = SwGraphBuilder::new();
        let low = b.add_process("low", attrs(1).with_security(0));
        let high = b.add_process("high", attrs(1).with_security(4));
        let mid = b.add_process("mid", attrs(1).with_security(2));
        let g = b.build();
        let hw = HwGraph::complete(2);
        let clustering = Clustering::new(&g, vec![vec![low, high], vec![mid]]).unwrap();
        let m = mapping::approach_a(&g, &clustering, &hw, &ImportanceWeights::default()).unwrap();
        let q = MappingQuality::evaluate(&g, &clustering, &m, &hw, 5);
        assert_eq!(q.max_security_spread, 4);
        // Homogeneous clusters have zero spread.
        let split = Clustering::new(&g, vec![vec![low], vec![high, mid]]).unwrap();
        let hw3 = HwGraph::complete(2);
        let m2 = mapping::approach_a(&g, &split, &hw3, &ImportanceWeights::default()).unwrap();
        let q2 = MappingQuality::evaluate(&g, &split, &m2, &hw3, 5);
        assert_eq!(q2.max_security_spread, 2);
    }

    #[test]
    fn separation_between_matches_analysis() {
        let (g, _, _, _) = setup();
        let s = separation_between(&g, NodeIdx(0), NodeIdx(1));
        assert!((s - 0.2).abs() < 1e-9);
        // No reverse influence.
        assert_eq!(separation_between(&g, NodeIdx(3), NodeIdx(0)), 1.0);
    }

    #[test]
    fn display_is_one_line() {
        let (g, c, m, hw) = setup();
        let q = MappingQuality::evaluate(&g, &c, &m, &hw, 5);
        let s = q.to_string();
        assert!(s.contains("clusters=2"));
        assert!(!s.contains('\n'));
    }
}
