//! Monte-Carlo mission reliability of an integrated mapping.
//!
//! The paper argues (§5.3, §6.2) that a good mapping (a) co-locates
//! strongly influencing FCMs so faults stay inside one HW fault
//! containment region, and (b) separates critical processes so "the same
//! faults (in HW or SW) affect a minimal number of such processes". This
//! model lets those claims be tested end to end:
//!
//! 1. each HW node fails independently with `p_hw` (taking down every
//!    process mapped to it);
//! 2. each SW process develops a spontaneous fault with `p_sw`;
//! 3. faults propagate along influence edges, sampled per edge — at full
//!    strength within a HW node, attenuated by `cross_node_attenuation`
//!    across nodes (node boundaries are HW FCRs: separate memory,
//!    separate CPU);
//! 4. a *module* fails when all its replicas fail; the **mission** fails
//!    when any critical module (criticality ≥ threshold) fails.

use fcm_substrate::rng::Rng;

use fcm_alloc::sw::SwEdge;
use fcm_alloc::{Clustering, Mapping, SwGraph};
use fcm_graph::NodeIdx;

/// Model parameters for the reliability simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityModel {
    /// Per-mission HW node failure probability.
    pub p_hw: f64,
    /// Per-mission spontaneous SW fault probability (per process).
    pub p_sw: f64,
    /// Multiplier on influence for propagation across HW nodes
    /// (`1.0` = node boundaries contain nothing, `0.0` = perfect FCRs).
    pub cross_node_attenuation: f64,
    /// Criticality threshold defining the mission-critical modules.
    pub critical_at: u32,
    /// Number of Monte-Carlo missions.
    pub trials: u64,
    /// Base RNG seed (trial `i` uses `seed + i`).
    pub seed: u64,
}

impl Default for ReliabilityModel {
    fn default() -> Self {
        ReliabilityModel {
            p_hw: 0.02,
            p_sw: 0.05,
            cross_node_attenuation: 0.2,
            critical_at: 5,
            trials: 10_000,
            seed: 42,
        }
    }
}

/// The outcome of a reliability run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityEstimate {
    /// Estimated mission failure probability.
    pub mission_failure: f64,
    /// Mean number of failed processes per mission.
    pub mean_failed_processes: f64,
    /// Trials run.
    pub trials: u64,
}

impl fcm_substrate::ToJson for ReliabilityEstimate {
    fn to_json(&self) -> fcm_substrate::Json {
        fcm_substrate::Json::object()
            .set("mission_failure", self.mission_failure)
            .set("mean_failed_processes", self.mean_failed_processes)
            .set("trials", self.trials)
    }
}

impl ReliabilityModel {
    /// Runs the model against a concrete clustering + mapping.
    ///
    /// Trials run in parallel; the result is deterministic in the seed.
    pub fn evaluate(
        &self,
        g: &SwGraph,
        clustering: &Clustering,
        mapping: &Mapping,
    ) -> ReliabilityEstimate {
        // Precompute: process -> hw node, replica groups, critical modules.
        let n = g.node_count();
        let mut host = vec![usize::MAX; n];
        for (ci, cluster) in clustering.clusters().iter().enumerate() {
            let hw = mapping
                .hw_of(ci)
                .expect("mapping covers clustering")
                .index();
            for &p in cluster {
                host[p.index()] = hw;
            }
        }
        // Module = replica group or singleton; record members + criticality.
        let mut modules: Vec<(Vec<usize>, u32)> = Vec::new();
        {
            use std::collections::BTreeMap;
            let mut by_group: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
            for (idx, node) in g.nodes() {
                match node.replica_group {
                    Some(rg) => by_group.entry(rg).or_default().push(idx.index()),
                    None => modules.push((vec![idx.index()], node.attributes.criticality.0)),
                }
            }
            for (_, members) in by_group {
                let crit = members
                    .iter()
                    .map(|&m| {
                        g.node(NodeIdx(m))
                            .expect("member exists")
                            .attributes
                            .criticality
                            .0
                    })
                    .max()
                    .unwrap_or(0);
                modules.push((members, crit));
            }
        }
        // Influence edges as (from, to, p).
        let edges: Vec<(usize, usize, f64)> = g
            .edges()
            .filter_map(|(_, e)| match e.weight {
                SwEdge::Influence(p) => Some((e.from.index(), e.to.index(), p)),
                SwEdge::ReplicaLink => None,
            })
            .collect();

        // Trial `i` is seeded `seed + i`, so the totals are independent of
        // how the work-stealing pool divides trials among threads.
        let trials: Vec<u64> = (0..self.trials).collect();
        let (failures, failed_procs) = fcm_substrate::par_reduce(
            &trials,
            |&trial| {
                let mut rng = Rng::seed_from_u64(self.seed.wrapping_add(trial));
                let failed = self.one_mission(&mut rng, n, &host, &edges);
                let procs = failed.iter().filter(|&&f| f).count() as u64;
                let mission_failed = modules.iter().any(|(members, crit)| {
                    *crit >= self.critical_at && members.iter().all(|&m| failed[m])
                });
                (u64::from(mission_failed), procs)
            },
            (0u64, 0u64),
            |a, b| (a.0 + b.0, a.1 + b.1),
        );
        ReliabilityEstimate {
            mission_failure: failures as f64 / self.trials.max(1) as f64,
            mean_failed_processes: failed_procs as f64 / self.trials.max(1) as f64,
            trials: self.trials,
        }
    }

    /// One mission: returns the per-process failure vector.
    fn one_mission(
        &self,
        rng: &mut Rng,
        n: usize,
        host: &[usize],
        edges: &[(usize, usize, f64)],
    ) -> Vec<bool> {
        let mut failed = vec![false; n];
        // HW node failures.
        let max_host = host.iter().copied().filter(|&h| h != usize::MAX).max();
        let mut hw_failed = vec![false; max_host.map_or(0, |m| m + 1)];
        for h in hw_failed.iter_mut() {
            *h = rng.gen::<f64>() < self.p_hw;
        }
        for (p, f) in failed.iter_mut().enumerate() {
            if host[p] != usize::MAX && hw_failed[host[p]] {
                *f = true;
            }
        }
        // Spontaneous SW faults.
        for f in failed.iter_mut() {
            if !*f && rng.gen::<f64>() < self.p_sw {
                *f = true;
            }
        }
        // Propagation to fixpoint; each edge fires at most once.
        let mut fired = vec![false; edges.len()];
        loop {
            let mut changed = false;
            for (ei, &(from, to, p)) in edges.iter().enumerate() {
                if fired[ei] || !failed[from] || failed[to] {
                    continue;
                }
                fired[ei] = true;
                let strength = if host[from] == host[to] {
                    p
                } else {
                    p * self.cross_node_attenuation
                };
                if rng.gen::<f64>() < strength {
                    failed[to] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcm_alloc::{heuristics, hw::HwGraph, mapping, sw::SwGraphBuilder};
    use fcm_core::{AttributeSet, FaultTolerance, ImportanceWeights};

    fn attrs(c: u32) -> AttributeSet {
        AttributeSet::default().with_criticality(c)
    }

    fn evaluate_with(
        model: &ReliabilityModel,
        g: &SwGraph,
        clusters: usize,
        hw_nodes: usize,
    ) -> ReliabilityEstimate {
        let clustering = heuristics::h1(g, clusters).unwrap();
        let hw = HwGraph::complete(hw_nodes);
        let m = mapping::approach_a(g, &clustering, &hw, &ImportanceWeights::default()).unwrap();
        model.evaluate(g, &clustering, &m)
    }

    #[test]
    fn zero_fault_rates_mean_zero_failures() {
        let mut b = SwGraphBuilder::new();
        let a = b.add_process("a", attrs(9));
        let c = b.add_process("b", attrs(1));
        b.add_influence(a, c, 0.5).unwrap();
        let g = b.build();
        let model = ReliabilityModel {
            p_hw: 0.0,
            p_sw: 0.0,
            trials: 500,
            ..ReliabilityModel::default()
        };
        let est = evaluate_with(&model, &g, 2, 2);
        assert_eq!(est.mission_failure, 0.0);
        assert_eq!(est.mean_failed_processes, 0.0);
    }

    #[test]
    fn certain_hw_failure_kills_every_critical_module() {
        let mut b = SwGraphBuilder::new();
        b.add_process("crit", attrs(9));
        let g = b.build();
        let model = ReliabilityModel {
            p_hw: 1.0,
            p_sw: 0.0,
            trials: 100,
            ..ReliabilityModel::default()
        };
        let est = evaluate_with(&model, &g, 1, 1);
        assert_eq!(est.mission_failure, 1.0);
    }

    #[test]
    fn replication_survives_single_node_failures() {
        // A TMR-replicated critical module on 3 nodes: mission fails only
        // when all three replicas' nodes fail — p³ for independent nodes.
        let mut b = SwGraphBuilder::new();
        b.add_process("crit", attrs(9).with_fault_tolerance(FaultTolerance::TMR));
        let ex = fcm_alloc::replication::expand_replicas(&b.build());
        let g = ex.graph;
        let model = ReliabilityModel {
            p_hw: 0.3,
            p_sw: 0.0,
            trials: 20_000,
            ..ReliabilityModel::default()
        };
        let est = evaluate_with(&model, &g, 3, 3);
        // p³ = 0.027.
        assert!(
            (est.mission_failure - 0.027).abs() < 0.01,
            "estimate {}",
            est.mission_failure
        );
    }

    #[test]
    fn colocated_replicas_would_share_fate() {
        // Same module, but forced onto 1 node via a graph without replica
        // tags (simulating a naive integrator that ignores anti-affinity):
        // failure probability equals p, far above p³.
        let mut b = SwGraphBuilder::new();
        b.add_process("a", attrs(9));
        let g = b.build();
        let model = ReliabilityModel {
            p_hw: 0.3,
            p_sw: 0.0,
            trials: 20_000,
            ..ReliabilityModel::default()
        };
        let est = evaluate_with(&model, &g, 1, 1);
        assert!((est.mission_failure - 0.3).abs() < 0.02);
    }

    #[test]
    fn cross_node_attenuation_contains_propagation() {
        // Source (non-critical) influences a critical sink with p=1.
        // Same node: propagation certain. Different nodes with strong
        // attenuation: rare.
        let mut b = SwGraphBuilder::new();
        let src = b.add_process("src", attrs(1));
        let dst = b.add_process("dst", attrs(9));
        b.add_influence(src, dst, 1.0).unwrap();
        let g = b.build();
        let model = ReliabilityModel {
            p_hw: 0.0,
            p_sw: 0.2, // only src or dst can start a fault
            cross_node_attenuation: 0.05,
            trials: 30_000,
            ..ReliabilityModel::default()
        };
        let together = {
            let clustering = Clustering::new(&g, vec![vec![src, dst]]).unwrap();
            let hw = HwGraph::complete(1);
            let m =
                mapping::approach_a(&g, &clustering, &hw, &ImportanceWeights::default()).unwrap();
            model.evaluate(&g, &clustering, &m)
        };
        let apart = {
            let clustering = Clustering::new(&g, vec![vec![src], vec![dst]]).unwrap();
            let hw = HwGraph::complete(2);
            let m =
                mapping::approach_a(&g, &clustering, &hw, &ImportanceWeights::default()).unwrap();
            model.evaluate(&g, &clustering, &m)
        };
        // Together: dst fails if dst faults (0.2) or src faults and
        // propagates (0.2). Apart: src propagation attenuated to 0.05.
        assert!(together.mission_failure > apart.mission_failure + 0.05);
    }

    #[test]
    fn estimates_are_deterministic_in_seed() {
        let mut b = SwGraphBuilder::new();
        let a = b.add_process("a", attrs(9));
        let c = b.add_process("b", attrs(4));
        b.add_influence(a, c, 0.5).unwrap();
        let g = b.build();
        let model = ReliabilityModel {
            trials: 2000,
            ..ReliabilityModel::default()
        };
        let e1 = evaluate_with(&model, &g, 2, 2);
        let e2 = evaluate_with(&model, &g, 2, 2);
        assert_eq!(e1, e2);
    }

    #[test]
    fn default_model_is_sane() {
        let m = ReliabilityModel::default();
        assert!(m.p_hw > 0.0 && m.p_hw < 1.0);
        assert!(m.cross_node_attenuation < 1.0);
        assert!(m.trials > 0);
    }
}
