//! Monte-Carlo mission reliability of an integrated mapping.
//!
//! The paper argues (§5.3, §6.2) that a good mapping (a) co-locates
//! strongly influencing FCMs so faults stay inside one HW fault
//! containment region, and (b) separates critical processes so "the same
//! faults (in HW or SW) affect a minimal number of such processes". This
//! model lets those claims be tested end to end:
//!
//! 1. each HW node fails independently with `p_hw` (taking down every
//!    process mapped to it);
//! 2. each SW process develops a spontaneous fault with `p_sw`;
//! 3. faults propagate along influence edges, sampled per edge — at full
//!    strength within a HW node, attenuated by `cross_node_attenuation`
//!    across nodes (node boundaries are HW FCRs: separate memory,
//!    separate CPU);
//! 4. a *module* fails when all its replicas fail; the **mission** fails
//!    when any critical module (criticality ≥ threshold) fails.
//!
//! # Repairable-system mode
//!
//! [`RepairableModel`] extends the mission model with the recovery
//! machinery of the run-time subsystem: watchdog detection with imperfect
//! *coverage*, transient-vs-permanent HW faults, checkpoint/retry,
//! failover re-placement (via [`fcm_alloc::failover`]) and degraded-mode
//! shedding. The four [`RecoveryPolicy`] levels are *coupled* by common
//! random numbers: every trial pre-samples all of its uniforms in a fixed
//! order before any policy logic runs, and each stronger policy can only
//! shrink the set of failed processes in that trial. Mission reliability
//! is therefore monotone in the policy — `None ≤ RetryOnly ≤ Failover ≤
//! FailoverShed` — pointwise per trial, at every fault rate.

use fcm_substrate::rng::Rng;

use fcm_alloc::failover::{self, ShedPolicy};
use fcm_alloc::hw::HwGraph;
use fcm_alloc::sw::SwEdge;
use fcm_alloc::{Clustering, Mapping, SwGraph};
use fcm_graph::NodeIdx;

/// Model parameters for the reliability simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityModel {
    /// Per-mission HW node failure probability.
    pub p_hw: f64,
    /// Per-mission spontaneous SW fault probability (per process).
    pub p_sw: f64,
    /// Multiplier on influence for propagation across HW nodes
    /// (`1.0` = node boundaries contain nothing, `0.0` = perfect FCRs).
    pub cross_node_attenuation: f64,
    /// Criticality threshold defining the mission-critical modules.
    pub critical_at: u32,
    /// Number of Monte-Carlo missions.
    pub trials: u64,
    /// Base RNG seed (trial `i` uses `seed + i`).
    pub seed: u64,
}

impl Default for ReliabilityModel {
    fn default() -> Self {
        ReliabilityModel {
            p_hw: 0.02,
            p_sw: 0.05,
            cross_node_attenuation: 0.2,
            critical_at: 5,
            trials: 10_000,
            seed: 42,
        }
    }
}

/// The outcome of a reliability run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReliabilityEstimate {
    /// Estimated mission failure probability.
    pub mission_failure: f64,
    /// Mean number of failed processes per mission.
    pub mean_failed_processes: f64,
    /// Trials run.
    pub trials: u64,
}

impl fcm_substrate::ToJson for ReliabilityEstimate {
    fn to_json(&self) -> fcm_substrate::Json {
        fcm_substrate::Json::object()
            .set("mission_failure", self.mission_failure)
            .set("mean_failed_processes", self.mean_failed_processes)
            .set("trials", self.trials)
    }
}

impl ReliabilityModel {
    /// Runs the model against a concrete clustering + mapping.
    ///
    /// Trials run in parallel; the result is deterministic in the seed.
    pub fn evaluate(
        &self,
        g: &SwGraph,
        clustering: &Clustering,
        mapping: &Mapping,
    ) -> ReliabilityEstimate {
        let Topology {
            host,
            modules,
            edges,
        } = Topology::of(g, clustering, mapping);
        let n = g.node_count();

        // Trial `i` is seeded `seed + i`, so the totals are independent of
        // how the work-stealing pool divides trials among threads.
        let trials: Vec<u64> = (0..self.trials).collect();
        let (failures, failed_procs) = fcm_substrate::par_reduce(
            &trials,
            |&trial| {
                let mut rng = Rng::seed_from_u64(self.seed.wrapping_add(trial));
                let failed = self.one_mission(&mut rng, n, &host, &edges);
                let procs = failed.iter().filter(|&&f| f).count() as u64;
                let mission_failed = modules.iter().any(|(members, crit)| {
                    *crit >= self.critical_at && members.iter().all(|&m| failed[m])
                });
                (u64::from(mission_failed), procs)
            },
            (0u64, 0u64),
            |a, b| (a.0 + b.0, a.1 + b.1),
        );
        ReliabilityEstimate {
            mission_failure: failures as f64 / self.trials.max(1) as f64,
            mean_failed_processes: failed_procs as f64 / self.trials.max(1) as f64,
            trials: self.trials,
        }
    }

    /// One mission: returns the per-process failure vector.
    fn one_mission(
        &self,
        rng: &mut Rng,
        n: usize,
        host: &[usize],
        edges: &[(usize, usize, f64)],
    ) -> Vec<bool> {
        let mut failed = vec![false; n];
        // HW node failures.
        let max_host = host.iter().copied().filter(|&h| h != usize::MAX).max();
        let mut hw_failed = vec![false; max_host.map_or(0, |m| m + 1)];
        for h in hw_failed.iter_mut() {
            *h = rng.gen::<f64>() < self.p_hw;
        }
        for (p, f) in failed.iter_mut().enumerate() {
            if host[p] != usize::MAX && hw_failed[host[p]] {
                *f = true;
            }
        }
        // Spontaneous SW faults.
        for f in failed.iter_mut() {
            if !*f && rng.gen::<f64>() < self.p_sw {
                *f = true;
            }
        }
        // Propagation to fixpoint; each edge fires at most once.
        let mut fired = vec![false; edges.len()];
        loop {
            let mut changed = false;
            for (ei, &(from, to, p)) in edges.iter().enumerate() {
                if fired[ei] || !failed[from] || failed[to] {
                    continue;
                }
                fired[ei] = true;
                let strength = if host[from] == host[to] {
                    p
                } else {
                    p * self.cross_node_attenuation
                };
                if rng.gen::<f64>() < strength {
                    failed[to] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        failed
    }
}

/// Shared precomputation: process → HW host, replica modules, influence
/// edges.
struct Topology {
    /// Per process: HW node index, or `usize::MAX` when unmapped.
    host: Vec<usize>,
    /// Module members + criticality (max over members).
    modules: Vec<(Vec<usize>, u32)>,
    /// Influence edges as `(from, to, p)`.
    edges: Vec<(usize, usize, f64)>,
}

impl Topology {
    fn of(g: &SwGraph, clustering: &Clustering, mapping: &Mapping) -> Topology {
        let n = g.node_count();
        let mut host = vec![usize::MAX; n];
        for (ci, cluster) in clustering.clusters().iter().enumerate() {
            let hw = mapping
                .hw_of(ci)
                .expect("mapping covers clustering")
                .index();
            for &p in cluster {
                host[p.index()] = hw;
            }
        }
        // Module = replica group or singleton; record members + criticality.
        let mut modules: Vec<(Vec<usize>, u32)> = Vec::new();
        {
            use std::collections::BTreeMap;
            let mut by_group: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
            for (idx, node) in g.nodes() {
                match node.replica_group {
                    Some(rg) => by_group.entry(rg).or_default().push(idx.index()),
                    None => modules.push((vec![idx.index()], node.attributes.criticality.0)),
                }
            }
            for (_, members) in by_group {
                let crit = members
                    .iter()
                    .map(|&m| {
                        g.node(NodeIdx(m))
                            .expect("member exists")
                            .attributes
                            .criticality
                            .0
                    })
                    .max()
                    .unwrap_or(0);
                modules.push((members, crit));
            }
        }
        let edges: Vec<(usize, usize, f64)> = g
            .edges()
            .filter_map(|(_, e)| match e.weight {
                SwEdge::Influence(p) => Some((e.from.index(), e.to.index(), p)),
                SwEdge::ReplicaLink => None,
            })
            .collect();
        Topology {
            host,
            modules,
            edges,
        }
    }
}

/// The recovery policy levels swept by the E14 experiment, weakest first.
///
/// The declaration order is the strength order: each level includes the
/// machinery of the previous one, so under common random numbers mission
/// reliability is non-decreasing left to right.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum RecoveryPolicy {
    /// No recovery: every HW fault kills its processes for the mission.
    None,
    /// Watchdog detection + checkpoint/retry: detected *transient* node
    /// faults recover in place; permanent faults are still fatal.
    RetryOnly,
    /// RetryOnly plus failover: detected *permanent* faults re-place the
    /// stranded FCMs on the survivors ([`ShedPolicy::Never`] — the remap
    /// must fit everything or the node's processes are lost).
    Failover,
    /// Failover plus degraded mode: when the strict remap is infeasible,
    /// sub-critical FCMs are shed ([`ShedPolicy::ShedBelow`] at the
    /// model's `critical_at`) to keep critical service alive.
    FailoverShed,
}

impl RecoveryPolicy {
    /// All policies, weakest first — the E14 sweep order.
    pub const ALL: [RecoveryPolicy; 4] = [
        RecoveryPolicy::None,
        RecoveryPolicy::RetryOnly,
        RecoveryPolicy::Failover,
        RecoveryPolicy::FailoverShed,
    ];

    /// Stable display label (used in tables and JSON artefacts).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            RecoveryPolicy::None => "none",
            RecoveryPolicy::RetryOnly => "retry-only",
            RecoveryPolicy::Failover => "failover",
            RecoveryPolicy::FailoverShed => "failover+shedding",
        }
    }
}

/// Repairable-system extension of [`ReliabilityModel`]: HW faults are
/// detected by a watchdog with imperfect coverage, split into transient
/// and permanent, and a [`RecoveryPolicy`] decides what is recovered.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairableModel {
    /// The underlying mission model (fault rates, propagation, trials).
    pub base: ReliabilityModel,
    /// Watchdog coverage: probability a HW fault is detected at all.
    /// Undetected faults are never recovered, under any policy.
    pub coverage: f64,
    /// Fraction of HW faults that are permanent (node dead for the
    /// mission); the rest are transient outages a retry can ride out.
    pub permanent_fraction: f64,
    /// Time from fault to detection (watchdog heartbeat + latency).
    pub detection_latency: f64,
    /// Additional time to recover a transient fault by checkpoint/retry.
    pub retry_time: f64,
    /// Additional time to re-place FCMs after a permanent fault.
    pub failover_time: f64,
}

impl Default for RepairableModel {
    fn default() -> Self {
        RepairableModel {
            base: ReliabilityModel::default(),
            coverage: 0.95,
            permanent_fraction: 0.5,
            detection_latency: 2.0,
            retry_time: 3.0,
            failover_time: 8.0,
        }
    }
}

/// The outcome of a repairable-system reliability run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RepairableEstimate {
    /// Estimated mission failure probability.
    pub mission_failure: f64,
    /// Mean failed processes per mission (shed processes excluded).
    pub mean_failed_processes: f64,
    /// Mean processes shed by degraded mode per mission.
    pub mean_shed_processes: f64,
    /// Mean successful node recoveries (retry or failover) per mission.
    pub mean_recoveries: f64,
    /// Mean time to recover, over all successful recoveries; `None` when
    /// nothing recovered.
    pub mttr: Option<f64>,
    /// Trials run.
    pub trials: u64,
}

impl fcm_substrate::ToJson for RepairableEstimate {
    fn to_json(&self) -> fcm_substrate::Json {
        fcm_substrate::Json::object()
            .set("mission_failure", self.mission_failure)
            .set("mean_failed_processes", self.mean_failed_processes)
            .set("mean_shed_processes", self.mean_shed_processes)
            .set("mean_recoveries", self.mean_recoveries)
            .set("mttr", self.mttr.unwrap_or(0.0))
            .set("trials", self.trials)
    }
}

/// One HW node's precomputed failover plan, flattened for trial-time use.
struct NodePlan {
    /// Per victim: `(process, Some(target hw))` moved, `None` shed.
    placement: Vec<(usize, Option<usize>)>,
    /// Survivor-hosted processes displaced (shed) to admit victims.
    displaced: Vec<usize>,
}

impl RepairableModel {
    /// Runs the repairable mission model under `policy`.
    ///
    /// Trials are seeded exactly as [`ReliabilityModel::evaluate`]
    /// (`seed + trial`), and every trial pre-samples all uniforms in a
    /// fixed order *before* applying policy logic, so different policies
    /// see identical fault worlds (common random numbers). A stronger
    /// policy can only shrink the failed set in each world, which makes
    /// the E14 ordering exact rather than statistical.
    pub fn evaluate(
        &self,
        g: &SwGraph,
        clustering: &Clustering,
        mapping: &Mapping,
        hw: &HwGraph,
        policy: RecoveryPolicy,
    ) -> RepairableEstimate {
        let topo = Topology::of(g, clustering, mapping);
        let n = g.node_count();
        let hw_count = hw.len();

        // Precompute one failover plan per HW node; the shedding plan is
        // the strict plan whenever that one is feasible (identical pass-1
        // scoring), so the coupled policies agree wherever both succeed.
        let plan_for = |shed: ShedPolicy| -> Vec<Option<NodePlan>> {
            (0..hw_count)
                .map(|h| {
                    failover::remap(g, clustering, mapping, hw, NodeIdx(h), shed)
                        .ok()
                        .map(|out| {
                            let victims: Vec<usize> =
                                out.placement.iter().map(|&(v, _)| v.index()).collect();
                            NodePlan {
                                placement: out
                                    .placement
                                    .iter()
                                    .map(|&(v, d)| (v.index(), d.map(NodeIdx::index)))
                                    .collect(),
                                displaced: out
                                    .shed
                                    .iter()
                                    .map(|s| s.index())
                                    .filter(|s| !victims.contains(s))
                                    .collect(),
                            }
                        })
                })
                .collect()
        };
        let strict_plans = plan_for(ShedPolicy::Never);
        let shed_plans = plan_for(ShedPolicy::ShedBelow {
            critical_at: self.base.critical_at,
        });

        let trials: Vec<u64> = (0..self.base.trials).collect();
        let totals = fcm_substrate::par_reduce(
            &trials,
            |&trial| {
                let mut rng = Rng::seed_from_u64(self.base.seed.wrapping_add(trial));
                self.one_mission(
                    &mut rng,
                    n,
                    hw_count,
                    &topo,
                    &strict_plans,
                    &shed_plans,
                    policy,
                )
            },
            MissionTally::default(),
            MissionTally::merge,
        );
        let t = self.base.trials.max(1) as f64;
        RepairableEstimate {
            mission_failure: totals.mission_failures as f64 / t,
            mean_failed_processes: totals.failed as f64 / t,
            mean_shed_processes: totals.shed as f64 / t,
            mean_recoveries: totals.recoveries as f64 / t,
            mttr: (totals.recoveries > 0)
                .then(|| totals.recovery_time / totals.recoveries as f64),
            trials: self.base.trials,
        }
    }

    /// One repairable mission. All randomness is drawn up front in a
    /// fixed order (HW fates, coverage, permanence, SW faults, edge
    /// propagation) so the draw sequence is identical across policies.
    #[allow(clippy::too_many_arguments)]
    fn one_mission(
        &self,
        rng: &mut Rng,
        n: usize,
        hw_count: usize,
        topo: &Topology,
        strict_plans: &[Option<NodePlan>],
        shed_plans: &[Option<NodePlan>],
        policy: RecoveryPolicy,
    ) -> MissionTally {
        // Fixed-order pre-sampling (common random numbers).
        let u_hw: Vec<f64> = (0..hw_count).map(|_| rng.gen::<f64>()).collect();
        let u_cov: Vec<f64> = (0..hw_count).map(|_| rng.gen::<f64>()).collect();
        let u_perm: Vec<f64> = (0..hw_count).map(|_| rng.gen::<f64>()).collect();
        let u_sw: Vec<f64> = (0..n).map(|_| rng.gen::<f64>()).collect();
        let u_edge: Vec<f64> = (0..topo.edges.len()).map(|_| rng.gen::<f64>()).collect();

        let hw_failed: Vec<bool> = u_hw.iter().map(|&u| u < self.base.p_hw).collect();
        let mut tally = MissionTally::default();
        let mut failed = vec![false; n];
        let mut removed = vec![false; n];

        for h in 0..hw_count {
            if !hw_failed[h] {
                continue;
            }
            let detected = u_cov[h] < self.coverage;
            let permanent = u_perm[h] < self.permanent_fraction;
            // Transient + detected: checkpoint/retry rides it out.
            if detected && !permanent && policy >= RecoveryPolicy::RetryOnly {
                tally.recoveries += 1;
                tally.recovery_time += self.detection_latency + self.retry_time;
                continue;
            }
            // Permanent + detected: failover re-places the victims.
            if detected && permanent && policy >= RecoveryPolicy::Failover {
                let plan = if policy == RecoveryPolicy::FailoverShed {
                    &shed_plans[h]
                } else {
                    &strict_plans[h]
                };
                if let Some(plan) = plan {
                    tally.recoveries += 1;
                    tally.recovery_time += self.detection_latency + self.failover_time;
                    for &(v, dest) in &plan.placement {
                        match dest {
                            // A victim survives on its target unless the
                            // target node failed in this trial too.
                            Some(t) if !hw_failed[t] => {}
                            Some(_) => failed[v] = true,
                            None => removed[v] = true,
                        }
                    }
                    for &d in &plan.displaced {
                        removed[d] = true;
                    }
                    continue;
                }
            }
            // Unrecovered: the node's processes are lost.
            for (f, &host) in failed.iter_mut().zip(&topo.host) {
                if host == h {
                    *f = true;
                }
            }
        }
        // A process is dead before it is shed: failure wins.
        for (r, &f) in removed.iter_mut().zip(&failed) {
            if f {
                *r = false;
            }
        }
        // Spontaneous SW faults — shed processes are offline and immune.
        for ((f, &r), &u) in failed.iter_mut().zip(&removed).zip(&u_sw) {
            if !*f && !r && u < self.base.p_sw {
                *f = true;
            }
        }
        // Propagation to fixpoint over pre-sampled edge uniforms; shed
        // processes neither emit nor receive. Attenuation uses the
        // *original* hosts even for moved victims: edge strengths must be
        // identical across policies, or the common-random-number coupling
        // (and with it the exact policy ordering) would break.
        let mut fired = vec![false; topo.edges.len()];
        loop {
            let mut changed = false;
            for (ei, &(from, to, p)) in topo.edges.iter().enumerate() {
                if fired[ei] || !failed[from] || failed[to] || removed[to] {
                    continue;
                }
                fired[ei] = true;
                let strength = if topo.host[from] == topo.host[to] {
                    p
                } else {
                    p * self.base.cross_node_attenuation
                };
                if u_edge[ei] < strength {
                    failed[to] = true;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        tally.failed = failed.iter().filter(|&&f| f).count() as u64;
        tally.shed = removed.iter().filter(|&&r| r).count() as u64;
        tally.mission_failures = u64::from(topo.modules.iter().any(|(members, crit)| {
            *crit >= self.base.critical_at && members.iter().all(|&m| failed[m])
        }));
        tally
    }
}

/// Per-trial tallies, merged across the trial pool.
#[derive(Debug, Clone, Copy, Default)]
struct MissionTally {
    mission_failures: u64,
    failed: u64,
    shed: u64,
    recoveries: u64,
    recovery_time: f64,
}

impl MissionTally {
    fn merge(a: MissionTally, b: MissionTally) -> MissionTally {
        MissionTally {
            mission_failures: a.mission_failures + b.mission_failures,
            failed: a.failed + b.failed,
            shed: a.shed + b.shed,
            recoveries: a.recoveries + b.recoveries,
            recovery_time: a.recovery_time + b.recovery_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcm_alloc::{heuristics, hw::HwGraph, mapping, sw::SwGraphBuilder};
    use fcm_core::{AttributeSet, FaultTolerance, ImportanceWeights};

    fn attrs(c: u32) -> AttributeSet {
        AttributeSet::default().with_criticality(c)
    }

    fn evaluate_with(
        model: &ReliabilityModel,
        g: &SwGraph,
        clusters: usize,
        hw_nodes: usize,
    ) -> ReliabilityEstimate {
        let clustering = heuristics::h1(g, clusters).unwrap();
        let hw = HwGraph::complete(hw_nodes);
        let m = mapping::approach_a(g, &clustering, &hw, &ImportanceWeights::default()).unwrap();
        model.evaluate(g, &clustering, &m)
    }

    #[test]
    fn zero_fault_rates_mean_zero_failures() {
        let mut b = SwGraphBuilder::new();
        let a = b.add_process("a", attrs(9));
        let c = b.add_process("b", attrs(1));
        b.add_influence(a, c, 0.5).unwrap();
        let g = b.build();
        let model = ReliabilityModel {
            p_hw: 0.0,
            p_sw: 0.0,
            trials: 500,
            ..ReliabilityModel::default()
        };
        let est = evaluate_with(&model, &g, 2, 2);
        assert_eq!(est.mission_failure, 0.0);
        assert_eq!(est.mean_failed_processes, 0.0);
    }

    #[test]
    fn certain_hw_failure_kills_every_critical_module() {
        let mut b = SwGraphBuilder::new();
        b.add_process("crit", attrs(9));
        let g = b.build();
        let model = ReliabilityModel {
            p_hw: 1.0,
            p_sw: 0.0,
            trials: 100,
            ..ReliabilityModel::default()
        };
        let est = evaluate_with(&model, &g, 1, 1);
        assert_eq!(est.mission_failure, 1.0);
    }

    #[test]
    fn replication_survives_single_node_failures() {
        // A TMR-replicated critical module on 3 nodes: mission fails only
        // when all three replicas' nodes fail — p³ for independent nodes.
        let mut b = SwGraphBuilder::new();
        b.add_process("crit", attrs(9).with_fault_tolerance(FaultTolerance::TMR));
        let ex = fcm_alloc::replication::expand_replicas(&b.build());
        let g = ex.graph;
        let model = ReliabilityModel {
            p_hw: 0.3,
            p_sw: 0.0,
            trials: 20_000,
            ..ReliabilityModel::default()
        };
        let est = evaluate_with(&model, &g, 3, 3);
        // p³ = 0.027.
        assert!(
            (est.mission_failure - 0.027).abs() < 0.01,
            "estimate {}",
            est.mission_failure
        );
    }

    #[test]
    fn colocated_replicas_would_share_fate() {
        // Same module, but forced onto 1 node via a graph without replica
        // tags (simulating a naive integrator that ignores anti-affinity):
        // failure probability equals p, far above p³.
        let mut b = SwGraphBuilder::new();
        b.add_process("a", attrs(9));
        let g = b.build();
        let model = ReliabilityModel {
            p_hw: 0.3,
            p_sw: 0.0,
            trials: 20_000,
            ..ReliabilityModel::default()
        };
        let est = evaluate_with(&model, &g, 1, 1);
        assert!((est.mission_failure - 0.3).abs() < 0.02);
    }

    #[test]
    fn cross_node_attenuation_contains_propagation() {
        // Source (non-critical) influences a critical sink with p=1.
        // Same node: propagation certain. Different nodes with strong
        // attenuation: rare.
        let mut b = SwGraphBuilder::new();
        let src = b.add_process("src", attrs(1));
        let dst = b.add_process("dst", attrs(9));
        b.add_influence(src, dst, 1.0).unwrap();
        let g = b.build();
        let model = ReliabilityModel {
            p_hw: 0.0,
            p_sw: 0.2, // only src or dst can start a fault
            cross_node_attenuation: 0.05,
            trials: 30_000,
            ..ReliabilityModel::default()
        };
        let together = {
            let clustering = Clustering::new(&g, vec![vec![src, dst]]).unwrap();
            let hw = HwGraph::complete(1);
            let m =
                mapping::approach_a(&g, &clustering, &hw, &ImportanceWeights::default()).unwrap();
            model.evaluate(&g, &clustering, &m)
        };
        let apart = {
            let clustering = Clustering::new(&g, vec![vec![src], vec![dst]]).unwrap();
            let hw = HwGraph::complete(2);
            let m =
                mapping::approach_a(&g, &clustering, &hw, &ImportanceWeights::default()).unwrap();
            model.evaluate(&g, &clustering, &m)
        };
        // Together: dst fails if dst faults (0.2) or src faults and
        // propagates (0.2). Apart: src propagation attenuated to 0.05.
        assert!(together.mission_failure > apart.mission_failure + 0.05);
    }

    #[test]
    fn estimates_are_deterministic_in_seed() {
        let mut b = SwGraphBuilder::new();
        let a = b.add_process("a", attrs(9));
        let c = b.add_process("b", attrs(4));
        b.add_influence(a, c, 0.5).unwrap();
        let g = b.build();
        let model = ReliabilityModel {
            trials: 2000,
            ..ReliabilityModel::default()
        };
        let e1 = evaluate_with(&model, &g, 2, 2);
        let e2 = evaluate_with(&model, &g, 2, 2);
        assert_eq!(e1, e2);
    }

    #[test]
    fn default_model_is_sane() {
        let m = ReliabilityModel::default();
        assert!(m.p_hw > 0.0 && m.p_hw < 1.0);
        assert!(m.cross_node_attenuation < 1.0);
        assert!(m.trials > 0);
    }

    /// A critical replica pair on hw0/hw1 plus two low-criticality
    /// singletons, on a 4-node platform with spare capacity for failover.
    fn repairable_system() -> (SwGraph, Clustering, Mapping, HwGraph) {
        let mut b = SwGraphBuilder::new();
        let ra = b.add_process("r_a", attrs(9));
        let rb = b.add_process("r_b", attrs(9));
        let lo = b.add_process("lo", attrs(2));
        let hi = b.add_process("hi", attrs(3));
        b.mark_replicas(&[ra, rb]).unwrap();
        b.add_influence(lo, hi, 0.3).unwrap();
        let g = b.build();
        let hw = HwGraph::complete(4);
        let clustering = Clustering::singletons(&g);
        let m = mapping::approach_a(&g, &clustering, &hw, &ImportanceWeights::default()).unwrap();
        (g, clustering, m, hw)
    }

    #[test]
    fn recovery_policies_are_monotone_at_every_fault_rate() {
        let (g, c, m, hw) = repairable_system();
        for &p_hw in &[0.02, 0.1, 0.3, 0.6] {
            let model = RepairableModel {
                base: ReliabilityModel {
                    p_hw,
                    p_sw: 0.02,
                    trials: 3000,
                    ..ReliabilityModel::default()
                },
                ..RepairableModel::default()
            };
            let runs: Vec<f64> = RecoveryPolicy::ALL
                .iter()
                .map(|&p| model.evaluate(&g, &c, &m, &hw, p).mission_failure)
                .collect();
            for w in runs.windows(2) {
                assert!(
                    w[0] >= w[1],
                    "policy ordering violated at p_hw={p_hw}: {runs:?}"
                );
            }
        }
    }

    #[test]
    fn perfect_coverage_transient_faults_all_recover() {
        let (g, c, m, hw) = repairable_system();
        let model = RepairableModel {
            base: ReliabilityModel {
                p_hw: 0.4,
                p_sw: 0.0,
                trials: 2000,
                ..ReliabilityModel::default()
            },
            coverage: 1.0,
            permanent_fraction: 0.0,
            ..RepairableModel::default()
        };
        let est = model.evaluate(&g, &c, &m, &hw, RecoveryPolicy::RetryOnly);
        assert_eq!(est.mission_failure, 0.0);
        assert_eq!(est.mean_failed_processes, 0.0);
        assert!(est.mean_recoveries > 0.0);
        // Every recovery is a retry: MTTR is exactly detection + retry.
        let mttr = est.mttr.expect("recoveries happened");
        assert!((mttr - (model.detection_latency + model.retry_time)).abs() < 1e-12);
    }

    #[test]
    fn failover_rescues_permanent_failures() {
        let (g, c, m, hw) = repairable_system();
        let model = RepairableModel {
            base: ReliabilityModel {
                p_hw: 0.3,
                p_sw: 0.0,
                trials: 5000,
                ..ReliabilityModel::default()
            },
            coverage: 1.0,
            permanent_fraction: 1.0,
            ..RepairableModel::default()
        };
        let none = model.evaluate(&g, &c, &m, &hw, RecoveryPolicy::None);
        let fo = model.evaluate(&g, &c, &m, &hw, RecoveryPolicy::Failover);
        // Retry alone cannot fix a permanently dead node…
        let retry = model.evaluate(&g, &c, &m, &hw, RecoveryPolicy::RetryOnly);
        assert_eq!(retry.mission_failure, none.mission_failure);
        // …but failover re-places the stranded replica on a spare node.
        assert!(
            fo.mission_failure < none.mission_failure - 0.02,
            "failover {} vs none {}",
            fo.mission_failure,
            none.mission_failure
        );
        assert!(fo.mean_recoveries > 0.0);
        let mttr = fo.mttr.expect("failovers happened");
        assert!((mttr - (model.detection_latency + model.failover_time)).abs() < 1e-12);
    }

    #[test]
    fn zero_coverage_disables_every_recovery() {
        let (g, c, m, hw) = repairable_system();
        let model = RepairableModel {
            base: ReliabilityModel {
                p_hw: 0.3,
                trials: 2000,
                ..ReliabilityModel::default()
            },
            coverage: 0.0,
            ..RepairableModel::default()
        };
        let baseline = model.evaluate(&g, &c, &m, &hw, RecoveryPolicy::None);
        for &p in &RecoveryPolicy::ALL[1..] {
            let est = model.evaluate(&g, &c, &m, &hw, p);
            // Undetected faults are unrecoverable: with the shared fault
            // worlds every policy reduces to no-recovery, exactly.
            assert_eq!(est.mission_failure, baseline.mission_failure);
            assert_eq!(est.mean_recoveries, 0.0);
            assert_eq!(est.mttr, None);
        }
    }

    #[test]
    fn shedding_degrades_instead_of_failing() {
        // Two nodes, both full: killing one strands a critical victim
        // whose strict remap is infeasible, so Failover loses it; the
        // shedding policy displaces the low-criticality member instead.
        let mut b = SwGraphBuilder::new();
        let _v = b.add_process("v", attrs(9).with_timing(0, 6, 4));
        let _low = b.add_process("low", attrs(1).with_timing(0, 6, 4));
        let g = b.build();
        let hw = HwGraph::complete(2);
        let c = Clustering::singletons(&g);
        let m = mapping::approach_a(&g, &c, &hw, &ImportanceWeights::default()).unwrap();
        let model = RepairableModel {
            base: ReliabilityModel {
                p_hw: 0.3,
                p_sw: 0.0,
                trials: 4000,
                ..ReliabilityModel::default()
            },
            coverage: 1.0,
            permanent_fraction: 1.0,
            ..RepairableModel::default()
        };
        let fo = model.evaluate(&g, &c, &m, &hw, RecoveryPolicy::Failover);
        let sh = model.evaluate(&g, &c, &m, &hw, RecoveryPolicy::FailoverShed);
        assert!(sh.mission_failure < fo.mission_failure);
        assert!(sh.mean_shed_processes > 0.0);
        assert_eq!(fo.mean_shed_processes, 0.0);
    }

    #[test]
    fn repairable_estimates_are_deterministic_in_seed() {
        let (g, c, m, hw) = repairable_system();
        let model = RepairableModel {
            base: ReliabilityModel {
                trials: 1500,
                ..ReliabilityModel::default()
            },
            ..RepairableModel::default()
        };
        let e1 = model.evaluate(&g, &c, &m, &hw, RecoveryPolicy::FailoverShed);
        let e2 = model.evaluate(&g, &c, &m, &hw, RecoveryPolicy::FailoverShed);
        assert_eq!(e1, e2);
    }
}
