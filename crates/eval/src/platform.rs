//! HW platform selection under SW-driven requirements.
//!
//! The paper's future work asks for "a tradeoff analysis between HW and
//! SW requirements as they affect one another, especially when design
//! restrictions are provided on the choice of an available HW platform,
//! yet some flexibility remains". This module implements the selection
//! problem that phrasing describes: given a *menu* of candidate platforms
//! (sizes, topologies, resource placements, costs), pick the cheapest one
//! on which the SW graph integrates feasibly and meets a mission-failure
//! target.

use std::fmt;

use fcm_alloc::heuristics::h1;
use fcm_alloc::mapping::approach_a;
use fcm_alloc::{HwGraph, SwGraph};
use fcm_core::ImportanceWeights;

use crate::metrics::MappingQuality;
use crate::reliability::{ReliabilityEstimate, ReliabilityModel};

/// A candidate platform with its acquisition cost.
#[derive(Debug, Clone, PartialEq)]
pub struct PlatformOption {
    /// Display name, e.g. `"4-node ring"`.
    pub name: String,
    /// The platform.
    pub hw: HwGraph,
    /// Relative cost (any consistent unit).
    pub cost: f64,
}

impl PlatformOption {
    /// Creates a platform option.
    pub fn new(name: impl Into<String>, hw: HwGraph, cost: f64) -> Self {
        PlatformOption {
            name: name.into(),
            hw,
            cost,
        }
    }
}

/// The evaluation of one candidate.
#[derive(Debug, Clone, PartialEq)]
pub enum CandidateOutcome {
    /// Integration feasible; quality + reliability measured.
    Feasible {
        /// Static quality of the best integration found.
        quality: MappingQuality,
        /// Mission reliability.
        reliability: ReliabilityEstimate,
        /// Whether the mission-failure target was met.
        meets_target: bool,
    },
    /// No feasible integration on this platform.
    Infeasible {
        /// The allocation error encountered.
        reason: String,
    },
}

/// The outcome of a platform-selection run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PlatformSelection {
    /// `(option name, cost, outcome)` for every candidate, in input order.
    pub evaluated: Vec<(String, f64, CandidateOutcome)>,
    /// Index into `evaluated` of the chosen (cheapest, target-meeting)
    /// candidate, if any.
    pub chosen: Option<usize>,
}

impl PlatformSelection {
    /// The chosen candidate's name.
    pub fn chosen_name(&self) -> Option<&str> {
        self.chosen.map(|i| self.evaluated[i].0.as_str())
    }
}

impl fmt::Display for PlatformSelection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (name, cost, outcome)) in self.evaluated.iter().enumerate() {
            let marker = if Some(i) == self.chosen { "=> " } else { "   " };
            match outcome {
                CandidateOutcome::Feasible {
                    reliability,
                    meets_target,
                    ..
                } => writeln!(
                    f,
                    "{marker}{name:<20} cost {cost:>7.1}  mission_fail {:.4}  target {}",
                    reliability.mission_failure,
                    if *meets_target { "met" } else { "missed" }
                )?,
                CandidateOutcome::Infeasible { reason } => writeln!(
                    f,
                    "{marker}{name:<20} cost {cost:>7.1}  infeasible: {reason}"
                )?,
            }
        }
        Ok(())
    }
}

/// Evaluates every candidate and selects the cheapest platform on which
/// the SW graph integrates feasibly (H1 + Approach A, using all nodes)
/// with mission failure at most `max_mission_failure`.
pub fn select_platform(
    g: &SwGraph,
    options: &[PlatformOption],
    model: &ReliabilityModel,
    weights: &ImportanceWeights,
    max_mission_failure: f64,
) -> PlatformSelection {
    let mut selection = PlatformSelection::default();
    for option in options {
        let outcome = match integrate(g, &option.hw, model, weights) {
            Ok((quality, reliability)) => CandidateOutcome::Feasible {
                meets_target: reliability.mission_failure <= max_mission_failure,
                quality,
                reliability,
            },
            Err(reason) => CandidateOutcome::Infeasible { reason },
        };
        selection
            .evaluated
            .push((option.name.clone(), option.cost, outcome));
    }
    selection.chosen = selection
        .evaluated
        .iter()
        .enumerate()
        .filter(|(_, (_, _, o))| {
            matches!(
                o,
                CandidateOutcome::Feasible {
                    meets_target: true,
                    ..
                }
            )
        })
        .min_by(|(_, (_, ca, _)), (_, (_, cb, _))| ca.partial_cmp(cb).expect("finite costs"))
        .map(|(i, _)| i);
    selection
}

fn integrate(
    g: &SwGraph,
    hw: &HwGraph,
    model: &ReliabilityModel,
    weights: &ImportanceWeights,
) -> Result<(MappingQuality, ReliabilityEstimate), String> {
    let k = hw.len().min(g.node_count());
    let clustering = h1(g, k).map_err(|e| e.to_string())?;
    let mapping = approach_a(g, &clustering, hw, weights).map_err(|e| e.to_string())?;
    let quality = MappingQuality::evaluate(g, &clustering, &mapping, hw, model.critical_at);
    let reliability = model.evaluate(g, &clustering, &mapping);
    Ok((quality, reliability))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcm_alloc::sw::SwGraphBuilder;
    use fcm_core::{AttributeSet, FaultTolerance};

    fn workload() -> SwGraph {
        let mut b = SwGraphBuilder::new();
        b.add_process(
            "crit",
            AttributeSet::default()
                .with_criticality(9)
                .with_fault_tolerance(FaultTolerance::TMR),
        );
        b.add_process("aux", AttributeSet::default().with_criticality(2));
        fcm_alloc::replication::expand_replicas(&b.build()).graph
    }

    fn model() -> ReliabilityModel {
        ReliabilityModel {
            p_hw: 0.05,
            p_sw: 0.0,
            trials: 5000,
            critical_at: 5,
            ..ReliabilityModel::default()
        }
    }

    fn menu() -> Vec<PlatformOption> {
        vec![
            PlatformOption::new("2-node", HwGraph::complete(2), 2.0),
            PlatformOption::new("3-node", HwGraph::complete(3), 3.0),
            PlatformOption::new("4-node", HwGraph::complete(4), 4.0),
            PlatformOption::new("6-node", HwGraph::complete(6), 6.0),
        ]
    }

    #[test]
    fn cheapest_feasible_target_meeting_platform_wins() {
        let g = workload(); // TMR needs >= 3 nodes
        let sel = select_platform(&g, &menu(), &model(), &ImportanceWeights::default(), 0.05);
        // 2-node is infeasible (replica anti-affinity); 3-node is the
        // cheapest feasible and TMR on 3 nodes fails with p³ ≈ 1e-4 ≤ 5%.
        assert_eq!(sel.chosen_name(), Some("3-node"));
        assert!(matches!(
            sel.evaluated[0].2,
            CandidateOutcome::Infeasible { .. }
        ));
    }

    #[test]
    fn unreachable_target_selects_nothing() {
        let g = workload();
        // A HW fault rate of 0.5 makes even TMR fail 12.5% of missions,
        // so a 5% target is unreachable on every candidate.
        let harsh = ReliabilityModel {
            p_hw: 0.5,
            ..model()
        };
        let sel = select_platform(&g, &menu(), &harsh, &ImportanceWeights::default(), 0.05);
        assert_eq!(sel.chosen, None);
        // All candidates were still evaluated.
        assert_eq!(sel.evaluated.len(), 4);
    }

    #[test]
    fn resource_requirements_rule_out_bare_platforms() {
        let mut g = workload();
        let aux = g
            .nodes()
            .find(|(_, n)| n.name == "aux")
            .map(|(i, _)| i)
            .expect("aux exists");
        g.node_mut(aux)
            .expect("node exists")
            .required_resources
            .insert("gpu".into());
        let mut rich = HwGraph::complete(4);
        rich.node_mut(fcm_graph::NodeIdx(0))
            .expect("node 0")
            .resources
            .insert("gpu".into());
        let options = vec![
            PlatformOption::new("bare-4", HwGraph::complete(4), 4.0),
            PlatformOption::new("gpu-4", rich, 5.0),
        ];
        let sel = select_platform(&g, &options, &model(), &ImportanceWeights::default(), 0.05);
        assert_eq!(sel.chosen_name(), Some("gpu-4"));
    }

    #[test]
    fn display_marks_the_choice() {
        let g = workload();
        let sel = select_platform(&g, &menu(), &model(), &ImportanceWeights::default(), 0.05);
        let s = sel.to_string();
        assert!(s.contains("=> 3-node"));
        assert!(s.contains("infeasible"));
    }

    #[test]
    fn empty_menu_selects_nothing() {
        let g = workload();
        let sel = select_platform(&g, &[], &model(), &ImportanceWeights::default(), 1.0);
        assert_eq!(sel.chosen, None);
        assert!(sel.evaluated.is_empty());
    }
}
