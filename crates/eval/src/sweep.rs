//! The parallel sweep driver.
//!
//! Every experiment in the reproduction is, at heart, a *sweep*: a grid
//! of independent cells (a graph size, a seed, an integration depth…)
//! each evaluated by a pure function of the cell plus a deterministic
//! RNG. [`SweepDriver`] fans those cells across the `fcm-substrate`
//! thread pool while keeping the output **byte-identical** to a
//! sequential run:
//!
//! * each cell `i` draws from its own split RNG stream
//!   (`Rng::stream(base_seed, i)`), so no cell's randomness depends on
//!   which worker ran it or in what order;
//! * results come back in cell order (`par_map_threads` preserves input
//!   order regardless of the thread count).
//!
//! The thread count comes from the `FCM_SWEEP_THREADS` environment
//! variable when set (a positive integer; `1` forces a fully sequential
//! sweep — `scripts/verify.sh` uses this to byte-compare sequential and
//! parallel output), otherwise from the pool's default worker count.
//! Cell counts and wall time land in the global
//! [`fcm_substrate::telemetry`] under the `eval.sweep` stage.

use fcm_substrate::pool::{par_map_threads, worker_count};
use fcm_substrate::rng::Rng;
use fcm_substrate::telemetry;

/// Environment variable overriding the sweep thread count.
pub const SWEEP_THREADS_ENV: &str = "FCM_SWEEP_THREADS";

/// Fans sweep cells across the substrate pool with split RNG streams.
#[derive(Debug, Clone)]
pub struct SweepDriver {
    base_seed: u64,
    threads: usize,
}

impl SweepDriver {
    /// Driver with the given RNG base seed; thread count from
    /// `FCM_SWEEP_THREADS` when set, else the pool default.
    #[must_use]
    pub fn new(base_seed: u64) -> SweepDriver {
        SweepDriver {
            base_seed,
            threads: threads_from_env(std::env::var(SWEEP_THREADS_ENV).ok().as_deref()),
        }
    }

    /// Overrides the thread count (values below 1 are clamped to 1).
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> SweepDriver {
        self.threads = threads.max(1);
        self
    }

    /// The thread count this driver fans out to.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The base seed cell streams are split from.
    #[must_use]
    pub fn base_seed(&self) -> u64 {
        self.base_seed
    }

    /// Evaluates `f` on every cell, in parallel, returning results in
    /// cell order. Cell `i` receives `Rng::stream(base_seed, i)`, so the
    /// result vector is identical whatever the thread count.
    ///
    /// When observability is enabled ([`fcm_obs::init`]) each cell runs
    /// under its own `eval.sweep.cell` span, explicitly parented under
    /// the caller's current span so the fan-out renders as one tree in
    /// `obsview` even though cells execute on pool worker threads.
    pub fn run<T, R, F>(&self, cells: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T, &mut Rng) -> R + Sync,
    {
        let t = telemetry::global();
        t.add("eval.sweep.cells", cells.len() as u64);
        fcm_obs::counter_add("eval.sweep.cells", cells.len() as u64);
        #[allow(clippy::cast_precision_loss)]
        fcm_obs::gauge_set("eval.sweep.threads", self.threads as f64);
        let sweep_span = fcm_obs::span("eval.sweep");
        let parent = sweep_span.id();
        t.time("eval.sweep", || {
            let indices: Vec<usize> = (0..cells.len()).collect();
            par_map_threads(&indices, self.threads, |&i| {
                let _cell = fcm_obs::span_under("eval.sweep.cell", parent, Some(i as u64));
                let t0 = fcm_obs::enabled().then(fcm_obs::span::now_ns);
                let mut rng = Rng::stream(self.base_seed, i as u64);
                let out = f(&cells[i], &mut rng);
                if let Some(t0) = t0 {
                    let elapsed = fcm_obs::span::now_ns().saturating_sub(t0);
                    fcm_obs::hist_record("eval.sweep.cell_ns", elapsed);
                }
                out
            })
        })
    }
}

/// Parses a `FCM_SWEEP_THREADS` value; invalid, missing, or zero values
/// fall back to the pool's default worker count.
fn threads_from_env(value: Option<&str>) -> usize {
    match value.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) if n >= 1 => n,
        _ => worker_count(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_identical_for_any_thread_count() {
        let cells: Vec<u64> = (0..97).collect();
        let eval = |&c: &u64, rng: &mut Rng| -> (u64, u64, f64) {
            // Mix cell payload with stream randomness, several draws deep.
            let a = rng.gen::<u64>() ^ c;
            let b = rng.gen_range(0..1_000_000u64);
            let x = rng.gen::<f64>();
            (a, b, x)
        };
        let sequential = SweepDriver::new(7).with_threads(1).run(&cells, eval);
        for threads in [2, 3, 8, 64] {
            let parallel = SweepDriver::new(7).with_threads(threads).run(&cells, eval);
            // Bit-exact, including the f64 draws.
            assert_eq!(sequential.len(), parallel.len());
            for (s, p) in sequential.iter().zip(&parallel) {
                assert_eq!(s.0, p.0);
                assert_eq!(s.1, p.1);
                assert_eq!(s.2.to_bits(), p.2.to_bits());
            }
        }
    }

    #[test]
    fn cell_streams_are_independent_of_each_other() {
        // Dropping a cell must not shift the streams of the others.
        let full: Vec<u64> = (0..10).collect();
        let driver = SweepDriver::new(99).with_threads(4);
        let draws = driver.run(&full, |_, rng| rng.gen::<u64>());
        let again = driver.run(&full, |_, rng| rng.gen::<u64>());
        assert_eq!(draws, again, "same seed, same streams");
        // Distinct cells see distinct streams.
        assert_ne!(draws[0], draws[1]);
        // A different base seed changes every stream.
        let other = SweepDriver::new(100).with_threads(4);
        assert_ne!(draws, other.run(&full, |_, rng| rng.gen::<u64>()));
    }

    #[test]
    fn results_are_identical_with_observability_enabled() {
        // The observation contract: recording spans/metrics must not
        // perturb a single drawn value.
        let cells: Vec<u64> = (0..50).collect();
        let eval = |&c: &u64, rng: &mut Rng| (rng.gen::<u64>() ^ c, rng.gen::<f64>().to_bits());
        let off = SweepDriver::new(3).with_threads(4).run(&cells, eval);
        fcm_obs::init(fcm_obs::ObsConfig::default());
        let on = SweepDriver::new(3).with_threads(4).run(&cells, eval);
        fcm_obs::set_enabled(false);
        assert_eq!(off, on);
        // And the sweep did leave a trace behind.
        let snap = fcm_obs::metrics::drain();
        assert!(snap.counters.get("eval.sweep.cells").copied().unwrap_or(0) >= 50);
    }

    #[test]
    fn empty_sweep_returns_empty() {
        let out: Vec<u64> = SweepDriver::new(0).run(&[] as &[u64], |_, rng| rng.gen());
        assert!(out.is_empty());
    }

    #[test]
    fn env_parsing_falls_back_to_the_pool_default() {
        assert_eq!(threads_from_env(Some("3")), 3);
        assert_eq!(threads_from_env(Some(" 2 ")), 2);
        assert_eq!(threads_from_env(Some("0")), worker_count());
        assert_eq!(threads_from_env(Some("nope")), worker_count());
        assert_eq!(threads_from_env(None), worker_count());
    }

    #[test]
    fn builder_accessors_round_trip() {
        let d = SweepDriver::new(5).with_threads(0);
        assert_eq!(d.threads(), 1, "clamped to at least one");
        assert_eq!(d.base_seed(), 5);
    }
}
