//! Side-by-side comparison of integration strategies.
//!
//! The experiments E1 and E4 evaluate several clustering/mapping
//! strategies on one workload; this harness runs each strategy, collects
//! [`MappingQuality`] and [`ReliabilityEstimate`], and renders a table.

use std::fmt;

use fcm_alloc::{AllocError, Clustering, HwGraph, Mapping, SwGraph};

use crate::metrics::MappingQuality;
use crate::reliability::{ReliabilityEstimate, ReliabilityModel};

/// The outcome of one strategy on one workload.
#[derive(Debug, Clone, PartialEq)]
pub struct StrategyOutcome {
    /// Strategy name (e.g. `"H1"`, `"approach B"`).
    pub name: String,
    /// Static quality metrics.
    pub quality: MappingQuality,
    /// Mission reliability.
    pub reliability: ReliabilityEstimate,
}

/// A comparison across strategies on a fixed workload + platform.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Comparison {
    outcomes: Vec<StrategyOutcome>,
    failures: Vec<(String, String)>,
}

impl Comparison {
    /// Starts an empty comparison.
    pub fn new() -> Self {
        Comparison::default()
    }

    /// Runs one named strategy (a closure producing a clustering and
    /// mapping) and records its metrics; strategy errors are recorded as
    /// failures rather than aborting the comparison.
    pub fn run_strategy(
        &mut self,
        name: impl Into<String>,
        g: &SwGraph,
        hw: &HwGraph,
        model: &ReliabilityModel,
        strategy: impl FnOnce() -> Result<(Clustering, Mapping), AllocError>,
    ) -> &mut Self {
        let name = name.into();
        match strategy() {
            Ok((clustering, mapping)) => {
                let quality =
                    MappingQuality::evaluate(g, &clustering, &mapping, hw, model.critical_at);
                let reliability = model.evaluate(g, &clustering, &mapping);
                self.outcomes.push(StrategyOutcome {
                    name,
                    quality,
                    reliability,
                });
            }
            Err(e) => self.failures.push((name, e.to_string())),
        }
        self
    }

    /// The successful outcomes, in insertion order.
    pub fn outcomes(&self) -> &[StrategyOutcome] {
        &self.outcomes
    }

    /// Strategies that failed, with their error messages.
    pub fn failures(&self) -> &[(String, String)] {
        &self.failures
    }

    /// The strategy with the lowest mission-failure probability.
    pub fn most_reliable(&self) -> Option<&StrategyOutcome> {
        self.outcomes.iter().min_by(|a, b| {
            a.reliability
                .mission_failure
                .partial_cmp(&b.reliability.mission_failure)
                .expect("finite probabilities")
        })
    }

    /// The strategy with the lowest residual cross-node influence.
    pub fn best_containment(&self) -> Option<&StrategyOutcome> {
        self.outcomes.iter().min_by(|a, b| {
            a.quality
                .cross_influence
                .partial_cmp(&b.quality.cross_influence)
                .expect("finite influence")
        })
    }
}

impl fmt::Display for Comparison {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:<14} {:>9} {:>10} {:>10} {:>11} {:>9} {:>12}",
            "strategy",
            "clusters",
            "cross_infl",
            "dilation",
            "crit_coloc",
            "min_sep",
            "mission_fail"
        )?;
        for o in &self.outcomes {
            writeln!(
                f,
                "{:<14} {:>9} {:>10.4} {:>10.4} {:>11} {:>9.4} {:>12.4}",
                o.name,
                o.quality.clusters,
                o.quality.cross_influence,
                o.quality.dilation,
                o.quality.critical_colocations,
                o.quality.min_cross_node_separation,
                o.reliability.mission_failure
            )?;
        }
        for (name, err) in &self.failures {
            writeln!(f, "{name:<14} FAILED: {err}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcm_alloc::{heuristics, mapping, sw::SwGraphBuilder};
    use fcm_core::{AttributeSet, ImportanceWeights};

    fn workload() -> SwGraph {
        let mut b = SwGraphBuilder::new();
        let n: Vec<_> = (0..6)
            .map(|i| {
                b.add_process(
                    format!("p{i}"),
                    AttributeSet::default().with_criticality(10 - i as u32),
                )
            })
            .collect();
        for w in n.windows(2) {
            b.add_influence(w[0], w[1], 0.4).unwrap();
        }
        b.add_influence(n[5], n[0], 0.2).unwrap();
        b.build()
    }

    fn quick_model() -> ReliabilityModel {
        ReliabilityModel {
            trials: 500,
            ..ReliabilityModel::default()
        }
    }

    #[test]
    fn comparison_collects_outcomes_and_failures() {
        let g = workload();
        let hw = HwGraph::complete(3);
        let model = quick_model();
        let w = ImportanceWeights::default();
        let mut cmp = Comparison::new();
        cmp.run_strategy("H1", &g, &hw, &model, || {
            let c = heuristics::h1(&g, 3)?;
            let m = mapping::approach_a(&g, &c, &hw, &w)?;
            Ok((c, m))
        });
        cmp.run_strategy("B", &g, &hw, &model, || mapping::approach_b(&g, &hw, &w));
        cmp.run_strategy("broken", &g, &hw, &model, || {
            Err(AllocError::TooFewHwNodes {
                clusters: 9,
                hw_nodes: 3,
            })
        });
        assert_eq!(cmp.outcomes().len(), 2);
        assert_eq!(cmp.failures().len(), 1);
        assert!(cmp.most_reliable().is_some());
        assert!(cmp.best_containment().is_some());
        let table = cmp.to_string();
        assert!(table.contains("H1"));
        assert!(table.contains("FAILED"));
    }

    #[test]
    fn h1_has_best_containment_on_a_chain() {
        let g = workload();
        let hw = HwGraph::complete(3);
        let model = quick_model();
        let w = ImportanceWeights::default();
        let mut cmp = Comparison::new();
        cmp.run_strategy("H1", &g, &hw, &model, || {
            let c = heuristics::h1(&g, 3)?;
            let m = mapping::approach_a(&g, &c, &hw, &w)?;
            Ok((c, m))
        });
        cmp.run_strategy("B", &g, &hw, &model, || mapping::approach_b(&g, &hw, &w));
        // H1 minimises cross influence by construction; B pairs by
        // criticality and typically leaves more influence crossing.
        let h1 = &cmp.outcomes()[0];
        let b = &cmp.outcomes()[1];
        assert!(h1.quality.cross_influence <= b.quality.cross_influence);
        assert_eq!(cmp.best_containment().unwrap().name, "H1");
    }

    #[test]
    fn empty_comparison_has_no_best() {
        let cmp = Comparison::new();
        assert!(cmp.most_reliable().is_none());
        assert!(cmp.best_containment().is_none());
        assert_eq!(cmp.to_string().lines().count(), 1); // header only
    }
}
