//! Dependability evaluation of integrated mappings.
//!
//! The ICDCS'98 paper proposes integration heuristics but never evaluates
//! them quantitatively — its §5.3 only *lists* the criteria of a good
//! mapping (constraint satisfaction, fault containment, criticality
//! separation). This crate supplies the missing measurement layer:
//!
//! * [`metrics`] — static quality metrics of a clustering + mapping:
//!   residual cross-node influence (fault containment), communication
//!   dilation, criticality exposure (how many critical modules share a
//!   processor), and minimum pairwise separation (Eq. 3) across HW nodes;
//! * [`reliability`] — a Monte-Carlo mission-reliability model: HW nodes
//!   fail, SW processes fail, faults propagate along influence edges
//!   (attenuated across HW-node boundaries, which are fault containment
//!   regions), and the mission fails when every replica of a critical
//!   module is lost; its repairable-system mode adds watchdog coverage,
//!   transient/permanent faults, checkpoint/retry, failover re-placement
//!   and degraded-mode shedding under a [`RecoveryPolicy`] sweep;
//! * [`compare`] — a harness that evaluates several integration
//!   strategies side by side and renders the comparison table used by the
//!   E1/E4 experiments.
//!
//! # Example
//!
//! ```
//! use fcm_alloc::{heuristics, hw::HwGraph, mapping, sw::SwGraphBuilder};
//! use fcm_core::{AttributeSet, ImportanceWeights};
//! use fcm_eval::metrics::MappingQuality;
//!
//! let mut b = SwGraphBuilder::new();
//! let a = b.add_process("a", AttributeSet::default().with_criticality(9));
//! let c = b.add_process("b", AttributeSet::default().with_criticality(1));
//! b.add_influence(a, c, 0.6)?;
//! let sw = b.build();
//! let hw = HwGraph::complete(2);
//! let clustering = heuristics::h1(&sw, 2)?;
//! let mapping = mapping::approach_a(&sw, &clustering, &hw, &ImportanceWeights::default())?;
//! let q = MappingQuality::evaluate(&sw, &clustering, &mapping, &hw, 5);
//! assert!((q.cross_influence - 0.6).abs() < 1e-12);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compare;
pub mod metrics;
pub mod platform;
pub mod reliability;
pub mod sweep;
pub mod tradeoff;

pub use compare::{Comparison, StrategyOutcome};
pub use metrics::MappingQuality;
pub use platform::{select_platform, PlatformOption, PlatformSelection};
pub use reliability::{
    RecoveryPolicy, ReliabilityEstimate, ReliabilityModel, RepairableEstimate, RepairableModel,
};
pub use sweep::SweepDriver;
pub use tradeoff::{integration_sweep, TradeoffCurve, TradeoffPoint};
