//! Property-based tests: random composition sequences preserve the
//! hierarchy invariants (rules R1/R2 structurally, R3/R4 behaviourally).

use fcm_core::{AttributeSet, FcmHierarchy, FcmId, HierarchyLevel};
use proptest::prelude::*;

/// A random sequence of composition operations.
#[derive(Debug, Clone)]
enum Op {
    AddRoot,
    AddChild(usize),
    MergeSiblings(usize, usize),
    Duplicate(usize, usize),
    IntegrateAcross(usize, usize),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(
        prop_oneof![
            1 => Just(Op::AddRoot),
            4 => (0usize..64).prop_map(Op::AddChild),
            2 => (0usize..64, 0usize..64).prop_map(|(a, b)| Op::MergeSiblings(a, b)),
            1 => (0usize..64, 0usize..64).prop_map(|(a, b)| Op::Duplicate(a, b)),
            1 => (0usize..64, 0usize..64).prop_map(|(a, b)| Op::IntegrateAcross(a, b)),
        ],
        1..60,
    )
}

/// Applies ops best-effort (invalid ones simply error and are skipped),
/// returning the hierarchy.
fn run_ops(ops: &[Op]) -> FcmHierarchy {
    let mut h = FcmHierarchy::new();
    // Seed with two process trees so child ops have targets.
    let p1 = h
        .add_root("seed1", HierarchyLevel::Process, AttributeSet::default())
        .expect("root");
    let _p2 = h
        .add_root("seed2", HierarchyLevel::Process, AttributeSet::default())
        .expect("root");
    let _ = h.add_child(p1, "t0", AttributeSet::default());
    let mut counter = 0usize;
    let mut name = || {
        counter += 1;
        format!("n{counter}")
    };
    // Ids are dense; ops address them modulo the arena size.
    for op in ops {
        let live: Vec<FcmId> = h.iter().map(|f| f.id()).collect();
        if live.is_empty() {
            break;
        }
        let pick = |i: usize| live[i % live.len()];
        match *op {
            Op::AddRoot => {
                let _ = h.add_root(name(), HierarchyLevel::Process, AttributeSet::default());
            }
            Op::AddChild(i) => {
                let _ = h.add_child(pick(i), name(), AttributeSet::default());
            }
            Op::MergeSiblings(a, b) => {
                let _ = h.merge_siblings(pick(a), pick(b), name());
            }
            Op::Duplicate(c, p) => {
                let _ = h.duplicate_into(pick(c), pick(p));
            }
            Op::IntegrateAcross(a, b) => {
                let _ = h.integrate_across(pick(a), pick(b), name());
            }
        }
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_composition_sequence_preserves_the_invariants(ops in arb_ops()) {
        let h = run_ops(&ops);
        h.verify().expect("invariants must hold after any op sequence");
    }

    #[test]
    fn retest_sets_stay_within_the_live_hierarchy(ops in arb_ops()) {
        let h = run_ops(&ops);
        for fcm in h.iter() {
            let rt = h.retest_set(fcm.id()).expect("live fcm");
            if let Some(p) = rt.parent {
                prop_assert!(h.fcm(p).is_ok());
                // R5: the parent really is the modified FCM's parent.
                prop_assert_eq!(h.fcm(fcm.id()).unwrap().parent(), Some(p));
            }
            for s in &rt.sibling_interfaces {
                prop_assert!(h.fcm(*s).is_ok());
                prop_assert!(h.are_siblings(fcm.id(), *s).unwrap());
            }
            // The R5 set never exceeds the naive whole-tree set.
            let naive = h.naive_retest_set(fcm.id()).expect("live fcm");
            prop_assert!(rt.size() <= naive.len() + 1);
        }
    }

    #[test]
    fn levels_always_step_down_one_rank(ops in arb_ops()) {
        let h = run_ops(&ops);
        for fcm in h.iter() {
            for &c in fcm.children() {
                let child = h.fcm(c).expect("child is live");
                prop_assert_eq!(Some(child.level()), fcm.level().child());
            }
        }
    }

    #[test]
    fn descendants_are_acyclic_and_unique(ops in arb_ops()) {
        let h = run_ops(&ops);
        for root in h.roots() {
            let mut d = h.descendants(root.id()).expect("live root");
            let before = d.len();
            d.sort();
            d.dedup();
            prop_assert_eq!(d.len(), before, "duplicate in descendants = shared child");
        }
    }
}
