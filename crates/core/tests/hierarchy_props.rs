//! Property-based tests: random composition sequences preserve the
//! hierarchy invariants (rules R1/R2 structurally, R3/R4 behaviourally).

use fcm_core::{AttributeSet, FcmHierarchy, FcmId, HierarchyLevel};
use fcm_substrate::prop;
use fcm_substrate::rng::Rng;
use fcm_substrate::{prop_assert, prop_assert_eq};

/// A random sequence of composition operations.
#[derive(Debug, Clone)]
enum Op {
    AddRoot,
    AddChild(usize),
    MergeSiblings(usize, usize),
    Duplicate(usize, usize),
    IntegrateAcross(usize, usize),
}

/// Weighted random op mix (4:2:1:1:1 child/merge/root/dup/integrate),
/// sequence length scaled by the shrinkable size budget up to 59.
fn arb_ops(rng: &mut Rng, size: usize) -> Vec<Op> {
    let hi = 59usize.min(1 + size * 59 / 100).max(1);
    let len = rng.gen_range(1..=hi);
    (0..len)
        .map(|_| match rng.gen_range(0u32..9) {
            0 => Op::AddRoot,
            1..=4 => Op::AddChild(rng.gen_range(0usize..64)),
            5 | 6 => Op::MergeSiblings(rng.gen_range(0usize..64), rng.gen_range(0usize..64)),
            7 => Op::Duplicate(rng.gen_range(0usize..64), rng.gen_range(0usize..64)),
            _ => Op::IntegrateAcross(rng.gen_range(0usize..64), rng.gen_range(0usize..64)),
        })
        .collect()
}

/// Applies ops best-effort (invalid ones simply error and are skipped),
/// returning the hierarchy.
fn run_ops(ops: &[Op]) -> FcmHierarchy {
    let mut h = FcmHierarchy::new();
    // Seed with two process trees so child ops have targets.
    let p1 = h
        .add_root("seed1", HierarchyLevel::Process, AttributeSet::default())
        .expect("root");
    let _p2 = h
        .add_root("seed2", HierarchyLevel::Process, AttributeSet::default())
        .expect("root");
    let _ = h.add_child(p1, "t0", AttributeSet::default());
    let mut counter = 0usize;
    let mut name = || {
        counter += 1;
        format!("n{counter}")
    };
    // Ids are dense; ops address them modulo the arena size.
    for op in ops {
        let live: Vec<FcmId> = h.iter().map(|f| f.id()).collect();
        if live.is_empty() {
            break;
        }
        let pick = |i: usize| live[i % live.len()];
        match *op {
            Op::AddRoot => {
                let _ = h.add_root(name(), HierarchyLevel::Process, AttributeSet::default());
            }
            Op::AddChild(i) => {
                let _ = h.add_child(pick(i), name(), AttributeSet::default());
            }
            Op::MergeSiblings(a, b) => {
                let _ = h.merge_siblings(pick(a), pick(b), name());
            }
            Op::Duplicate(c, p) => {
                let _ = h.duplicate_into(pick(c), pick(p));
            }
            Op::IntegrateAcross(a, b) => {
                let _ = h.integrate_across(pick(a), pick(b), name());
            }
        }
    }
    h
}

#[test]
fn any_composition_sequence_preserves_the_invariants() {
    prop::check_cases(
        "any_composition_sequence_preserves_the_invariants",
        128,
        arb_ops,
        |ops| {
            let h = run_ops(ops);
            h.verify().expect("invariants must hold after any op sequence");
            Ok(())
        },
    );
}

#[test]
fn retest_sets_stay_within_the_live_hierarchy() {
    prop::check_cases(
        "retest_sets_stay_within_the_live_hierarchy",
        128,
        arb_ops,
        |ops| {
            let h = run_ops(ops);
            for fcm in h.iter() {
                let rt = h.retest_set(fcm.id()).expect("live fcm");
                if let Some(p) = rt.parent {
                    prop_assert!(h.fcm(p).is_ok());
                    // R5: the parent really is the modified FCM's parent.
                    prop_assert_eq!(h.fcm(fcm.id()).unwrap().parent(), Some(p));
                }
                for s in &rt.sibling_interfaces {
                    prop_assert!(h.fcm(*s).is_ok());
                    prop_assert!(h.are_siblings(fcm.id(), *s).unwrap());
                }
                // The R5 set never exceeds the naive whole-tree set.
                let naive = h.naive_retest_set(fcm.id()).expect("live fcm");
                prop_assert!(rt.size() <= naive.len() + 1);
            }
            Ok(())
        },
    );
}

#[test]
fn levels_always_step_down_one_rank() {
    prop::check_cases(
        "levels_always_step_down_one_rank",
        128,
        arb_ops,
        |ops| {
            let h = run_ops(ops);
            for fcm in h.iter() {
                for &c in fcm.children() {
                    let child = h.fcm(c).expect("child is live");
                    prop_assert_eq!(Some(child.level()), fcm.level().child());
                }
            }
            Ok(())
        },
    );
}

#[test]
fn descendants_are_acyclic_and_unique() {
    prop::check_cases(
        "descendants_are_acyclic_and_unique",
        128,
        arb_ops,
        |ops| {
            let h = run_ops(ops);
            for root in h.roots() {
                let mut d = h.descendants(root.id()).expect("live root");
                let before = d.len();
                d.sort();
                d.dedup();
                prop_assert_eq!(d.len(), before, "duplicate in descendants = shared child");
            }
            Ok(())
        },
    );
}
