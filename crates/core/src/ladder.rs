//! Generalised N-level FCM hierarchies.
//!
//! The paper fixes three levels but is explicit that the choice is
//! presentational: *"Once such a framework is established, it is possible
//! to add/delete levels (or elements of the hierarchy) as desired"*, and
//! its OO footnote observes that *"object-oriented implementation …
//! introduces objects/classes as another natural level in the hierarchy,
//! with its own kinds of faults"*. This module provides that extension: a
//! [`LevelLadder`] names an arbitrary ordered set of levels, and a
//! [`GenericFcmHierarchy`] enforces the same composition rules R1–R5 over
//! it. [`FcmHierarchy`](crate::FcmHierarchy) remains the paper's fixed
//! three-level instance.

use std::fmt;

use crate::attributes::AttributeSet;
use crate::composition::CompositionKind;
use crate::error::FcmError;
use crate::hierarchy::{FcmId, RetestSet};

/// A named level in a [`LevelLadder`]; rank 0 is the leaf.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Rank(pub usize);

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rank {}", self.0)
    }
}

/// An ordered ladder of level names, leaf first.
///
/// # Example
///
/// ```
/// use fcm_core::ladder::LevelLadder;
///
/// let ladder = LevelLadder::with_objects();
/// assert_eq!(ladder.len(), 4);
/// assert_eq!(ladder.name(ladder.rank_of("object").unwrap()), "object");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelLadder {
    names: Vec<String>,
}

impl LevelLadder {
    /// Creates a ladder from level names, leaf first.
    ///
    /// # Errors
    ///
    /// Returns [`FcmError::NothingToCompose`] when `names` is empty or
    /// contains duplicates.
    pub fn new<S: Into<String>>(names: impl IntoIterator<Item = S>) -> Result<Self, FcmError> {
        let names: Vec<String> = names.into_iter().map(Into::into).collect();
        if names.is_empty() {
            return Err(FcmError::NothingToCompose);
        }
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        if dedup.len() != names.len() {
            return Err(FcmError::NothingToCompose);
        }
        Ok(LevelLadder { names })
    }

    /// The paper's standard three-level ladder.
    pub fn standard() -> Self {
        LevelLadder::new(["procedure", "task", "process"]).expect("static names are valid")
    }

    /// The OO footnote's four-level ladder: objects slot in between
    /// procedures and tasks.
    pub fn with_objects() -> Self {
        LevelLadder::new(["procedure", "object", "task", "process"])
            .expect("static names are valid")
    }

    /// Number of levels.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the ladder has no levels (never true for a constructed
    /// ladder).
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// The name of a rank.
    ///
    /// # Panics
    ///
    /// Panics when the rank is out of range.
    pub fn name(&self, rank: Rank) -> &str {
        &self.names[rank.0]
    }

    /// The rank of a level name.
    pub fn rank_of(&self, name: &str) -> Option<Rank> {
        self.names.iter().position(|n| n == name).map(Rank)
    }

    /// The top (root) rank.
    pub fn top(&self) -> Rank {
        Rank(self.names.len() - 1)
    }

    /// The rank above, or `None` at the top.
    pub fn parent_rank(&self, rank: Rank) -> Option<Rank> {
        if rank.0 + 1 < self.names.len() {
            Some(Rank(rank.0 + 1))
        } else {
            None
        }
    }

    /// The rank below, or `None` at the leaf.
    pub fn child_rank(&self, rank: Rank) -> Option<Rank> {
        rank.0.checked_sub(1).map(Rank)
    }

    /// Inserts a new level immediately above `below` — the paper's "add
    /// levels as desired". Existing ranks at or above the insertion point
    /// shift up by one.
    ///
    /// # Errors
    ///
    /// Returns [`FcmError::NothingToCompose`] for a duplicate name.
    pub fn insert_above(&mut self, below: Rank, name: impl Into<String>) -> Result<Rank, FcmError> {
        let name = name.into();
        if self.names.contains(&name) {
            return Err(FcmError::NothingToCompose);
        }
        let at = (below.0 + 1).min(self.names.len());
        self.names.insert(at, name);
        Ok(Rank(at))
    }
}

impl fmt::Display for LevelLadder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.names.join(" < "))
    }
}

/// An FCM in a generic hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct GenericFcm {
    id: FcmId,
    name: String,
    rank: Rank,
    attributes: AttributeSet,
    parent: Option<FcmId>,
    children: Vec<FcmId>,
    alive: bool,
}

impl GenericFcm {
    /// The FCM's id.
    pub fn id(&self) -> FcmId {
        self.id
    }

    /// The FCM's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The FCM's rank in the ladder.
    pub fn rank(&self) -> Rank {
        self.rank
    }

    /// The attribute set.
    pub fn attributes(&self) -> &AttributeSet {
        &self.attributes
    }

    /// The parent, if any.
    pub fn parent(&self) -> Option<FcmId> {
        self.parent
    }

    /// The children, in insertion order.
    pub fn children(&self) -> &[FcmId] {
        &self.children
    }
}

/// An FCM hierarchy over an arbitrary [`LevelLadder`], enforcing the
/// same composition rules R1–R5 as the fixed three-level
/// [`FcmHierarchy`](crate::FcmHierarchy).
///
/// # Example
///
/// ```
/// use fcm_core::ladder::{GenericFcmHierarchy, LevelLadder};
/// use fcm_core::AttributeSet;
///
/// let mut h = GenericFcmHierarchy::new(LevelLadder::with_objects());
/// let process = h.add_root("fms", "process", AttributeSet::default())?;
/// let task = h.add_child(process, "route", AttributeSet::default())?;
/// let object = h.add_child(task, "leg", AttributeSet::default())?;
/// let proc1 = h.add_child(object, "distance", AttributeSet::default())?;
/// assert_eq!(h.ladder().name(h.fcm(proc1)?.rank()), "procedure");
/// # Ok::<(), fcm_core::FcmError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GenericFcmHierarchy {
    ladder: LevelLadder,
    arena: Vec<GenericFcm>,
}

impl GenericFcmHierarchy {
    /// Creates an empty hierarchy over `ladder`.
    pub fn new(ladder: LevelLadder) -> Self {
        GenericFcmHierarchy {
            ladder,
            arena: Vec::new(),
        }
    }

    /// The ladder in use.
    pub fn ladder(&self) -> &LevelLadder {
        &self.ladder
    }

    /// Number of live FCMs.
    pub fn len(&self) -> usize {
        self.arena.iter().filter(|f| f.alive).count()
    }

    /// Whether the hierarchy has no live FCMs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds a root FCM at the named level.
    ///
    /// # Errors
    ///
    /// Returns [`FcmError::UnknownFcm`] for an unknown level name (the id
    /// in the error is a sentinel).
    pub fn add_root(
        &mut self,
        name: impl Into<String>,
        level: &str,
        attributes: AttributeSet,
    ) -> Result<FcmId, FcmError> {
        let rank = self.ladder.rank_of(level).ok_or(FcmError::UnknownFcm {
            id: FcmId(u64::MAX),
        })?;
        Ok(self.push(name.into(), rank, attributes, None))
    }

    /// Adds a child exactly one rank below `parent` (rule R1).
    ///
    /// # Errors
    ///
    /// * [`FcmError::UnknownFcm`] — missing parent;
    /// * [`FcmError::BelowLeafLevel`] — the parent is at the leaf rank.
    pub fn add_child(
        &mut self,
        parent: FcmId,
        name: impl Into<String>,
        attributes: AttributeSet,
    ) -> Result<FcmId, FcmError> {
        let parent_rank = self.fcm(parent)?.rank;
        let child_rank = self
            .ladder
            .child_rank(parent_rank)
            .ok_or(FcmError::BelowLeafLevel { id: parent })?;
        let id = self.push(name.into(), child_rank, attributes, Some(parent));
        self.arena[parent.0 as usize].children.push(id);
        Ok(id)
    }

    /// Merges two sibling FCMs (rule R3), combining attributes
    /// most-stringently and re-parenting children.
    ///
    /// # Errors
    ///
    /// * [`FcmError::NotSiblings`] — different parents or ranks;
    /// * [`FcmError::NothingToCompose`] — `a == b`.
    pub fn merge_siblings(
        &mut self,
        a: FcmId,
        b: FcmId,
        name: impl Into<String>,
    ) -> Result<FcmId, FcmError> {
        if a == b {
            return Err(FcmError::NothingToCompose);
        }
        let fa = self.fcm(a)?.clone();
        let fb = self.fcm(b)?.clone();
        if fa.parent != fb.parent || fa.rank != fb.rank {
            return Err(FcmError::NotSiblings { a, b });
        }
        let attrs = fa
            .attributes
            .combine(&fb.attributes, CompositionKind::Merge);
        let merged = self.push(name.into(), fa.rank, attrs, fa.parent);
        let mut children = fa.children.clone();
        children.extend_from_slice(&fb.children);
        for &c in &children {
            self.arena[c.0 as usize].parent = Some(merged);
        }
        self.arena[merged.0 as usize].children = children;
        if let Some(p) = fa.parent {
            let list = &mut self.arena[p.0 as usize].children;
            list.retain(|&c| c != a && c != b);
            list.push(merged);
        }
        self.arena[a.0 as usize].alive = false;
        self.arena[b.0 as usize].alive = false;
        Ok(merged)
    }

    /// Integrates FCMs under different parents by merging the parent
    /// chain first (rule R4), then the FCMs.
    ///
    /// # Errors
    ///
    /// As for [`GenericFcmHierarchy::merge_siblings`], plus
    /// [`FcmError::NotSiblings`] when exactly one of the FCMs is a root.
    pub fn integrate_across(
        &mut self,
        a: FcmId,
        b: FcmId,
        name: impl Into<String>,
    ) -> Result<FcmId, FcmError> {
        let pa = self.fcm(a)?.parent;
        let pb = self.fcm(b)?.parent;
        match (pa, pb) {
            (Some(pa), Some(pb)) if pa != pb => {
                let merged_name = format!(
                    "{}+{}",
                    self.fcm(pa)?.name.clone(),
                    self.fcm(pb)?.name.clone()
                );
                self.integrate_across(pa, pb, merged_name)?;
            }
            (Some(_), None) | (None, Some(_)) => return Err(FcmError::NotSiblings { a, b }),
            _ => {}
        }
        self.merge_siblings(a, b, name)
    }

    /// Rule R5: the retest obligation after a modification.
    ///
    /// # Errors
    ///
    /// Returns [`FcmError::UnknownFcm`] for a missing id.
    pub fn retest_set(&self, modified: FcmId) -> Result<RetestSet, FcmError> {
        let fcm = self.fcm(modified)?;
        let parent = fcm.parent;
        let sibling_interfaces = match parent {
            Some(p) => self
                .fcm(p)?
                .children
                .iter()
                .copied()
                .filter(|&c| c != modified)
                .collect(),
            None => Vec::new(),
        };
        Ok(RetestSet {
            modified,
            parent,
            sibling_interfaces,
        })
    }

    /// The FCM with id `id`.
    ///
    /// # Errors
    ///
    /// Returns [`FcmError::UnknownFcm`] for missing or merged-away ids.
    pub fn fcm(&self, id: FcmId) -> Result<&GenericFcm, FcmError> {
        self.arena
            .get(id.0 as usize)
            .filter(|f| f.alive)
            .ok_or(FcmError::UnknownFcm { id })
    }

    /// Iterates over live FCMs.
    pub fn iter(&self) -> impl Iterator<Item = &GenericFcm> + '_ {
        self.arena.iter().filter(|f| f.alive)
    }

    /// Live FCMs at the named level.
    pub fn at_level<'a>(&'a self, level: &str) -> impl Iterator<Item = &'a GenericFcm> + 'a {
        let rank = self.ladder.rank_of(level);
        self.iter().filter(move |f| Some(f.rank) == rank)
    }

    /// Checks R1/R2 structural invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant.
    pub fn verify(&self) -> Result<(), FcmError> {
        for f in self.iter() {
            for &c in &f.children {
                let child = self.fcm(c)?;
                if child.parent != Some(f.id) {
                    return Err(FcmError::AlreadyHasParent {
                        id: c,
                        parent: child.parent.unwrap_or(f.id),
                    });
                }
                if self.ladder.child_rank(f.rank) != Some(child.rank) {
                    return Err(FcmError::UnknownFcm { id: c });
                }
            }
        }
        Ok(())
    }

    fn push(
        &mut self,
        name: String,
        rank: Rank,
        attributes: AttributeSet,
        parent: Option<FcmId>,
    ) -> FcmId {
        let id = FcmId(self.arena.len() as u64);
        self.arena.push(GenericFcm {
            id,
            name,
            rank,
            attributes,
            parent,
            children: Vec::new(),
            alive: true,
        });
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attrs(c: u32) -> AttributeSet {
        AttributeSet::default().with_criticality(c)
    }

    #[test]
    fn ladder_construction_and_navigation() {
        let ladder = LevelLadder::standard();
        assert_eq!(ladder.len(), 3);
        assert!(!ladder.is_empty());
        assert_eq!(ladder.top(), Rank(2));
        assert_eq!(ladder.name(Rank(0)), "procedure");
        assert_eq!(ladder.rank_of("process"), Some(Rank(2)));
        assert_eq!(ladder.rank_of("object"), None);
        assert_eq!(ladder.parent_rank(Rank(2)), None);
        assert_eq!(ladder.child_rank(Rank(0)), None);
        assert_eq!(ladder.parent_rank(Rank(0)), Some(Rank(1)));
        assert_eq!(ladder.to_string(), "procedure < task < process");
    }

    #[test]
    fn invalid_ladders_are_rejected() {
        assert!(LevelLadder::new(Vec::<String>::new()).is_err());
        assert!(LevelLadder::new(["a", "b", "a"]).is_err());
    }

    #[test]
    fn insert_above_adds_the_oo_level() {
        let mut ladder = LevelLadder::standard();
        let rank = ladder.insert_above(Rank(0), "object").unwrap();
        assert_eq!(rank, Rank(1));
        assert_eq!(ladder, LevelLadder::with_objects());
        // Duplicate insertion fails.
        assert!(ladder.insert_above(Rank(0), "object").is_err());
    }

    #[test]
    fn four_level_hierarchy_enforces_r1() {
        let mut h = GenericFcmHierarchy::new(LevelLadder::with_objects());
        let process = h.add_root("p", "process", attrs(5)).unwrap();
        let task = h.add_child(process, "t", attrs(4)).unwrap();
        let object = h.add_child(task, "o", attrs(3)).unwrap();
        let procedure = h.add_child(object, "f", attrs(2)).unwrap();
        assert_eq!(h.ladder().name(h.fcm(object).unwrap().rank()), "object");
        assert_eq!(
            h.ladder().name(h.fcm(procedure).unwrap().rank()),
            "procedure"
        );
        // Procedures are leaves even in the extended ladder.
        assert!(matches!(
            h.add_child(procedure, "x", attrs(0)),
            Err(FcmError::BelowLeafLevel { .. })
        ));
        h.verify().unwrap();
        assert_eq!(h.len(), 4);
        assert_eq!(h.at_level("object").count(), 1);
    }

    #[test]
    fn unknown_level_name_errors() {
        let mut h = GenericFcmHierarchy::new(LevelLadder::standard());
        assert!(h.add_root("x", "module", attrs(0)).is_err());
    }

    #[test]
    fn r3_and_r4_work_over_custom_ladders() {
        let ladder = LevelLadder::new(["function", "component", "subsystem"]).unwrap();
        let mut h = GenericFcmHierarchy::new(ladder);
        let s1 = h.add_root("s1", "subsystem", attrs(3)).unwrap();
        let s2 = h.add_root("s2", "subsystem", attrs(9)).unwrap();
        let c1 = h.add_child(s1, "c1", attrs(1)).unwrap();
        let c2 = h.add_child(s2, "c2", attrs(2)).unwrap();
        // R3: not siblings.
        assert!(matches!(
            h.merge_siblings(c1, c2, "c12"),
            Err(FcmError::NotSiblings { .. })
        ));
        // R4: integrate across merges the subsystems first.
        let merged = h.integrate_across(c1, c2, "c12").unwrap();
        let parent = h.fcm(merged).unwrap().parent().unwrap();
        assert_eq!(h.fcm(parent).unwrap().attributes().criticality.0, 9);
        assert!(h.fcm(s1).is_err());
        assert!(h.fcm(s2).is_err());
        h.verify().unwrap();
    }

    #[test]
    fn r5_retest_in_generic_hierarchy() {
        let mut h = GenericFcmHierarchy::new(LevelLadder::with_objects());
        let p = h.add_root("p", "process", attrs(0)).unwrap();
        let t = h.add_child(p, "t", attrs(0)).unwrap();
        let o1 = h.add_child(t, "o1", attrs(0)).unwrap();
        let o2 = h.add_child(t, "o2", attrs(0)).unwrap();
        let rt = h.retest_set(o1).unwrap();
        assert_eq!(rt.parent, Some(t));
        assert_eq!(rt.sibling_interfaces, vec![o2]);
        let rt_root = h.retest_set(p).unwrap();
        assert_eq!(rt_root.parent, None);
    }

    #[test]
    fn merge_reparents_children_and_kills_constituents() {
        let mut h = GenericFcmHierarchy::new(LevelLadder::standard());
        let p = h.add_root("p", "process", attrs(0)).unwrap();
        let t1 = h.add_child(p, "t1", attrs(2)).unwrap();
        let t2 = h.add_child(p, "t2", attrs(7)).unwrap();
        let f1 = h.add_child(t1, "f1", attrs(0)).unwrap();
        let merged = h.merge_siblings(t1, t2, "t12").unwrap();
        assert_eq!(h.fcm(f1).unwrap().parent(), Some(merged));
        assert_eq!(h.fcm(merged).unwrap().attributes().criticality.0, 7);
        assert!(h.fcm(t1).is_err());
        assert!(h.merge_siblings(merged, merged, "x").is_err());
        assert!(!h.is_empty());
        h.verify().unwrap();
    }

    #[test]
    fn single_level_ladder_supports_flat_systems() {
        let ladder = LevelLadder::new(["partition"]).unwrap();
        let mut h = GenericFcmHierarchy::new(ladder);
        let a = h.add_root("a", "partition", attrs(1)).unwrap();
        let b = h.add_root("b", "partition", attrs(2)).unwrap();
        // No level below: nothing can be a child.
        assert!(h.add_child(a, "x", attrs(0)).is_err());
        // Roots at the same rank are siblings and can merge.
        let merged = h.merge_siblings(a, b, "ab").unwrap();
        assert_eq!(h.fcm(merged).unwrap().rank(), Rank(0));
    }
}
