//! Error type for FCM model construction and composition.

use std::error::Error;
use std::fmt;

use crate::hierarchy::FcmId;
use crate::level::HierarchyLevel;

/// Errors reported by the FCM model.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FcmError {
    /// An FCM id does not exist (or was consumed by a merge).
    UnknownFcm {
        /// The offending id.
        id: FcmId,
    },
    /// Rule R1: a child must be exactly one level below its parent.
    LevelMismatch {
        /// Level of the would-be parent.
        parent: HierarchyLevel,
        /// Level of the would-be child.
        child: HierarchyLevel,
    },
    /// A procedure-level FCM cannot have children (nothing below it).
    BelowLeafLevel {
        /// The procedure-level FCM.
        id: FcmId,
    },
    /// Rule R2: the integration DAG must be a tree; the FCM already has a
    /// parent and cannot be shared ("if two FCMs share a lower-level FCM,
    /// boundaries become unclear").
    AlreadyHasParent {
        /// The FCM that would gain a second parent.
        id: FcmId,
        /// Its existing parent.
        parent: FcmId,
    },
    /// Rule R3/R4: merging FCMs that are not siblings. Use
    /// [`FcmHierarchy::integrate_across`](crate::FcmHierarchy::integrate_across)
    /// to first integrate the parents (R4), or duplicate the child.
    NotSiblings {
        /// First FCM.
        a: FcmId,
        /// Second FCM.
        b: FcmId,
    },
    /// A merge or group of zero or one FCM was requested.
    NothingToCompose,
    /// A probability was outside `[0, 1]`.
    InvalidProbability {
        /// The offending value.
        value: f64,
    },
    /// Two replicas of the same module may never be merged or co-located.
    ReplicaConflict {
        /// First replica.
        a: FcmId,
        /// Second replica.
        b: FcmId,
    },
    /// An operation that requires a parent was applied to a root.
    IsRoot {
        /// The root FCM.
        id: FcmId,
    },
}

impl fmt::Display for FcmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FcmError::UnknownFcm { id } => write!(f, "unknown fcm {id}"),
            FcmError::LevelMismatch { parent, child } => write!(
                f,
                "rule R1 violation: a {child} cannot be the direct child of a {parent}"
            ),
            FcmError::BelowLeafLevel { id } => {
                write!(f, "fcm {id} is a procedure and cannot have children")
            }
            FcmError::AlreadyHasParent { id, parent } => write!(
                f,
                "rule R2 violation: fcm {id} already belongs to parent {parent}; the integration dag must stay a tree"
            ),
            FcmError::NotSiblings { a, b } => write!(
                f,
                "rule R3 violation: fcm {a} and fcm {b} are not siblings; integrate their parents first (rule R4) or duplicate the child"
            ),
            FcmError::NothingToCompose => write!(f, "composition requires at least two fcms"),
            FcmError::InvalidProbability { value } => {
                write!(f, "probability {value} is outside [0, 1]")
            }
            FcmError::ReplicaConflict { a, b } => write!(
                f,
                "fcm {a} and fcm {b} are replicas of the same module and must stay separated"
            ),
            FcmError::IsRoot { id } => write!(f, "fcm {id} is a root and has no parent"),
        }
    }
}

impl Error for FcmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_violated_rule() {
        let e = FcmError::LevelMismatch {
            parent: HierarchyLevel::Process,
            child: HierarchyLevel::Procedure,
        };
        assert!(e.to_string().contains("R1"));
        let e = FcmError::AlreadyHasParent {
            id: FcmId(1),
            parent: FcmId(0),
        };
        assert!(e.to_string().contains("R2"));
        let e = FcmError::NotSiblings {
            a: FcmId(1),
            b: FcmId(2),
        };
        assert!(e.to_string().contains("R3"));
        assert!(e.to_string().contains("R4"));
    }

    #[test]
    fn error_is_send_sync() {
        fn check<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        check(FcmError::NothingToCompose);
    }
}
