//! The separation metric: Eq. 3 of the paper.
//!
//! *Separation* is "the probability of one FCM **not** affecting another
//! if all other FCMs at the same level are considered" — influence plus
//! every transitive path:
//!
//! ```text
//! sep(i, j) = 1 − (P_ij + Σ_k P_ik·P_kj + Σ_l Σ_k P_ik·P_kl·P_lj + …)
//! ```
//!
//! i.e. one minus the `(i, j)` entry of `P + P² + P³ + …`, truncated when
//! "higher-order terms are likely to be small enough to be neglected".
//! Experiment E2 measures how quickly the truncation converges.
//!
//! The analysis holds a storage-polymorphic [`InfluenceMatrix`]: small
//! dense fleets run the dense oracle kernel (byte-stable with the
//! pre-sparse engine), large sparse fleets run the SCC-sharded CSR
//! kernel — bitwise-equal wherever both apply. The top-k queries
//! ([`SeparationAnalysis::top_k_influence`],
//! [`SeparationAnalysis::top_k_least_separated`]) walk a single source
//! row and never materialise the n×n series.

use fcm_graph::{DiGraph, InfluenceMatrix, Matrix, NodeIdx, Workspace};

use crate::error::FcmError;

/// Default truncation order for the walk series; E2 shows order 4 is
/// within 1e-3 of order 8 for influence graphs with entries ≤ 0.7.
pub const DEFAULT_ORDER: usize = 4;

/// Separation analysis over an influence matrix.
///
/// # Example
///
/// ```
/// use fcm_core::separation::SeparationAnalysis;
/// use fcm_graph::{Matrix, NodeIdx};
///
/// // p0 -> p1 (0.5), p1 -> p2 (0.4): indirect influence 0.2.
/// let mut p = Matrix::zeros(3, 3);
/// p[(0, 1)] = 0.5;
/// p[(1, 2)] = 0.4;
/// let a = SeparationAnalysis::new(p)?;
/// let s = a.separation(NodeIdx(0), NodeIdx(2), 4);
/// assert!((s - 0.8).abs() < 1e-12);
/// # Ok::<(), fcm_core::FcmError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct SeparationAnalysis {
    influence: InfluenceMatrix,
}

impl SeparationAnalysis {
    /// Creates an analysis from a dense influence matrix; the
    /// representation-selection policy may keep it dense or move it to
    /// CSR (value-preserving either way).
    ///
    /// # Errors
    ///
    /// Returns [`FcmError::InvalidProbability`] when any entry lies
    /// outside `[0, 1]`.
    pub fn new(influence: Matrix) -> Result<Self, FcmError> {
        SeparationAnalysis::from_influence(InfluenceMatrix::from_dense_auto(influence))
    }

    /// Creates an analysis from an influence matrix in either
    /// representation, keeping it as given (no policy re-selection).
    ///
    /// # Errors
    ///
    /// Returns [`FcmError::InvalidProbability`] when any entry lies
    /// outside `[0, 1]`.
    pub fn from_influence(influence: InfluenceMatrix) -> Result<Self, FcmError> {
        match &influence {
            InfluenceMatrix::Dense(m) => {
                for r in 0..m.rows() {
                    for c in 0..m.cols() {
                        let v = m.get(r, c).expect("within bounds");
                        if v.is_nan() || !(0.0..=1.0).contains(&v) {
                            return Err(FcmError::InvalidProbability { value: v });
                        }
                    }
                }
            }
            InfluenceMatrix::Sparse(s) => {
                // Stored entries row-major: the same first offender as
                // the dense scan (zeros are always valid).
                for (_, _, v) in s.entries() {
                    if v.is_nan() || !(0.0..=1.0).contains(&v) {
                        return Err(FcmError::InvalidProbability { value: v });
                    }
                }
            }
        }
        Ok(SeparationAnalysis { influence })
    }

    /// Builds the analysis from an influence graph (edge weights are
    /// influence values in `[0, 1]`), selecting the representation by
    /// size and density — a 50k-node sparse fleet never materialises a
    /// dense matrix.
    ///
    /// # Errors
    ///
    /// Returns [`FcmError::InvalidProbability`] when an edge weight lies
    /// outside `[0, 1]`.
    pub fn from_graph<N, E: Copy + Into<f64>>(g: &DiGraph<N, E>) -> Result<Self, FcmError> {
        SeparationAnalysis::from_influence(InfluenceMatrix::from_graph_auto(g))
    }

    /// The underlying influence matrix.
    pub fn influence_matrix(&self) -> &InfluenceMatrix {
        &self.influence
    }

    /// Eq. 3 separation, truncated at `order` walk steps; the walk sum is
    /// clamped at 1 so the result stays a probability.
    pub fn separation(&self, from: NodeIdx, to: NodeIdx, order: usize) -> f64 {
        1.0 - self.total_influence(from, to, order)
    }

    /// [`separation`](SeparationAnalysis::separation) against a
    /// caller-owned [`Workspace`] — allocation-free once warm.
    pub fn separation_with(&self, from: NodeIdx, to: NodeIdx, order: usize, ws: &mut Workspace) -> f64 {
        1.0 - self.total_influence_with(from, to, order, ws)
    }

    /// The complementary transitive influence `1 − sep(i, j)`, clamped to
    /// `[0, 1]`.
    pub fn total_influence(&self, from: NodeIdx, to: NodeIdx, order: usize) -> f64 {
        self.total_influence_with(from, to, order, &mut Workspace::new())
    }

    /// [`total_influence`](SeparationAnalysis::total_influence) against a
    /// caller-owned [`Workspace`] (used by the dense kernel; the sparse
    /// engine needs no scratch and ignores it).
    pub fn total_influence_with(
        &self,
        from: NodeIdx,
        to: NodeIdx,
        order: usize,
        ws: &mut Workspace,
    ) -> f64 {
        match &self.influence {
            InfluenceMatrix::Dense(m) => m
                .walk_series_with(order, 1e-15, ws)
                .get(from.index(), to.index())
                .unwrap_or(0.0)
                .min(1.0),
            InfluenceMatrix::Sparse(s) => s
                .walk_series(order, 1e-15)
                .get(from.index(), to.index())
                .unwrap_or(0.0)
                .min(1.0),
        }
    }

    /// The `k` strongest transitive influences out of `from` at the
    /// given order (diagonal excluded), as `(target, influence)` with
    /// influence clamped to `[0, 1]`, descending. Computed from a
    /// single walk row — never the full n×n series — and guaranteed to
    /// agree with sorting the full series row (same comparator, same
    /// row values; ties break on ascending target index).
    pub fn top_k_influence(&self, from: NodeIdx, k: usize, order: usize) -> Vec<(NodeIdx, f64)> {
        self.influence
            .top_k_influence(from.index(), k, order)
            .into_iter()
            .map(|(j, v)| (NodeIdx(j), v.min(1.0)))
            .collect()
    }

    /// The `k` least-separated partners of `from` at the given order,
    /// as `(target, separation)` ascending — the pairs an integrator
    /// must look at first. The separation of every unlisted pair is ≥
    /// the last listed value.
    pub fn top_k_least_separated(
        &self,
        from: NodeIdx,
        k: usize,
        order: usize,
    ) -> Vec<(NodeIdx, f64)> {
        self.top_k_influence(from, k, order)
            .into_iter()
            .map(|(j, v)| (j, 1.0 - v))
            .collect()
    }

    /// Pairwise separation matrix at the given order (diagonal is 1 by
    /// convention — an FCM is perfectly separated from itself in the
    /// paper's pairwise sense).
    pub fn pairwise(&self, order: usize) -> Matrix {
        self.pairwise_with(order, &mut Workspace::new())
    }

    /// [`pairwise`](SeparationAnalysis::pairwise) against a caller-owned
    /// [`Workspace`], so sweeps evaluating many graphs reuse the
    /// power-series buffers. The result is dense by nature (almost every
    /// entry is a nonzero separation), so a sparse analysis materialises
    /// it from the sparse series — bitwise-equal to the dense path.
    pub fn pairwise_with(&self, order: usize, ws: &mut Workspace) -> Matrix {
        match &self.influence {
            InfluenceMatrix::Dense(m) => {
                let n = m.rows();
                let mut out = Matrix::zeros(0, 0);
                m.walk_series_into(order, 1e-15, ws, &mut out);
                // Turn the walk series into separations in place: no second
                // allocation, and the diagonal becomes the conventional 1.
                for i in 0..n {
                    for j in 0..n {
                        out[(i, j)] = if i == j {
                            1.0
                        } else {
                            1.0 - out.get(i, j).expect("in bounds").min(1.0)
                        };
                    }
                }
                out
            }
            InfluenceMatrix::Sparse(s) => {
                let n = s.rows();
                let series = s.walk_series(order, 1e-15);
                let mut data = vec![1.0f64; n * n];
                for (i, j, v) in series.entries() {
                    if i != j {
                        data[i * n + j] = 1.0 - v.min(1.0);
                    }
                }
                Matrix::from_rows(n, n, &data)
            }
        }
    }

    /// Smallest order whose next term changes no entry by more than
    /// `epsilon`, capped at `max_order`. This quantifies the paper's "at
    /// some point, higher-order terms are likely to be small enough to be
    /// neglected".
    pub fn converged_order(&self, epsilon: f64, max_order: usize) -> usize {
        self.converged_order_with(epsilon, max_order, &mut Workspace::new())
    }

    /// [`converged_order`](SeparationAnalysis::converged_order) against a
    /// caller-owned [`Workspace`] (dense scratch; the sparse engine
    /// ignores it).
    pub fn converged_order_with(&self, epsilon: f64, max_order: usize, ws: &mut Workspace) -> usize {
        match &self.influence {
            InfluenceMatrix::Dense(m) => {
                ws.begin_powers(m.rows());
                for k in 1..=max_order {
                    if ws.step_power(m).max_abs() <= epsilon {
                        return k;
                    }
                }
                max_order
            }
            // Bitwise-equal powers ⇒ the same reported order.
            InfluenceMatrix::Sparse(s) => s.converged_order(epsilon, max_order),
        }
    }

    /// A sufficient convergence check: `true` when every row sum of the
    /// influence matrix is below 1, which guarantees the walk series
    /// converges geometrically. When `false`, truncation error may be
    /// large and callers should increase the order or renormalise.
    pub fn series_converges(&self) -> bool {
        match &self.influence {
            InfluenceMatrix::Dense(m) => {
                let n = m.rows();
                (0..n).all(|i| {
                    (0..n)
                        .map(|j| m.get(i, j).expect("in bounds"))
                        .sum::<f64>()
                        < 1.0
                })
            }
            InfluenceMatrix::Sparse(s) => (0..s.rows()).all(|i| {
                // Stored entries ascend by column; summing them skips
                // only exact zeros, so the fold matches the dense scan.
                let (_, vals) = s.row(i);
                vals.iter().sum::<f64>() < 1.0
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcm_graph::SparseMatrix;

    fn chain() -> SeparationAnalysis {
        let mut p = Matrix::zeros(3, 3);
        p[(0, 1)] = 0.5;
        p[(1, 2)] = 0.4;
        SeparationAnalysis::new(p).unwrap()
    }

    fn chain_sparse() -> SeparationAnalysis {
        let mut p = Matrix::zeros(3, 3);
        p[(0, 1)] = 0.5;
        p[(1, 2)] = 0.4;
        SeparationAnalysis::from_influence(InfluenceMatrix::Sparse(SparseMatrix::from_dense(&p)))
            .unwrap()
    }

    #[test]
    fn direct_separation_is_one_minus_influence() {
        let a = chain();
        assert!((a.separation(NodeIdx(0), NodeIdx(1), 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn transitive_term_requires_order_two() {
        let a = chain();
        // Order 1 sees no path 0→2.
        assert!((a.separation(NodeIdx(0), NodeIdx(2), 1) - 1.0).abs() < 1e-12);
        // Order 2 includes the two-step walk 0→1→2 = 0.2.
        assert!((a.separation(NodeIdx(0), NodeIdx(2), 2) - 0.8).abs() < 1e-12);
    }

    #[test]
    fn sparse_analysis_matches_dense_bitwise() {
        let d = chain();
        let s = chain_sparse();
        assert_eq!(s.influence_matrix().repr(), "csr");
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(
                    d.separation(NodeIdx(i), NodeIdx(j), 4).to_bits(),
                    s.separation(NodeIdx(i), NodeIdx(j), 4).to_bits(),
                    "pair ({i}, {j})"
                );
            }
        }
        assert_eq!(d.pairwise(4), s.pairwise(4));
        assert_eq!(d.converged_order(1e-6, 16), s.converged_order(1e-6, 16));
        assert_eq!(d.series_converges(), s.series_converges());
    }

    #[test]
    fn top_k_agrees_with_a_full_pairwise_sort() {
        let mut p = Matrix::zeros(4, 4);
        p[(0, 1)] = 0.5;
        p[(0, 2)] = 0.1;
        p[(1, 3)] = 0.8;
        p[(2, 3)] = 0.2;
        for a in [
            SeparationAnalysis::new(p.clone()).unwrap(),
            SeparationAnalysis::from_influence(InfluenceMatrix::Sparse(
                SparseMatrix::from_dense(&p),
            ))
            .unwrap(),
        ] {
            let top = a.top_k_least_separated(NodeIdx(0), 2, DEFAULT_ORDER);
            let pw = a.pairwise(DEFAULT_ORDER);
            let mut full: Vec<(usize, f64)> = (0..4)
                .filter(|&j| j != 0)
                .map(|j| (j, pw[(0, j)]))
                .collect();
            full.sort_by(|x, y| x.1.partial_cmp(&y.1).unwrap().then(x.0.cmp(&y.0)));
            assert_eq!(top.len(), 2);
            for (got, want) in top.iter().zip(&full) {
                assert_eq!(got.0.index(), want.0);
                assert!((got.1 - want.1).abs() < 1e-12);
            }
            let infl = a.top_k_influence(NodeIdx(0), 4, DEFAULT_ORDER);
            assert!(infl.windows(2).all(|w| w[0].1 >= w[1].1), "descending");
        }
    }

    #[test]
    fn separation_decreases_when_a_bypass_is_added() {
        let mut p = Matrix::zeros(3, 3);
        p[(0, 1)] = 0.5;
        p[(1, 2)] = 0.4;
        let base = SeparationAnalysis::new(p.clone()).unwrap();
        p[(0, 2)] = 0.3;
        let with_direct = SeparationAnalysis::new(p).unwrap();
        assert!(
            with_direct.separation(NodeIdx(0), NodeIdx(2), 4)
                < base.separation(NodeIdx(0), NodeIdx(2), 4)
        );
    }

    #[test]
    fn reducing_third_party_influence_raises_separation() {
        // The paper: "it is also possible to increase separation by
        // reducing the influence between other FCMs through which the two
        // interact."
        let mut strong = Matrix::zeros(3, 3);
        strong[(0, 1)] = 0.6;
        strong[(1, 2)] = 0.9;
        let mut weak = strong.clone();
        weak[(1, 2)] = 0.1;
        let s_strong = SeparationAnalysis::new(strong).unwrap();
        let s_weak = SeparationAnalysis::new(weak).unwrap();
        assert!(
            s_weak.separation(NodeIdx(0), NodeIdx(2), 4)
                > s_strong.separation(NodeIdx(0), NodeIdx(2), 4)
        );
    }

    #[test]
    fn walk_sum_is_clamped_to_a_probability() {
        // A dense high-influence cycle can push the raw series above 1.
        let mut p = Matrix::zeros(2, 2);
        p[(0, 1)] = 0.9;
        p[(1, 0)] = 0.9;
        let a = SeparationAnalysis::new(p).unwrap();
        let s = a.separation(NodeIdx(0), NodeIdx(1), 16);
        assert!((0.0..=1.0).contains(&s));
        // Row sums are 0.9 < 1 so the series converges — yet its limit
        // 0.9/(1−0.81) ≈ 4.7 exceeds 1, which is why the clamp matters.
        assert!(a.series_converges());
        assert_eq!(s, 0.0);
        // A certain-influence cycle fails the convergence check.
        let mut q = Matrix::zeros(2, 2);
        q[(0, 1)] = 1.0;
        q[(1, 0)] = 1.0;
        assert!(!SeparationAnalysis::new(q).unwrap().series_converges());
    }

    #[test]
    fn pairwise_matrix_has_unit_diagonal() {
        let a = chain();
        let m = a.pairwise(4);
        for i in 0..3 {
            assert_eq!(m[(i, i)], 1.0);
        }
        assert!((m[(0, 2)] - 0.8).abs() < 1e-12);
        // No reverse influence: full separation.
        assert_eq!(m[(2, 0)], 1.0);
    }

    #[test]
    fn converged_order_is_small_for_weak_influence() {
        let mut p = Matrix::zeros(3, 3);
        p[(0, 1)] = 0.01;
        p[(1, 2)] = 0.01;
        let a = SeparationAnalysis::new(p).unwrap();
        assert!(a.converged_order(1e-6, 16) <= 3);
        assert!(a.series_converges());
    }

    #[test]
    fn workspace_variants_match_the_allocating_paths_bitwise() {
        let a = chain();
        let mut ws = Workspace::new();
        assert_eq!(
            a.separation(NodeIdx(0), NodeIdx(2), 4),
            a.separation_with(NodeIdx(0), NodeIdx(2), 4, &mut ws)
        );
        assert_eq!(a.pairwise(4), a.pairwise_with(4, &mut ws));
        assert_eq!(
            a.converged_order(1e-6, 16),
            a.converged_order_with(1e-6, 16, &mut ws)
        );
        // Reuse across differently-sized analyses must not leak state.
        let mut p = Matrix::zeros(5, 5);
        p[(0, 4)] = 0.3;
        let b = SeparationAnalysis::new(p).unwrap();
        assert_eq!(b.pairwise(4), b.pairwise_with(4, &mut ws));
    }

    #[test]
    fn invalid_entries_are_rejected() {
        let mut p = Matrix::zeros(2, 2);
        p[(0, 1)] = 1.5;
        assert!(matches!(
            SeparationAnalysis::new(p),
            Err(FcmError::InvalidProbability { .. })
        ));
        // The sparse constructor rejects the same entry.
        let mut q = Matrix::zeros(2, 2);
        q[(0, 1)] = f64::NAN;
        assert!(SeparationAnalysis::from_influence(InfluenceMatrix::Sparse(
            SparseMatrix::from_dense(&q)
        ))
        .is_err());
    }

    #[test]
    fn from_graph_matches_matrix_construction() {
        let mut g: DiGraph<(), f64> = DiGraph::new();
        let a = g.add_node(());
        let b = g.add_node(());
        g.add_edge(a, b, 0.5);
        let s = SeparationAnalysis::from_graph(&g).unwrap();
        assert!((s.separation(a, b, 1) - 0.5).abs() < 1e-12);
        // Invalid edge weight propagates the error.
        let mut bad: DiGraph<(), f64> = DiGraph::new();
        let x = bad.add_node(());
        let y = bad.add_node(());
        bad.add_edge(x, y, 2.0);
        assert!(SeparationAnalysis::from_graph(&bad).is_err());
    }
}
