//! Composition of FCMs: merging vs grouping, and cluster influence (Eq. 4).
//!
//! The paper distinguishes two ways of composing modules (§4):
//!
//! * **Merging** — "boundaries between constituent FCMs disappear; for
//!   example, extracting the code of two or more procedures and merging to
//!   create one procedure with all of the original functionality". Used
//!   "only when two FCMs have common functionality, and the overhead of
//!   maintaining separate FCMs is unnecessary"; primarily *horizontal*.
//! * **Grouping** — the FCMs "retain their mutual interface"; primarily
//!   *vertical* (e.g. including each procedure in a single task).
//!
//! When a cluster `C` of FCMs is formed, its influence on an outside
//! FCM `t` combines the members' influences (Eq. 4):
//!
//! ```text
//! infl(C → t) = 1 − Π_{i ∈ C} (1 − infl(i → t))
//! ```
//!
//! which [`cluster_influence`] computes. The paper warns that Eq. 4 "may
//! not compute correct values of influence if the corresponding FCMs are
//! integrated (e.g., merged); in that case, the value of influence has to
//! be recomputed from new attribute values" — merged modules need fresh
//! [`FaultFactor`](crate::FaultFactor) estimates, which the simulator
//! provides.

use std::fmt;

use crate::influence::Influence;

/// How two or more FCMs are composed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CompositionKind {
    /// Boundaries disappear; the constituents become one module.
    Merge,
    /// Constituents retain their interfaces inside a common parent.
    Group,
}

impl CompositionKind {
    /// Whether this composition preserves the constituents' interfaces.
    pub fn preserves_interfaces(self) -> bool {
        matches!(self, CompositionKind::Group)
    }
}

impl fmt::Display for CompositionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompositionKind::Merge => f.write_str("merge"),
            CompositionKind::Group => f.write_str("group"),
        }
    }
}

/// Eq. 4: the influence of a cluster on an outside FCM,
/// `1 − Π (1 − inflᵢ)`.
///
/// The paper's Fig. 5 instance: members with influences 0.7 and 0.2 on a
/// common neighbour combine to `1 − 0.3·0.8 = 0.76`.
///
/// # Example
///
/// ```
/// use fcm_core::{cluster_influence, Influence};
///
/// let members = [Influence::new(0.7)?, Influence::new(0.2)?];
/// let combined = cluster_influence(&members);
/// assert!((combined.value() - 0.76).abs() < 1e-12);
/// # Ok::<(), fcm_core::FcmError>(())
/// ```
pub fn cluster_influence(members: &[Influence]) -> Influence {
    let none: f64 = members.iter().map(|i| 1.0 - i.value()).product();
    Influence::new((1.0 - none).clamp(0.0, 1.0)).expect("clamped into [0, 1]")
}

/// Eq. 4 applied pairwise, iteratively — the paper obtains the Fig. 5
/// values "through iterative use of Equation 4"; equal to
/// [`cluster_influence`] by associativity of the complement product.
pub fn cluster_influence_iterative(members: &[Influence]) -> Influence {
    members
        .iter()
        .fold(Influence::NONE, |acc, &i| cluster_influence(&[acc, i]))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn infl(v: f64) -> Influence {
        Influence::new(v).unwrap()
    }

    #[test]
    fn eq4_matches_fig5_value() {
        let c = cluster_influence(&[infl(0.7), infl(0.2)]);
        assert!((c.value() - 0.76).abs() < 1e-12);
    }

    #[test]
    fn empty_cluster_has_no_influence() {
        assert_eq!(cluster_influence(&[]).value(), 0.0);
    }

    #[test]
    fn single_member_is_identity() {
        assert!((cluster_influence(&[infl(0.3)]).value() - 0.3).abs() < 1e-12);
    }

    #[test]
    fn certain_member_dominates() {
        let c = cluster_influence(&[infl(1.0), infl(0.1)]);
        assert_eq!(c.value(), 1.0);
    }

    #[test]
    fn iterative_equals_closed_form() {
        let members = [infl(0.1), infl(0.35), infl(0.6), infl(0.05)];
        let a = cluster_influence(&members);
        let b = cluster_influence_iterative(&members);
        assert!((a.value() - b.value()).abs() < 1e-12);
    }

    #[test]
    fn cluster_influence_is_at_least_the_max_member() {
        let members = [infl(0.2), infl(0.5), infl(0.1)];
        assert!(cluster_influence(&members).value() >= 0.5);
    }

    #[test]
    fn composition_kind_semantics() {
        assert!(CompositionKind::Group.preserves_interfaces());
        assert!(!CompositionKind::Merge.preserves_interfaces());
        assert_eq!(CompositionKind::Merge.to_string(), "merge");
        assert_eq!(CompositionKind::Group.to_string(), "group");
    }
}
