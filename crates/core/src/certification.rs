//! Incremental certification bookkeeping over an FCM hierarchy.
//!
//! A central promise of the paper's framework is cheap re-verification:
//! each level "simplifies V&V of FCMs at each level, by not having to
//! consider lower levels; in addition, V&V of module dependability can be
//! performed independently of other modules at the same level", and R5
//! bounds what a modification invalidates. This module operationalises
//! that: a [`CertificationLedger`] tracks which FCMs (and which sibling
//! interfaces) are certified, invalidates exactly the R5 retest set on
//! modification, and reports the outstanding work — the bookkeeping a
//! certification authority would keep over an evolving integrated system.

use std::collections::BTreeSet;

use crate::error::FcmError;
use crate::hierarchy::{FcmHierarchy, FcmId};

/// Certification state for one hierarchy.
///
/// The ledger tracks two kinds of evidence, mirroring R5's two
/// obligations:
///
/// * **module certificates** — the FCM itself has been verified;
/// * **interface certificates** — an unordered sibling pair's interface
///   has been verified.
///
/// # Example
///
/// ```
/// use fcm_core::certification::CertificationLedger;
/// use fcm_core::{AttributeSet, FcmHierarchy, HierarchyLevel};
///
/// let mut h = FcmHierarchy::new();
/// let p = h.add_root("p", HierarchyLevel::Process, AttributeSet::default())?;
/// let t = h.add_child(p, "t", AttributeSet::default())?;
/// let f = h.add_child(t, "f", AttributeSet::default())?;
/// let mut ledger = CertificationLedger::certify_all(&h);
/// assert!(ledger.is_fully_certified(&h));
/// ledger.record_modification(&h, f)?;
/// // Exactly the R5 set is invalid: f itself and its parent t.
/// assert_eq!(ledger.outstanding_modules(&h).len(), 2);
/// # Ok::<(), fcm_core::FcmError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CertificationLedger {
    certified_modules: BTreeSet<FcmId>,
    certified_interfaces: BTreeSet<(FcmId, FcmId)>,
}

fn interface_key(a: FcmId, b: FcmId) -> (FcmId, FcmId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

impl CertificationLedger {
    /// An empty ledger: nothing certified.
    pub fn new() -> Self {
        CertificationLedger::default()
    }

    /// A ledger with every live module and every sibling interface of
    /// `hierarchy` certified (the state after initial full verification).
    pub fn certify_all(hierarchy: &FcmHierarchy) -> Self {
        let mut ledger = CertificationLedger::new();
        for fcm in hierarchy.iter() {
            ledger.certified_modules.insert(fcm.id());
            let children = fcm.children();
            for (i, &a) in children.iter().enumerate() {
                for &b in &children[i + 1..] {
                    ledger.certified_interfaces.insert(interface_key(a, b));
                }
            }
        }
        ledger
    }

    /// Whether `fcm` holds a module certificate.
    pub fn is_certified(&self, fcm: FcmId) -> bool {
        self.certified_modules.contains(&fcm)
    }

    /// Whether the sibling interface `a`–`b` holds a certificate.
    pub fn interface_certified(&self, a: FcmId, b: FcmId) -> bool {
        self.certified_interfaces.contains(&interface_key(a, b))
    }

    /// Records a modification of `fcm`, invalidating exactly the R5
    /// retest set: the module itself, its parent module, and its sibling
    /// interfaces. Everything else keeps its certificates — this is the
    /// paper's V&V saving, made explicit.
    ///
    /// Returns the number of certificates invalidated.
    ///
    /// # Errors
    ///
    /// Returns [`FcmError::UnknownFcm`] for an unknown id.
    pub fn record_modification(
        &mut self,
        hierarchy: &FcmHierarchy,
        fcm: FcmId,
    ) -> Result<usize, FcmError> {
        let retest = hierarchy.retest_set(fcm)?;
        let mut invalidated = 0;
        if self.certified_modules.remove(&retest.modified) {
            invalidated += 1;
        }
        if let Some(parent) = retest.parent {
            if self.certified_modules.remove(&parent) {
                invalidated += 1;
            }
        }
        for sibling in retest.sibling_interfaces {
            if self
                .certified_interfaces
                .remove(&interface_key(retest.modified, sibling))
            {
                invalidated += 1;
            }
        }
        Ok(invalidated)
    }

    /// Marks a module as verified.
    pub fn certify_module(&mut self, fcm: FcmId) {
        self.certified_modules.insert(fcm);
    }

    /// Marks a sibling interface as verified.
    pub fn certify_interface(&mut self, a: FcmId, b: FcmId) {
        self.certified_interfaces.insert(interface_key(a, b));
    }

    /// Live modules lacking a certificate.
    pub fn outstanding_modules(&self, hierarchy: &FcmHierarchy) -> Vec<FcmId> {
        hierarchy
            .iter()
            .map(|f| f.id())
            .filter(|id| !self.certified_modules.contains(id))
            .collect()
    }

    /// Live sibling interfaces lacking a certificate.
    pub fn outstanding_interfaces(&self, hierarchy: &FcmHierarchy) -> Vec<(FcmId, FcmId)> {
        let mut out = Vec::new();
        for fcm in hierarchy.iter() {
            let children = fcm.children();
            for (i, &a) in children.iter().enumerate() {
                for &b in &children[i + 1..] {
                    let key = interface_key(a, b);
                    if !self.certified_interfaces.contains(&key) {
                        out.push(key);
                    }
                }
            }
        }
        out
    }

    /// Whether every live module and sibling interface is certified.
    pub fn is_fully_certified(&self, hierarchy: &FcmHierarchy) -> bool {
        self.outstanding_modules(hierarchy).is_empty()
            && self.outstanding_interfaces(hierarchy).is_empty()
    }

    /// Performs the outstanding work: certifies every missing module and
    /// interface, returning how many certificates were issued.
    pub fn recertify_outstanding(&mut self, hierarchy: &FcmHierarchy) -> usize {
        let modules = self.outstanding_modules(hierarchy);
        let interfaces = self.outstanding_interfaces(hierarchy);
        let issued = modules.len() + interfaces.len();
        for m in modules {
            self.certified_modules.insert(m);
        }
        for (a, b) in interfaces {
            self.certified_interfaces.insert((a, b));
        }
        issued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::AttributeSet;
    use crate::level::HierarchyLevel;

    /// p ── {t1 {a, b}, t2 {c}}
    fn sample() -> (FcmHierarchy, [FcmId; 6]) {
        let mut h = FcmHierarchy::new();
        let p = h
            .add_root("p", HierarchyLevel::Process, AttributeSet::default())
            .unwrap();
        let t1 = h.add_child(p, "t1", AttributeSet::default()).unwrap();
        let t2 = h.add_child(p, "t2", AttributeSet::default()).unwrap();
        let a = h.add_child(t1, "a", AttributeSet::default()).unwrap();
        let b = h.add_child(t1, "b", AttributeSet::default()).unwrap();
        let c = h.add_child(t2, "c", AttributeSet::default()).unwrap();
        (h, [p, t1, t2, a, b, c])
    }

    #[test]
    fn certify_all_covers_modules_and_interfaces() {
        let (h, ids) = sample();
        let ledger = CertificationLedger::certify_all(&h);
        assert!(ledger.is_fully_certified(&h));
        for id in ids {
            assert!(ledger.is_certified(id));
        }
        // Sibling interfaces: (t1,t2) under p, (a,b) under t1.
        assert!(ledger.interface_certified(ids[1], ids[2]));
        assert!(ledger.interface_certified(ids[3], ids[4]));
        assert!(ledger.interface_certified(ids[4], ids[3])); // unordered
        assert!(!ledger.interface_certified(ids[3], ids[5])); // not siblings
    }

    #[test]
    fn modification_invalidates_exactly_the_r5_set() {
        let (h, [p, t1, t2, a, b, c]) = sample();
        let mut ledger = CertificationLedger::certify_all(&h);
        let invalidated = ledger.record_modification(&h, a).unwrap();
        // a, its parent t1, and the (a,b) interface.
        assert_eq!(invalidated, 3);
        assert!(!ledger.is_certified(a));
        assert!(!ledger.is_certified(t1));
        assert!(!ledger.interface_certified(a, b));
        // Untouched: p, t2, b, c, and the (t1,t2) interface.
        assert!(ledger.is_certified(p));
        assert!(ledger.is_certified(t2));
        assert!(ledger.is_certified(b));
        assert!(ledger.is_certified(c));
        assert!(ledger.interface_certified(t1, t2));
        let outstanding = ledger.outstanding_modules(&h);
        assert_eq!(outstanding, vec![t1, a]);
        assert_eq!(ledger.outstanding_interfaces(&h), vec![(a, b).min((b, a))]);
    }

    #[test]
    fn root_modification_invalidates_only_the_root() {
        let (h, [p, ..]) = sample();
        let mut ledger = CertificationLedger::certify_all(&h);
        let invalidated = ledger.record_modification(&h, p).unwrap();
        assert_eq!(invalidated, 1);
        assert_eq!(ledger.outstanding_modules(&h), vec![p]);
    }

    #[test]
    fn recertify_restores_full_certification() {
        let (h, [_, _, _, a, _, _]) = sample();
        let mut ledger = CertificationLedger::certify_all(&h);
        ledger.record_modification(&h, a).unwrap();
        assert!(!ledger.is_fully_certified(&h));
        let issued = ledger.recertify_outstanding(&h);
        assert_eq!(issued, 3);
        assert!(ledger.is_fully_certified(&h));
        // Idempotent.
        assert_eq!(ledger.recertify_outstanding(&h), 0);
    }

    #[test]
    fn repeated_modification_is_idempotent_on_certificates() {
        let (h, [_, _, _, a, _, _]) = sample();
        let mut ledger = CertificationLedger::certify_all(&h);
        assert_eq!(ledger.record_modification(&h, a).unwrap(), 3);
        assert_eq!(ledger.record_modification(&h, a).unwrap(), 0);
    }

    #[test]
    fn empty_ledger_reports_everything_outstanding() {
        let (h, _) = sample();
        let ledger = CertificationLedger::new();
        assert!(!ledger.is_fully_certified(&h));
        assert_eq!(ledger.outstanding_modules(&h).len(), 6);
        assert_eq!(ledger.outstanding_interfaces(&h).len(), 2);
    }

    #[test]
    fn manual_certification_paths() {
        let (h, [p, t1, t2, ..]) = sample();
        let mut ledger = CertificationLedger::new();
        ledger.certify_module(p);
        ledger.certify_interface(t2, t1);
        assert!(ledger.is_certified(p));
        assert!(ledger.interface_certified(t1, t2));
        assert_eq!(ledger.outstanding_modules(&h).len(), 5);
    }

    #[test]
    fn unknown_fcm_errors() {
        let (h, _) = sample();
        let mut ledger = CertificationLedger::certify_all(&h);
        assert!(ledger.record_modification(&h, FcmId(99)).is_err());
    }
}
