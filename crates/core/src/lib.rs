//! Fault containment modules (FCMs): the core of the ICDCS'98
//! dependability-driven software-integration framework.
//!
//! The paper (Suri, Ghosh, Marlowe, *"A Framework for Dependability Driven
//! Software Integration"*, ICDCS 1998) partitions system software into a
//! three-level hierarchy of **fault containment modules** — procedures,
//! tasks, and processes — and gives rules for composing them so that
//! faults stay contained while the system is integrated onto shared
//! hardware. This crate implements that framework:
//!
//! * [`HierarchyLevel`] — the three levels, each with its own fault
//!   classes ([`FaultClass`]) and isolation techniques
//!   ([`IsolationTechnique`]);
//! * [`AttributeSet`] — criticality, fault-tolerance (replication),
//!   timing (the ⟨EST, TCD, CT⟩ triple), throughput and security
//!   attributes, with the paper's *most-stringent / aggregate* combination
//!   rules and the weighted [`importance`](AttributeSet::importance)
//!   measure used by the allocation heuristics;
//! * [`FaultFactor`] and [`Influence`] — Eq. 1
//!   (`p = p₁·p₂·p₃`, occurrence · transmission · manifestation) and
//!   Eq. 2 (`infl = 1 − Π(1 − pᵢ)`);
//! * [`separation`] — Eq. 3, the transitive separation series over the
//!   influence matrix;
//! * [`composition`] — Eq. 4 cluster influence, merging vs grouping, and
//!   attribute combination;
//! * [`FcmHierarchy`] — the integration tree with rules **R1–R5** enforced
//!   by the API (R1: children are exactly one level below; R2: the DAG is
//!   a tree, no shared children; R3: merge only siblings; R4: integrating
//!   children of different parents forces parent integration; R5: a
//!   modification requires retesting exactly the parent and its sibling
//!   interfaces).
//!
//! # Example
//!
//! ```
//! use fcm_core::{AttributeSet, FcmHierarchy, HierarchyLevel};
//!
//! let mut h = FcmHierarchy::new();
//! let proc_fcm = h.add_root("flight_ctl", HierarchyLevel::Process, AttributeSet::default())?;
//! let task = h.add_child(proc_fcm, "control_loop", AttributeSet::default())?;
//! let p1 = h.add_child(task, "read_sensors", AttributeSet::default())?;
//! let p2 = h.add_child(task, "update_law", AttributeSet::default())?;
//! // R5: modifying a procedure requires retesting its parent task only.
//! let retest = h.retest_set(p1)?;
//! assert_eq!(retest.parent, Some(task));
//! assert_eq!(retest.sibling_interfaces, vec![p2]);
//! # Ok::<(), fcm_core::FcmError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attributes;
pub mod certification;
pub mod composition;
mod error;
mod hierarchy;
pub mod influence;
mod isolation;
pub mod ladder;
mod level;
pub mod separation;

pub use attributes::{
    AttributeSet, Criticality, FaultTolerance, ImportanceWeights, SecurityLevel, Throughput,
    TimingConstraint,
};
pub use composition::{cluster_influence, CompositionKind};
pub use error::FcmError;
pub use hierarchy::{Fcm, FcmHierarchy, FcmId, RetestSet};
pub use influence::{FactorKind, FaultFactor, Influence, Probability};
pub use isolation::IsolationTechnique;
pub use level::{FaultClass, HierarchyLevel};
