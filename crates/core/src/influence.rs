//! The influence metric: Eq. 1 and Eq. 2 of the paper.
//!
//! *Influence* of one FCM on another is "the probability of one FCM
//! affecting another FCM at the same level if no third FCM at that level
//! is considered". Each mechanism by which a fault can travel — parameter
//! passing, global variables, shared memory, messages, timing — is a
//! [`FaultFactor`] with three component probabilities (Eq. 1):
//!
//! ```text
//! pᵢ = pᵢ₁ · pᵢ₂ · pᵢ₃
//!      occurrence · transmission · manifestation
//! ```
//!
//! and the factors combine into the influence value (Eq. 2):
//!
//! ```text
//! infl(i→j) = 1 − (1−p₁)(1−p₂)⋯(1−pₙ)
//! ```
//!
//! Influence is directional — "range checks are needed only when
//! parameters are passed to a procedure, and not in the other direction" —
//! so `infl(i→j) ≠ infl(j→i)` in general.

use std::fmt;

use crate::error::FcmError;
use crate::isolation::IsolationTechnique;
use crate::level::HierarchyLevel;

/// A probability in `[0, 1]`, validated at construction.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Probability(f64);

impl Probability {
    /// Certain impossibility.
    pub const ZERO: Probability = Probability(0.0);
    /// Certainty.
    pub const ONE: Probability = Probability(1.0);

    /// Creates a probability.
    ///
    /// # Errors
    ///
    /// Returns [`FcmError::InvalidProbability`] when `value` is NaN or
    /// outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Self, FcmError> {
        if value.is_nan() || !(0.0..=1.0).contains(&value) {
            return Err(FcmError::InvalidProbability { value });
        }
        Ok(Probability(value))
    }

    /// Creates a probability, clamping into `[0, 1]` (NaN becomes 0).
    pub fn clamped(value: f64) -> Self {
        if value.is_nan() {
            Probability(0.0)
        } else {
            Probability(value.clamp(0.0, 1.0))
        }
    }

    /// The raw value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Complement `1 − p`.
    pub fn complement(self) -> Probability {
        Probability(1.0 - self.0)
    }

    /// Product of two probabilities (independent conjunction).
    pub fn and(self, other: Probability) -> Probability {
        Probability(self.0 * other.0)
    }

    /// Probabilistic or of two independent events: `1 − (1−a)(1−b)`.
    pub fn or(self, other: Probability) -> Probability {
        Probability(1.0 - (1.0 - self.0) * (1.0 - other.0))
    }
}

impl fmt::Display for Probability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.4}", self.0)
    }
}

impl From<Probability> for f64 {
    fn from(p: Probability) -> f64 {
        p.0
    }
}

/// The mechanism by which a fault factor transmits between FCMs
/// (§4.2.2–§4.2.3 list the dominant factors per level).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FactorKind {
    /// Parameter passing between procedures (procedure-level factor f₁).
    ParameterPassing,
    /// Global variables (procedure-level factor f₂ — "it is difficult to
    /// control the spread of erroneous data through global variables").
    GlobalVariable,
    /// Return values from a called procedure.
    ReturnValue,
    /// Shared memory between tasks (task-level factor f₁).
    SharedMemory,
    /// Message passing between tasks (task-level factor f₂).
    MessagePassing,
    /// Timing interference — a delayed task delaying others (task-level
    /// factor f₃).
    Timing,
    /// Contention on a shared HW resource (process level).
    ResourceContention,
    /// Any other application-specific mechanism.
    Other,
}

impl FactorKind {
    /// The hierarchy level at which this factor primarily operates.
    pub fn level(self) -> HierarchyLevel {
        match self {
            FactorKind::ParameterPassing | FactorKind::GlobalVariable | FactorKind::ReturnValue => {
                HierarchyLevel::Procedure
            }
            FactorKind::SharedMemory | FactorKind::MessagePassing | FactorKind::Timing => {
                HierarchyLevel::Task
            }
            FactorKind::ResourceContention | FactorKind::Other => HierarchyLevel::Process,
        }
    }
}

impl fmt::Display for FactorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FactorKind::ParameterPassing => "parameter passing",
            FactorKind::GlobalVariable => "global variable",
            FactorKind::ReturnValue => "return value",
            FactorKind::SharedMemory => "shared memory",
            FactorKind::MessagePassing => "message passing",
            FactorKind::Timing => "timing",
            FactorKind::ResourceContention => "resource contention",
            FactorKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// One fault factor between a pair of FCMs: Eq. 1's three component
/// probabilities.
///
/// * `occurrence` (pᵢ₁) — probability of the fault occurring in the source
///   FCM; the paper: "it can be measured from previous usage … or derived
///   by extensive testing" (the `fcm-sim` crate measures it);
/// * `transmission` (pᵢ₂) — probability the fault crosses the medium,
///   which "depends on both communication medium and data volume";
/// * `manifestation` (pᵢ₃) — probability the faulty input causes a fault
///   in the target, "determined by injecting faults into the target FCM".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultFactor {
    /// Transmission mechanism.
    pub kind: FactorKind,
    /// pᵢ₁ — fault occurrence in the source.
    pub occurrence: Probability,
    /// pᵢ₂ — transmission to the target.
    pub transmission: Probability,
    /// pᵢ₃ — manifestation as a fault in the target.
    pub manifestation: Probability,
}

impl FaultFactor {
    /// Creates a factor from raw component probabilities.
    ///
    /// # Errors
    ///
    /// Returns [`FcmError::InvalidProbability`] if any component is outside
    /// `[0, 1]`.
    pub fn new(
        kind: FactorKind,
        occurrence: f64,
        transmission: f64,
        manifestation: f64,
    ) -> Result<Self, FcmError> {
        Ok(FaultFactor {
            kind,
            occurrence: Probability::new(occurrence)?,
            transmission: Probability::new(transmission)?,
            manifestation: Probability::new(manifestation)?,
        })
    }

    /// Eq. 1: `pᵢ = pᵢ₁ · pᵢ₂ · pᵢ₃`.
    pub fn probability(&self) -> Probability {
        self.occurrence
            .and(self.transmission)
            .and(self.manifestation)
    }

    /// Returns a copy with an isolation technique applied: the technique's
    /// transmission-reduction multiplier scales pᵢ₂ (e.g. preemptive
    /// scheduling "minimizes the probability of transmission of the timing
    /// fault (p₃,₂)", §4.2.3).
    pub fn with_isolation(&self, technique: IsolationTechnique) -> FaultFactor {
        let mut out = *self;
        if technique.mitigates(self.kind) {
            out.transmission = Probability::clamped(
                out.transmission.value() * technique.transmission_multiplier(),
            );
        }
        out
    }
}

impl fmt::Display for FaultFactor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}·{}·{} = {}",
            self.kind,
            self.occurrence,
            self.transmission,
            self.manifestation,
            self.probability()
        )
    }
}

/// The influence of one FCM on another (Eq. 2), in `[0, 1]`.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Influence(Probability);

impl Influence {
    /// No influence.
    pub const NONE: Influence = Influence(Probability::ZERO);

    /// Eq. 2: combines independent fault factors into an influence value
    /// `1 − Π(1 − pᵢ)`.
    ///
    /// # Example
    ///
    /// ```
    /// use fcm_core::{FactorKind, FaultFactor, Influence};
    ///
    /// let f1 = FaultFactor::new(FactorKind::ParameterPassing, 0.5, 0.8, 0.5)?;
    /// let f2 = FaultFactor::new(FactorKind::GlobalVariable, 0.5, 1.0, 0.4)?;
    /// let infl = Influence::from_factors(&[f1, f2]);
    /// // p1 = 0.2, p2 = 0.2; 1 - 0.8*0.8 = 0.36
    /// assert!((infl.value() - 0.36).abs() < 1e-12);
    /// # Ok::<(), fcm_core::FcmError>(())
    /// ```
    pub fn from_factors(factors: &[FaultFactor]) -> Influence {
        let none = factors
            .iter()
            .map(|f| f.probability().complement().value())
            .product::<f64>();
        Influence(Probability::clamped(1.0 - none))
    }

    /// Wraps a pre-computed influence value.
    ///
    /// # Errors
    ///
    /// Returns [`FcmError::InvalidProbability`] when outside `[0, 1]`.
    pub fn new(value: f64) -> Result<Influence, FcmError> {
        Ok(Influence(Probability::new(value)?))
    }

    /// Eq. 4: combines parallel influence values into one,
    /// `1 − Π(1 − pᵢ)`, folding strictly left to right.
    ///
    /// The fold order is a contract, not an implementation detail: graph
    /// condensation (`fcm-graph::condense`) and the incremental cluster
    /// pipeline (`fcm-alloc::pipeline`) combine edge weights in global
    /// edge order with this same association, which is what makes the
    /// incrementally-maintained influence matrix **bitwise** equal to a
    /// full recompute.
    #[must_use]
    pub fn combine_parallel(values: &[f64]) -> f64 {
        1.0 - values.iter().fold(1.0, |acc, &p| acc * (1.0 - p))
    }

    /// The raw value in `[0, 1]`.
    pub fn value(self) -> f64 {
        self.0.value()
    }

    /// The underlying probability.
    pub fn probability(self) -> Probability {
        self.0
    }
}

impl fmt::Display for Influence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl From<Influence> for f64 {
    fn from(i: Influence) -> f64 {
        i.value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probability_validates_range() {
        assert!(Probability::new(0.0).is_ok());
        assert!(Probability::new(1.0).is_ok());
        assert!(Probability::new(-0.1).is_err());
        assert!(Probability::new(1.1).is_err());
        assert!(Probability::new(f64::NAN).is_err());
    }

    #[test]
    fn probability_clamping() {
        assert_eq!(Probability::clamped(2.0), Probability::ONE);
        assert_eq!(Probability::clamped(-3.0), Probability::ZERO);
        assert_eq!(Probability::clamped(f64::NAN), Probability::ZERO);
        assert_eq!(Probability::clamped(0.5).value(), 0.5);
    }

    #[test]
    fn probability_algebra() {
        let half = Probability::new(0.5).unwrap();
        assert_eq!(half.complement().value(), 0.5);
        assert_eq!(half.and(half).value(), 0.25);
        assert_eq!(half.or(half).value(), 0.75);
        assert_eq!(f64::from(half), 0.5);
    }

    #[test]
    fn eq1_is_a_product_of_components() {
        let f = FaultFactor::new(FactorKind::SharedMemory, 0.5, 0.4, 0.25).unwrap();
        assert!((f.probability().value() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn eq2_combines_factors_probabilistically() {
        let f1 = FaultFactor::new(FactorKind::ParameterPassing, 1.0, 1.0, 0.3).unwrap();
        let f2 = FaultFactor::new(FactorKind::GlobalVariable, 1.0, 1.0, 0.2).unwrap();
        let infl = Influence::from_factors(&[f1, f2]);
        assert!((infl.value() - 0.44).abs() < 1e-12);
    }

    #[test]
    fn eq2_of_no_factors_is_zero() {
        assert_eq!(Influence::from_factors(&[]).value(), 0.0);
        assert_eq!(Influence::NONE.value(), 0.0);
    }

    #[test]
    fn eq4_combine_parallel_matches_the_condense_rule() {
        assert!((Influence::combine_parallel(&[0.7, 0.2]) - 0.76).abs() < 1e-12);
        assert_eq!(Influence::combine_parallel(&[]), 0.0);
        assert_eq!(Influence::combine_parallel(&[1.0, 0.3]), 1.0);
        // Bitwise agreement with the graph-layer rule, same fold order.
        let ws = [0.37, 0.11, 0.993, 0.0, 0.61];
        assert_eq!(
            Influence::combine_parallel(&ws),
            fcm_graph::CombineRule::Probabilistic.combine(&ws)
        );
    }

    #[test]
    fn eq2_is_monotone_in_each_factor() {
        let low = FaultFactor::new(FactorKind::Timing, 0.1, 0.5, 0.5).unwrap();
        let high = FaultFactor::new(FactorKind::Timing, 0.9, 0.5, 0.5).unwrap();
        let base = FaultFactor::new(FactorKind::SharedMemory, 0.3, 0.3, 0.3).unwrap();
        let a = Influence::from_factors(&[base, low]);
        let b = Influence::from_factors(&[base, high]);
        assert!(b.value() > a.value());
    }

    #[test]
    fn invalid_components_are_rejected() {
        assert!(matches!(
            FaultFactor::new(FactorKind::Other, 1.5, 0.5, 0.5),
            Err(FcmError::InvalidProbability { .. })
        ));
        assert!(Influence::new(1.5).is_err());
        assert!(Influence::new(0.76).is_ok());
    }

    #[test]
    fn factor_kinds_map_to_levels() {
        assert_eq!(
            FactorKind::GlobalVariable.level(),
            HierarchyLevel::Procedure
        );
        assert_eq!(FactorKind::Timing.level(), HierarchyLevel::Task);
        assert_eq!(
            FactorKind::ResourceContention.level(),
            HierarchyLevel::Process
        );
    }

    #[test]
    fn isolation_reduces_transmission_of_mitigated_kind_only() {
        let timing = FaultFactor::new(FactorKind::Timing, 0.5, 0.8, 0.5).unwrap();
        let mitigated = timing.with_isolation(IsolationTechnique::PreemptiveScheduling);
        assert!(mitigated.transmission.value() < timing.transmission.value());
        // Preemption does nothing for global-variable corruption.
        let gv = FaultFactor::new(FactorKind::GlobalVariable, 0.5, 0.8, 0.5).unwrap();
        let same = gv.with_isolation(IsolationTechnique::PreemptiveScheduling);
        assert_eq!(same.transmission, gv.transmission);
    }

    #[test]
    fn displays() {
        let f = FaultFactor::new(FactorKind::MessagePassing, 0.5, 0.5, 0.5).unwrap();
        let s = f.to_string();
        assert!(s.starts_with("message passing:"));
        assert!(s.ends_with("0.1250"));
        assert_eq!(Influence::new(0.76).unwrap().to_string(), "0.7600");
    }
}
