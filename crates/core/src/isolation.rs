//! Isolation techniques per hierarchy level (paper §3 and §4.2.2–§4.2.3).
//!
//! "The isolation techniques are different for different levels (e.g.,
//! hiding variables at the procedure level, or separating memory at the
//! process level)." Each technique is modelled by the factor kinds it
//! mitigates and a multiplicative reduction of the transmission
//! probability pᵢ₂ — the component the paper says these techniques act on.

use std::fmt;

use crate::influence::FactorKind;
use crate::level::HierarchyLevel;

/// A fault-isolation technique, applied when an FCM is created so that
/// "the other FCMs it might interact with … are clearly isolated from it".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum IsolationTechnique {
    /// Object-oriented information hiding (procedure level, §3.3).
    InformationHiding,
    /// Range checks on passed parameters (procedure level).
    ParameterRangeChecks,
    /// N-version programming (task level, §3.2).
    NVersionProgramming,
    /// Recovery blocks (task level, §3.2).
    RecoveryBlocks,
    /// Preemptive scheduling, which stops a looping task from starving its
    /// peers (task level, §4.2.3).
    PreemptiveScheduling,
    /// Separate memory blocks per process (process level, §3.1).
    MemorySeparation,
    /// CPU/resource quota enforcement (process level, §3.1: "ensuring
    /// against overuse of resources (e.g., CPU)").
    ResourceQuotas,
}

impl IsolationTechnique {
    /// All techniques.
    pub const ALL: [IsolationTechnique; 7] = [
        IsolationTechnique::InformationHiding,
        IsolationTechnique::ParameterRangeChecks,
        IsolationTechnique::NVersionProgramming,
        IsolationTechnique::RecoveryBlocks,
        IsolationTechnique::PreemptiveScheduling,
        IsolationTechnique::MemorySeparation,
        IsolationTechnique::ResourceQuotas,
    ];

    /// The hierarchy level this technique belongs to.
    pub fn level(self) -> HierarchyLevel {
        match self {
            IsolationTechnique::InformationHiding | IsolationTechnique::ParameterRangeChecks => {
                HierarchyLevel::Procedure
            }
            IsolationTechnique::NVersionProgramming
            | IsolationTechnique::RecoveryBlocks
            | IsolationTechnique::PreemptiveScheduling => HierarchyLevel::Task,
            IsolationTechnique::MemorySeparation | IsolationTechnique::ResourceQuotas => {
                HierarchyLevel::Process
            }
        }
    }

    /// Whether this technique mitigates transmission via `kind`.
    pub fn mitigates(self, kind: FactorKind) -> bool {
        match self {
            IsolationTechnique::InformationHiding => {
                matches!(kind, FactorKind::GlobalVariable | FactorKind::SharedMemory)
            }
            IsolationTechnique::ParameterRangeChecks => {
                matches!(kind, FactorKind::ParameterPassing | FactorKind::ReturnValue)
            }
            IsolationTechnique::NVersionProgramming | IsolationTechnique::RecoveryBlocks => {
                matches!(
                    kind,
                    FactorKind::MessagePassing | FactorKind::SharedMemory | FactorKind::ReturnValue
                )
            }
            IsolationTechnique::PreemptiveScheduling => matches!(kind, FactorKind::Timing),
            IsolationTechnique::MemorySeparation => {
                matches!(kind, FactorKind::SharedMemory | FactorKind::GlobalVariable)
            }
            IsolationTechnique::ResourceQuotas => {
                matches!(kind, FactorKind::ResourceContention | FactorKind::Timing)
            }
        }
    }

    /// Multiplier applied to the transmission probability pᵢ₂ of mitigated
    /// factors (smaller = stronger isolation). Values are the defaults used
    /// by the simulator's ablation experiment E7; they are deliberately
    /// conservative order-of-magnitude figures, not calibrated constants.
    pub fn transmission_multiplier(self) -> f64 {
        match self {
            IsolationTechnique::InformationHiding => 0.2,
            IsolationTechnique::ParameterRangeChecks => 0.3,
            IsolationTechnique::NVersionProgramming => 0.1,
            IsolationTechnique::RecoveryBlocks => 0.25,
            IsolationTechnique::PreemptiveScheduling => 0.15,
            IsolationTechnique::MemorySeparation => 0.05,
            IsolationTechnique::ResourceQuotas => 0.2,
        }
    }
}

impl fmt::Display for IsolationTechnique {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IsolationTechnique::InformationHiding => "information hiding",
            IsolationTechnique::ParameterRangeChecks => "parameter range checks",
            IsolationTechnique::NVersionProgramming => "n-version programming",
            IsolationTechnique::RecoveryBlocks => "recovery blocks",
            IsolationTechnique::PreemptiveScheduling => "preemptive scheduling",
            IsolationTechnique::MemorySeparation => "memory separation",
            IsolationTechnique::ResourceQuotas => "resource quotas",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_technique_has_a_level_and_multiplier_below_one() {
        for t in IsolationTechnique::ALL {
            let m = t.transmission_multiplier();
            assert!(m > 0.0 && m < 1.0, "{t}");
            let _ = t.level();
        }
    }

    #[test]
    fn preemption_mitigates_timing_only() {
        let t = IsolationTechnique::PreemptiveScheduling;
        assert!(t.mitigates(FactorKind::Timing));
        assert!(!t.mitigates(FactorKind::SharedMemory));
        assert_eq!(t.level(), HierarchyLevel::Task);
    }

    #[test]
    fn memory_separation_is_a_process_level_technique() {
        let t = IsolationTechnique::MemorySeparation;
        assert_eq!(t.level(), HierarchyLevel::Process);
        assert!(t.mitigates(FactorKind::SharedMemory));
    }

    #[test]
    fn information_hiding_targets_global_variables() {
        assert!(IsolationTechnique::InformationHiding.mitigates(FactorKind::GlobalVariable));
        assert!(!IsolationTechnique::InformationHiding.mitigates(FactorKind::Timing));
    }

    #[test]
    fn displays_are_prose() {
        assert_eq!(
            IsolationTechnique::RecoveryBlocks.to_string(),
            "recovery blocks"
        );
    }
}
