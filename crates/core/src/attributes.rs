//! FCM attributes and their combination rules.
//!
//! Every FCM carries "an associated set of attributes, such as criticality,
//! fault tolerance requirements, timing constraints, and throughput"
//! (paper §4.3). When FCMs are integrated, "the resulting FCM will usually
//! have the most stringent component values (e.g. max criticality, min
//! deadline), or an aggregate (e.g., sum of throughputs)" — that is exactly
//! what [`AttributeSet::combine`] implements. The allocation heuristics
//! use [`AttributeSet::importance`], "a weighted sum of its attribute
//! values, using predefined static relative weights" (§5.1).

use std::fmt;

use fcm_sched::{Job, JobId, Time};

/// Application criticality (higher = more critical). The paper's Table 1
/// uses small integers (e.g. 10 for the flight-critical process).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct Criticality(pub u32);

impl fmt::Display for Criticality {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{}", self.0)
    }
}

/// Fault-tolerance requirement expressed as a replication degree.
///
/// `FT = 1` means a simplex (no replication); `FT = 2` a duplex;
/// `FT = 3` triple modular redundancy (the paper's process p1 "has to be
/// replicated three times to be run in a TMR mode (FT = 3)").
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FaultTolerance(pub u8);

impl FaultTolerance {
    /// Simplex: a single copy.
    pub const SIMPLEX: FaultTolerance = FaultTolerance(1);
    /// Duplex: two copies.
    pub const DUPLEX: FaultTolerance = FaultTolerance(2);
    /// Triple modular redundancy.
    pub const TMR: FaultTolerance = FaultTolerance(3);

    /// Number of concurrent replicas required (at least 1).
    pub fn replicas(self) -> u8 {
        self.0.max(1)
    }

    /// Whether more than one copy is required.
    pub fn is_replicated(self) -> bool {
        self.replicas() > 1
    }
}

impl Default for FaultTolerance {
    fn default() -> Self {
        FaultTolerance::SIMPLEX
    }
}

impl fmt::Display for FaultTolerance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FT{}", self.replicas())
    }
}

/// The paper's per-process timing triple: earliest start time (EST), task
/// completion deadline (TCD), and computation time (CT).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingConstraint {
    /// Earliest start time.
    pub est: Time,
    /// Absolute completion deadline.
    pub tcd: Time,
    /// Computation time.
    pub ct: Time,
}

impl TimingConstraint {
    /// Creates a timing triple ⟨EST, TCD, CT⟩.
    pub fn new(est: Time, tcd: Time, ct: Time) -> Self {
        TimingConstraint { est, tcd, ct }
    }

    /// The scheduling job equivalent, keyed by `id`.
    pub fn to_job(self, id: JobId) -> Job {
        Job::new(id, self.est, self.tcd, self.ct)
    }

    /// Slack `tcd − est − ct` (`None` when the window cannot fit the work).
    pub fn slack(self) -> Option<Time> {
        self.tcd.saturating_sub(self.est).checked_sub(self.ct)
    }

    /// Whether the constraint is satisfiable in isolation.
    pub fn is_well_formed(self) -> bool {
        self.ct > 0 && self.est + self.ct <= self.tcd
    }

    /// Work density `ct / (tcd − est)` in `[0, ∞)`; `∞` for a zero window.
    pub fn density(self) -> f64 {
        let window = self.tcd.saturating_sub(self.est);
        if window == 0 {
            f64::INFINITY
        } else {
            self.ct as f64 / window as f64
        }
    }

    /// The most-stringent combination used when two FCMs are *merged* into
    /// one schedulable unit: latest EST, earliest TCD, summed CT.
    ///
    /// The result may be infeasible (`!is_well_formed()`) — that is the
    /// signal the integration layer uses to reject a merge.
    pub fn merge_stringent(self, other: TimingConstraint) -> TimingConstraint {
        TimingConstraint {
            est: self.est.max(other.est),
            tcd: self.tcd.min(other.tcd),
            ct: self.ct + other.ct,
        }
    }

    /// The enveloping combination used when FCMs are *grouped* (they keep
    /// separate schedulable identities, the parent merely summarises):
    /// earliest EST, latest TCD, summed CT.
    pub fn group_envelope(self, other: TimingConstraint) -> TimingConstraint {
        TimingConstraint {
            est: self.est.min(other.est),
            tcd: self.tcd.max(other.tcd),
            ct: self.ct + other.ct,
        }
    }
}

impl fmt::Display for TimingConstraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{},{},{}⟩", self.est, self.tcd, self.ct)
    }
}

/// Sustained throughput requirement (units per tick); combined by
/// summation, per the paper.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct Throughput(pub f64);

impl fmt::Display for Throughput {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/t", self.0)
    }
}

/// Information-security classification level (higher = more restricted);
/// combined by maximum (data flows up to the most restricted member).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default,
)]
pub struct SecurityLevel(pub u8);

impl fmt::Display for SecurityLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// The full attribute vector carried by every FCM.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AttributeSet {
    /// Task criticality.
    pub criticality: Criticality,
    /// Replication requirement.
    pub fault_tolerance: FaultTolerance,
    /// Timing triple; `None` for FCMs without hard timing constraints.
    pub timing: Option<TimingConstraint>,
    /// Throughput requirement.
    pub throughput: Throughput,
    /// Security classification.
    pub security: SecurityLevel,
}

impl AttributeSet {
    /// Builder-style setter for criticality.
    pub fn with_criticality(mut self, c: u32) -> Self {
        self.criticality = Criticality(c);
        self
    }

    /// Builder-style setter for fault tolerance.
    pub fn with_fault_tolerance(mut self, ft: FaultTolerance) -> Self {
        self.fault_tolerance = ft;
        self
    }

    /// Builder-style setter for the timing triple.
    pub fn with_timing(mut self, est: Time, tcd: Time, ct: Time) -> Self {
        self.timing = Some(TimingConstraint::new(est, tcd, ct));
        self
    }

    /// Builder-style setter for throughput.
    pub fn with_throughput(mut self, units_per_tick: f64) -> Self {
        self.throughput = Throughput(units_per_tick);
        self
    }

    /// Builder-style setter for security level.
    pub fn with_security(mut self, level: u8) -> Self {
        self.security = SecurityLevel(level);
        self
    }

    /// The paper's combination rule (§4.3): most-stringent component values
    /// — max criticality, max fault tolerance, max security — and
    /// aggregates — summed throughput. Timing combines per `kind`:
    /// stringent for merges, enveloping for groups.
    pub fn combine(
        &self,
        other: &AttributeSet,
        kind: crate::composition::CompositionKind,
    ) -> AttributeSet {
        use crate::composition::CompositionKind;
        let timing = match (self.timing, other.timing) {
            (Some(a), Some(b)) => Some(match kind {
                CompositionKind::Merge => a.merge_stringent(b),
                CompositionKind::Group => a.group_envelope(b),
            }),
            (t, None) | (None, t) => t,
        };
        AttributeSet {
            criticality: self.criticality.max(other.criticality),
            fault_tolerance: self.fault_tolerance.max(other.fault_tolerance),
            timing,
            throughput: Throughput(self.throughput.0 + other.throughput.0),
            security: self.security.max(other.security),
        }
    }

    /// Combines a non-empty sequence of attribute sets.
    ///
    /// Returns `None` for an empty iterator.
    pub fn combine_all<'a>(
        mut attrs: impl Iterator<Item = &'a AttributeSet>,
        kind: crate::composition::CompositionKind,
    ) -> Option<AttributeSet> {
        let first = *attrs.next()?;
        Some(attrs.fold(first, |acc, a| acc.combine(a, kind)))
    }

    /// The weighted-sum importance of §5.1, using `weights`.
    pub fn importance(&self, weights: &ImportanceWeights) -> f64 {
        let timing_urgency = self.timing.map_or(0.0, |t| t.density().min(1.0));
        weights.criticality * self.criticality.0 as f64
            + weights.fault_tolerance * self.fault_tolerance.replicas() as f64
            + weights.timing_urgency * timing_urgency
            + weights.throughput * self.throughput.0
            + weights.security * self.security.0 as f64
    }
}

impl fmt::Display for AttributeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.criticality, self.fault_tolerance)?;
        if let Some(t) = self.timing {
            write!(f, " {t}")?;
        }
        write!(f, " {} {}", self.throughput, self.security)
    }
}

/// The "predefined static relative weights" (§5.1) used to fold an
/// attribute vector into a scalar importance.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImportanceWeights {
    /// Weight on criticality.
    pub criticality: f64,
    /// Weight on replication degree.
    pub fault_tolerance: f64,
    /// Weight on timing urgency (work density, capped at 1).
    pub timing_urgency: f64,
    /// Weight on throughput.
    pub throughput: f64,
    /// Weight on security level.
    pub security: f64,
}

impl Default for ImportanceWeights {
    /// Criticality dominates (the paper treats it as the first-class
    /// attribute), fault tolerance and timing follow, throughput and
    /// security contribute least.
    fn default() -> Self {
        ImportanceWeights {
            criticality: 1.0,
            fault_tolerance: 0.5,
            timing_urgency: 0.5,
            throughput: 0.1,
            security: 0.1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::composition::CompositionKind;

    #[test]
    fn fault_tolerance_constants() {
        assert_eq!(FaultTolerance::SIMPLEX.replicas(), 1);
        assert!(!FaultTolerance::SIMPLEX.is_replicated());
        assert_eq!(FaultTolerance::TMR.replicas(), 3);
        assert!(FaultTolerance::TMR.is_replicated());
        assert_eq!(FaultTolerance::default(), FaultTolerance::SIMPLEX);
        // Zero is clamped to one replica.
        assert_eq!(FaultTolerance(0).replicas(), 1);
    }

    #[test]
    fn timing_slack_and_density() {
        let t = TimingConstraint::new(2, 10, 3);
        assert!(t.is_well_formed());
        assert_eq!(t.slack(), Some(5));
        assert!((t.density() - 0.375).abs() < 1e-12);
        let tight = TimingConstraint::new(0, 2, 3);
        assert!(!tight.is_well_formed());
        assert_eq!(tight.slack(), None);
    }

    #[test]
    fn merge_stringent_detects_conflicts() {
        // The paper: triples that cannot share a processor produce an
        // infeasible merged constraint.
        let a = TimingConstraint::new(0, 6, 4);
        let b = TimingConstraint::new(0, 6, 4);
        let m = a.merge_stringent(b);
        assert_eq!(m, TimingConstraint::new(0, 6, 8));
        assert!(!m.is_well_formed());
        // Compatible triples stay feasible.
        let c = TimingConstraint::new(0, 12, 4);
        let d = TimingConstraint::new(0, 20, 4);
        assert!(c.merge_stringent(d).is_well_formed());
    }

    #[test]
    fn group_envelope_widens_window() {
        let a = TimingConstraint::new(2, 10, 3);
        let b = TimingConstraint::new(0, 30, 4);
        assert_eq!(a.group_envelope(b), TimingConstraint::new(0, 30, 7));
    }

    #[test]
    fn combine_takes_most_stringent_and_aggregates() {
        let a = AttributeSet::default()
            .with_criticality(10)
            .with_fault_tolerance(FaultTolerance::TMR)
            .with_timing(0, 10, 4)
            .with_throughput(2.0)
            .with_security(1);
        let b = AttributeSet::default()
            .with_criticality(3)
            .with_timing(2, 8, 2)
            .with_throughput(1.5)
            .with_security(4);
        let m = a.combine(&b, CompositionKind::Merge);
        assert_eq!(m.criticality, Criticality(10));
        assert_eq!(m.fault_tolerance, FaultTolerance::TMR);
        assert_eq!(m.timing, Some(TimingConstraint::new(2, 8, 6)));
        assert!((m.throughput.0 - 3.5).abs() < 1e-12);
        assert_eq!(m.security, SecurityLevel(4));
    }

    #[test]
    fn combine_with_missing_timing_keeps_the_present_one() {
        let a = AttributeSet::default().with_timing(0, 10, 2);
        let b = AttributeSet::default();
        assert_eq!(
            a.combine(&b, CompositionKind::Merge).timing,
            Some(TimingConstraint::new(0, 10, 2))
        );
        assert_eq!(
            b.combine(&a, CompositionKind::Group).timing,
            Some(TimingConstraint::new(0, 10, 2))
        );
    }

    #[test]
    fn combine_all_folds_in_order() {
        let sets = [
            AttributeSet::default()
                .with_criticality(1)
                .with_throughput(1.0),
            AttributeSet::default()
                .with_criticality(5)
                .with_throughput(2.0),
            AttributeSet::default()
                .with_criticality(3)
                .with_throughput(3.0),
        ];
        let c = AttributeSet::combine_all(sets.iter(), CompositionKind::Group).unwrap();
        assert_eq!(c.criticality, Criticality(5));
        assert!((c.throughput.0 - 6.0).abs() < 1e-12);
        assert!(AttributeSet::combine_all([].iter(), CompositionKind::Group).is_none());
    }

    #[test]
    fn importance_is_a_weighted_sum() {
        let attrs = AttributeSet::default()
            .with_criticality(10)
            .with_fault_tolerance(FaultTolerance::TMR)
            .with_timing(0, 10, 5)
            .with_throughput(2.0)
            .with_security(3);
        let w = ImportanceWeights::default();
        let expect = 1.0 * 10.0 + 0.5 * 3.0 + 0.5 * 0.5 + 0.1 * 2.0 + 0.1 * 3.0;
        assert!((attrs.importance(&w) - expect).abs() < 1e-12);
    }

    #[test]
    fn importance_orders_by_criticality_under_default_weights() {
        let hi = AttributeSet::default().with_criticality(10);
        let lo = AttributeSet::default().with_criticality(2);
        let w = ImportanceWeights::default();
        assert!(hi.importance(&w) > lo.importance(&w));
    }

    #[test]
    fn displays_are_compact() {
        let attrs = AttributeSet::default()
            .with_criticality(10)
            .with_fault_tolerance(FaultTolerance::TMR)
            .with_timing(0, 10, 4);
        let s = attrs.to_string();
        assert!(s.contains("C10"));
        assert!(s.contains("FT3"));
        assert!(s.contains("⟨0,10,4⟩"));
        assert_eq!(SecurityLevel(2).to_string(), "S2");
        assert_eq!(Throughput(1.5).to_string(), "1.5/t");
    }

    #[test]
    fn zero_window_density_is_infinite() {
        let t = TimingConstraint::new(5, 5, 1);
        assert!(t.density().is_infinite());
        assert!(!t.is_well_formed());
    }
}
