//! The three-level FCM hierarchy and per-level fault classes.

use std::fmt;

/// A level of the FCM hierarchy (paper Fig. 1).
///
/// The choice of exactly three levels is the paper's: *"The choice of
/// three levels (and the elements used) is deliberate, illustrating the
/// conceptual approach while minimizing model complexity."* Levels order
/// from the leaf up: `Procedure < Task < Process`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HierarchyLevel {
    /// Lowest level: a named, callable module without its own thread of
    /// control; communicates via parameters and global variables.
    Procedure,
    /// Middle level: a lightweight thread with its own stack and PC;
    /// tasks in one process may share data and communicate via messages.
    Task,
    /// Top level: a heavyweight (UNIX-like) process with its own code and
    /// data space.
    Process,
}

impl HierarchyLevel {
    /// All levels, leaf first.
    pub const ALL: [HierarchyLevel; 3] = [
        HierarchyLevel::Procedure,
        HierarchyLevel::Task,
        HierarchyLevel::Process,
    ];

    /// The level above, or `None` at `Process`.
    pub fn parent(self) -> Option<HierarchyLevel> {
        match self {
            HierarchyLevel::Procedure => Some(HierarchyLevel::Task),
            HierarchyLevel::Task => Some(HierarchyLevel::Process),
            HierarchyLevel::Process => None,
        }
    }

    /// The level below, or `None` at `Procedure`.
    pub fn child(self) -> Option<HierarchyLevel> {
        match self {
            HierarchyLevel::Procedure => None,
            HierarchyLevel::Task => Some(HierarchyLevel::Procedure),
            HierarchyLevel::Process => Some(HierarchyLevel::Task),
        }
    }

    /// The fault classes handled *at* this level (paper §3.1–3.3): each
    /// level of the hierarchy isolates a predefined class of faults.
    pub fn fault_classes(self) -> &'static [FaultClass] {
        match self {
            HierarchyLevel::Procedure => &[
                FaultClass::ErroneousParameter,
                FaultClass::GlobalVariableCorruption,
                FaultClass::ErroneousReturnValue,
            ],
            HierarchyLevel::Task => &[
                FaultClass::SharedMemoryCorruption,
                FaultClass::MessageCorruption,
                FaultClass::TimingOverrun,
                FaultClass::PriorityInversion,
            ],
            HierarchyLevel::Process => &[
                FaultClass::MemoryFootprint,
                FaultClass::ResourceOveruse,
                FaultClass::SchedulingFault,
                FaultClass::CommunicationFault,
            ],
        }
    }

    /// Whether `fault` is handled at this level.
    pub fn handles(self, fault: FaultClass) -> bool {
        self.fault_classes().contains(&fault)
    }
}

impl fmt::Display for HierarchyLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            HierarchyLevel::Procedure => "procedure",
            HierarchyLevel::Task => "task",
            HierarchyLevel::Process => "process",
        };
        f.write_str(s)
    }
}

/// A class of fault, assigned to the hierarchy level that must contain it
/// (paper: "isolation of fault types into fixed levels of a
/// design/implementation hierarchy").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FaultClass {
    // Procedure level.
    /// An erroneous value passed as a parameter.
    ErroneousParameter,
    /// Corruption spread through a global variable.
    GlobalVariableCorruption,
    /// An erroneous return value.
    ErroneousReturnValue,
    // Task level.
    /// Corruption of memory shared between tasks.
    SharedMemoryCorruption,
    /// A corrupted or lost inter-task message.
    MessageCorruption,
    /// A task overrunning its budget and delaying others ("one task's
    /// delay … may cause another to miss its deadline").
    TimingOverrun,
    /// Priority inversion between tasks.
    PriorityInversion,
    // Process level.
    /// Memory-space overlap between processes ("memory footprints").
    MemoryFootprint,
    /// Overuse of a shared resource (e.g. CPU).
    ResourceOveruse,
    /// A processor-level scheduling fault.
    SchedulingFault,
    /// A fault in inter-process communication over shared HW.
    CommunicationFault,
}

impl FaultClass {
    /// The hierarchy level responsible for containing this fault class.
    pub fn level(self) -> HierarchyLevel {
        match self {
            FaultClass::ErroneousParameter
            | FaultClass::GlobalVariableCorruption
            | FaultClass::ErroneousReturnValue => HierarchyLevel::Procedure,
            FaultClass::SharedMemoryCorruption
            | FaultClass::MessageCorruption
            | FaultClass::TimingOverrun
            | FaultClass::PriorityInversion => HierarchyLevel::Task,
            FaultClass::MemoryFootprint
            | FaultClass::ResourceOveruse
            | FaultClass::SchedulingFault
            | FaultClass::CommunicationFault => HierarchyLevel::Process,
        }
    }
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultClass::ErroneousParameter => "erroneous parameter",
            FaultClass::GlobalVariableCorruption => "global variable corruption",
            FaultClass::ErroneousReturnValue => "erroneous return value",
            FaultClass::SharedMemoryCorruption => "shared memory corruption",
            FaultClass::MessageCorruption => "message corruption",
            FaultClass::TimingOverrun => "timing overrun",
            FaultClass::PriorityInversion => "priority inversion",
            FaultClass::MemoryFootprint => "memory footprint overlap",
            FaultClass::ResourceOveruse => "resource overuse",
            FaultClass::SchedulingFault => "scheduling fault",
            FaultClass::CommunicationFault => "communication fault",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_order_leaf_to_root() {
        assert!(HierarchyLevel::Procedure < HierarchyLevel::Task);
        assert!(HierarchyLevel::Task < HierarchyLevel::Process);
    }

    #[test]
    fn parent_child_are_inverse() {
        for level in HierarchyLevel::ALL {
            if let Some(p) = level.parent() {
                assert_eq!(p.child(), Some(level));
            }
            if let Some(c) = level.child() {
                assert_eq!(c.parent(), Some(level));
            }
        }
        assert_eq!(HierarchyLevel::Process.parent(), None);
        assert_eq!(HierarchyLevel::Procedure.child(), None);
    }

    #[test]
    fn every_fault_class_maps_to_its_level() {
        for level in HierarchyLevel::ALL {
            for &fc in level.fault_classes() {
                assert_eq!(fc.level(), level);
                assert!(level.handles(fc));
            }
        }
    }

    #[test]
    fn fault_classes_are_disjoint_across_levels() {
        let all: Vec<FaultClass> = HierarchyLevel::ALL
            .iter()
            .flat_map(|l| l.fault_classes().iter().copied())
            .collect();
        let mut dedup = all.clone();
        dedup.dedup();
        assert_eq!(all.len(), dedup.len());
        // A task-level fault is not handled at process level.
        assert!(!HierarchyLevel::Process.handles(FaultClass::TimingOverrun));
    }

    #[test]
    fn display_is_lowercase_prose() {
        assert_eq!(HierarchyLevel::Task.to_string(), "task");
        assert_eq!(
            FaultClass::MemoryFootprint.to_string(),
            "memory footprint overlap"
        );
    }
}
