//! The FCM integration hierarchy with composition rules R1–R5.
//!
//! The paper's vertical-integration rules (§4.1), enforced here by
//! construction or checked at call sites:
//!
//! * **R1** — "Any number of FCMs at one level can be integrated to form
//!   an FCM at the next higher level" (and only the next higher level);
//! * **R2** — "The integration DAG is a tree": no FCM has two parents and
//!   no two FCMs share a lower-level FCM. Consequently reuse requires
//!   duplication ([`FcmHierarchy::duplicate_into`]) — "the function must
//!   be separately compiled with each FCM caller";
//! * **R3** — "An FCM can be integrated only with its siblings"
//!   ([`FcmHierarchy::merge_siblings`] rejects non-siblings);
//! * **R4** — "If children of different parents are integrated, their
//!   parents must be integrated" ([`FcmHierarchy::integrate_across`]
//!   merges the parent chain bottom-up);
//! * **R5** — "Whenever a FCM is modified, its parent FCM, and only its
//!   parent, also needs to be tested, including the interfaces with its
//!   siblings" ([`FcmHierarchy::retest_set`]).

use std::collections::VecDeque;
use std::fmt;

use crate::attributes::AttributeSet;
use crate::composition::CompositionKind;
use crate::error::FcmError;
use crate::level::HierarchyLevel;

/// Identifier of an FCM within one [`FcmHierarchy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FcmId(pub u64);

impl FcmId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FcmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// A fault containment module in the hierarchy.
#[derive(Debug, Clone, PartialEq)]
pub struct Fcm {
    id: FcmId,
    name: String,
    level: HierarchyLevel,
    attributes: AttributeSet,
    parent: Option<FcmId>,
    children: Vec<FcmId>,
    replica_group: Option<u32>,
    alive: bool,
}

impl Fcm {
    /// The FCM's id.
    pub fn id(&self) -> FcmId {
        self.id
    }

    /// The FCM's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The hierarchy level.
    pub fn level(&self) -> HierarchyLevel {
        self.level
    }

    /// The attribute set.
    pub fn attributes(&self) -> &AttributeSet {
        &self.attributes
    }

    /// The parent FCM, if any.
    pub fn parent(&self) -> Option<FcmId> {
        self.parent
    }

    /// Child FCMs, in insertion order.
    pub fn children(&self) -> &[FcmId] {
        &self.children
    }

    /// The replica-group tag, when this FCM is a replica of a module
    /// (replicas of the same module share the tag and must stay apart).
    pub fn replica_group(&self) -> Option<u32> {
        self.replica_group
    }
}

/// The R5 retest obligation after a modification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetestSet {
    /// The modified FCM itself (always retested).
    pub modified: FcmId,
    /// Its parent — "its parent FCM, and only its parent, also needs to be
    /// tested". `None` for a root.
    pub parent: Option<FcmId>,
    /// Siblings whose interfaces with the modified FCM must be re-checked.
    pub sibling_interfaces: Vec<FcmId>,
}

impl RetestSet {
    /// Total number of FCMs touched by the retest.
    pub fn size(&self) -> usize {
        1 + usize::from(self.parent.is_some()) + self.sibling_interfaces.len()
    }
}

/// The FCM integration tree.
///
/// FCMs consumed by a merge remain in the arena but are no longer
/// addressable (operations on them return [`FcmError::UnknownFcm`]),
/// preserving id stability for the survivors.
///
/// # Example
///
/// ```
/// use fcm_core::{AttributeSet, FcmHierarchy, HierarchyLevel};
///
/// let mut h = FcmHierarchy::new();
/// let process = h.add_root("nav", HierarchyLevel::Process, AttributeSet::default())?;
/// let task = h.add_child(process, "filter", AttributeSet::default())?;
/// let a = h.add_child(task, "predict", AttributeSet::default())?;
/// let b = h.add_child(task, "update", AttributeSet::default())?;
/// let merged = h.merge_siblings(a, b, "predict_update")?;
/// assert_eq!(h.fcm(merged)?.parent(), Some(task));
/// # Ok::<(), fcm_core::FcmError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FcmHierarchy {
    arena: Vec<Fcm>,
    next_replica_group: u32,
}

impl FcmHierarchy {
    /// Creates an empty hierarchy.
    pub fn new() -> Self {
        FcmHierarchy::default()
    }

    /// Number of live FCMs.
    pub fn len(&self) -> usize {
        self.arena.iter().filter(|f| f.alive).count()
    }

    /// Whether the hierarchy has no live FCMs.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Adds a root FCM at the given level.
    ///
    /// # Errors
    ///
    /// Currently infallible, but returns `Result` for uniformity with the
    /// other constructors and future validation.
    pub fn add_root(
        &mut self,
        name: impl Into<String>,
        level: HierarchyLevel,
        attributes: AttributeSet,
    ) -> Result<FcmId, FcmError> {
        Ok(self.push(name.into(), level, attributes, None))
    }

    /// Adds a child one level below `parent` (rule R1 holds by
    /// construction).
    ///
    /// # Errors
    ///
    /// * [`FcmError::UnknownFcm`] — `parent` does not exist;
    /// * [`FcmError::BelowLeafLevel`] — `parent` is a procedure.
    pub fn add_child(
        &mut self,
        parent: FcmId,
        name: impl Into<String>,
        attributes: AttributeSet,
    ) -> Result<FcmId, FcmError> {
        let parent_level = self.fcm(parent)?.level;
        let child_level = parent_level
            .child()
            .ok_or(FcmError::BelowLeafLevel { id: parent })?;
        let id = self.push(name.into(), child_level, attributes, Some(parent));
        self.arena[parent.index()].children.push(id);
        Ok(id)
    }

    /// Attaches an existing root FCM as a child of `parent` (vertical
    /// *grouping*: the child keeps its interface).
    ///
    /// # Errors
    ///
    /// * [`FcmError::UnknownFcm`] — either id does not exist;
    /// * [`FcmError::AlreadyHasParent`] — rule R2: `child` already has a
    ///   parent and may not be shared;
    /// * [`FcmError::LevelMismatch`] — rule R1: `child` is not exactly one
    ///   level below `parent`.
    pub fn attach(&mut self, parent: FcmId, child: FcmId) -> Result<(), FcmError> {
        let parent_level = self.fcm(parent)?.level;
        let child_fcm = self.fcm(child)?;
        if let Some(existing) = child_fcm.parent {
            return Err(FcmError::AlreadyHasParent {
                id: child,
                parent: existing,
            });
        }
        if parent_level.child() != Some(child_fcm.level) {
            return Err(FcmError::LevelMismatch {
                parent: parent_level,
                child: child_fcm.level,
            });
        }
        self.arena[child.index()].parent = Some(parent);
        self.arena[parent.index()].children.push(child);
        Ok(())
    }

    /// Groups root FCMs (all at the same level) under a brand-new parent
    /// at the next level up — the canonical vertical integration of R1.
    ///
    /// # Errors
    ///
    /// * [`FcmError::NothingToCompose`] — fewer than one child;
    /// * [`FcmError::UnknownFcm`] / [`FcmError::AlreadyHasParent`] /
    ///   [`FcmError::LevelMismatch`] — as for [`FcmHierarchy::attach`];
    /// * [`FcmError::LevelMismatch`] — the children are processes (nothing
    ///   above process level).
    pub fn group_into_new_parent(
        &mut self,
        children: &[FcmId],
        name: impl Into<String>,
    ) -> Result<FcmId, FcmError> {
        let (&first, rest) = children.split_first().ok_or(FcmError::NothingToCompose)?;
        let child_level = self.fcm(first)?.level;
        for &c in rest {
            let l = self.fcm(c)?.level;
            if l != child_level {
                return Err(FcmError::LevelMismatch {
                    parent: l,
                    child: child_level,
                });
            }
        }
        let parent_level = child_level.parent().ok_or(FcmError::LevelMismatch {
            parent: child_level,
            child: child_level,
        })?;
        // Validate every child before mutating anything.
        for &c in children {
            if let Some(existing) = self.fcm(c)?.parent {
                return Err(FcmError::AlreadyHasParent {
                    id: c,
                    parent: existing,
                });
            }
        }
        let attrs = AttributeSet::combine_all(
            children.iter().map(|&c| &self.arena[c.index()].attributes),
            CompositionKind::Group,
        )
        .expect("children is non-empty");
        let parent = self.push(name.into(), parent_level, attrs, None);
        for &c in children {
            self.arena[c.index()].parent = Some(parent);
            self.arena[parent.index()].children.push(c);
        }
        Ok(parent)
    }

    /// Merges two sibling FCMs into one (rule R3); boundaries disappear,
    /// attributes combine most-stringently, and the children of both are
    /// re-parented to the merged FCM.
    ///
    /// # Errors
    ///
    /// * [`FcmError::UnknownFcm`] — an id does not exist;
    /// * [`FcmError::NotSiblings`] — rule R3: the FCMs do not share a
    ///   parent (two parentless FCMs at the same level count as siblings);
    /// * [`FcmError::ReplicaConflict`] — the FCMs are replicas of the same
    ///   module;
    /// * [`FcmError::NothingToCompose`] — `a == b`.
    pub fn merge_siblings(
        &mut self,
        a: FcmId,
        b: FcmId,
        name: impl Into<String>,
    ) -> Result<FcmId, FcmError> {
        if a == b {
            return Err(FcmError::NothingToCompose);
        }
        let fa = self.fcm(a)?.clone();
        let fb = self.fcm(b)?.clone();
        if fa.parent != fb.parent || fa.level != fb.level {
            return Err(FcmError::NotSiblings { a, b });
        }
        if let (Some(ga), Some(gb)) = (fa.replica_group, fb.replica_group) {
            if ga == gb {
                return Err(FcmError::ReplicaConflict { a, b });
            }
        }
        let attrs = fa
            .attributes
            .combine(&fb.attributes, CompositionKind::Merge);
        let merged = self.push(name.into(), fa.level, attrs, fa.parent);
        // Re-parent children of both constituents.
        let mut children = fa.children.clone();
        children.extend_from_slice(&fb.children);
        for &c in &children {
            self.arena[c.index()].parent = Some(merged);
        }
        self.arena[merged.index()].children = children;
        // Replace a and b in the parent's child list with the merged FCM.
        if let Some(p) = fa.parent {
            let list = &mut self.arena[p.index()].children;
            list.retain(|&c| c != a && c != b);
            list.push(merged);
        }
        self.arena[a.index()].alive = false;
        self.arena[b.index()].alive = false;
        Ok(merged)
    }

    /// Integrates two FCMs that may live under different parents by first
    /// integrating the parent chain (rule R4: "if children of different
    /// parents are integrated, their parents must be integrated"), then
    /// merging the two FCMs themselves.
    ///
    /// Returns the merged FCM.
    ///
    /// # Errors
    ///
    /// * everything [`FcmHierarchy::merge_siblings`] can return;
    /// * [`FcmError::NotSiblings`] — one FCM has a parent and the other is
    ///   a root (the hierarchy shapes are incompatible).
    pub fn integrate_across(
        &mut self,
        a: FcmId,
        b: FcmId,
        name: impl Into<String>,
    ) -> Result<FcmId, FcmError> {
        let pa = self.fcm(a)?.parent;
        let pb = self.fcm(b)?.parent;
        match (pa, pb) {
            (Some(pa), Some(pb)) if pa != pb => {
                let pa_name = self.fcm(pa)?.name.clone();
                let pb_name = self.fcm(pb)?.name.clone();
                self.integrate_across(pa, pb, format!("{pa_name}+{pb_name}"))?;
            }
            (Some(_), None) | (None, Some(_)) => {
                return Err(FcmError::NotSiblings { a, b });
            }
            _ => {}
        }
        self.merge_siblings(a, b, name)
    }

    /// Deep-copies the subtree rooted at `child` and attaches the copy
    /// under `new_parent` — the R2-compliant alternative to sharing: "the
    /// lower level FCM(s) can be duplicated and integrated separately with
    /// the two different parents. All associated code, text and data of
    /// the child FCMs is duplicated."
    ///
    /// # Errors
    ///
    /// * [`FcmError::UnknownFcm`] — an id does not exist;
    /// * [`FcmError::LevelMismatch`] — rule R1 between `new_parent` and
    ///   `child`.
    pub fn duplicate_into(&mut self, child: FcmId, new_parent: FcmId) -> Result<FcmId, FcmError> {
        let parent_level = self.fcm(new_parent)?.level;
        let child_fcm = self.fcm(child)?.clone();
        if parent_level.child() != Some(child_fcm.level) {
            return Err(FcmError::LevelMismatch {
                parent: parent_level,
                child: child_fcm.level,
            });
        }
        let copy = self.clone_subtree(child, Some(new_parent));
        self.arena[new_parent.index()].children.push(copy);
        Ok(copy)
    }

    /// Marks a set of FCMs as replicas of one module. Replicas may never
    /// be merged with each other and the allocation layer must map them to
    /// distinct HW nodes.
    ///
    /// # Errors
    ///
    /// * [`FcmError::NothingToCompose`] — fewer than two replicas;
    /// * [`FcmError::UnknownFcm`] — an id does not exist.
    pub fn mark_replicas(&mut self, replicas: &[FcmId]) -> Result<u32, FcmError> {
        if replicas.len() < 2 {
            return Err(FcmError::NothingToCompose);
        }
        for &r in replicas {
            self.fcm(r)?;
        }
        let group = self.next_replica_group;
        self.next_replica_group += 1;
        for &r in replicas {
            self.arena[r.index()].replica_group = Some(group);
        }
        Ok(group)
    }

    /// Rule R5: the retest obligation after modifying `modified` — the
    /// FCM itself, its parent, and the interfaces with its siblings.
    ///
    /// # Errors
    ///
    /// Returns [`FcmError::UnknownFcm`] when `modified` does not exist.
    pub fn retest_set(&self, modified: FcmId) -> Result<RetestSet, FcmError> {
        let fcm = self.fcm(modified)?;
        let parent = fcm.parent;
        let sibling_interfaces = match parent {
            Some(p) => self
                .fcm(p)?
                .children
                .iter()
                .copied()
                .filter(|&c| c != modified)
                .collect(),
            None => Vec::new(),
        };
        Ok(RetestSet {
            modified,
            parent,
            sibling_interfaces,
        })
    }

    /// The naive alternative to R5: re-certify the entire tree containing
    /// `modified` (every live FCM sharing its root). Experiment E6
    /// compares its size against [`FcmHierarchy::retest_set`].
    ///
    /// # Errors
    ///
    /// Returns [`FcmError::UnknownFcm`] when `modified` does not exist.
    pub fn naive_retest_set(&self, modified: FcmId) -> Result<Vec<FcmId>, FcmError> {
        let mut root = modified;
        while let Some(p) = self.fcm(root)?.parent {
            root = p;
        }
        self.descendants(root)
    }

    /// The FCM with id `id`.
    ///
    /// # Errors
    ///
    /// Returns [`FcmError::UnknownFcm`] for missing or merged-away ids.
    pub fn fcm(&self, id: FcmId) -> Result<&Fcm, FcmError> {
        self.arena
            .get(id.index())
            .filter(|f| f.alive)
            .ok_or(FcmError::UnknownFcm { id })
    }

    /// Mutable access to an FCM's attributes (structure stays immutable
    /// from outside; composition goes through the rule-checked methods).
    ///
    /// # Errors
    ///
    /// Returns [`FcmError::UnknownFcm`] for missing ids.
    pub fn attributes_mut(&mut self, id: FcmId) -> Result<&mut AttributeSet, FcmError> {
        self.arena
            .get_mut(id.index())
            .filter(|f| f.alive)
            .map(|f| &mut f.attributes)
            .ok_or(FcmError::UnknownFcm { id })
    }

    /// Iterates over all live FCMs.
    pub fn iter(&self) -> impl Iterator<Item = &Fcm> + '_ {
        self.arena.iter().filter(|f| f.alive)
    }

    /// Live root FCMs (no parent).
    pub fn roots(&self) -> impl Iterator<Item = &Fcm> + '_ {
        self.iter().filter(|f| f.parent.is_none())
    }

    /// All live FCMs at `level`.
    pub fn at_level(&self, level: HierarchyLevel) -> impl Iterator<Item = &Fcm> + '_ {
        self.iter().filter(move |f| f.level == level)
    }

    /// The subtree rooted at `id` (BFS order, including `id`).
    ///
    /// # Errors
    ///
    /// Returns [`FcmError::UnknownFcm`] when `id` does not exist.
    pub fn descendants(&self, id: FcmId) -> Result<Vec<FcmId>, FcmError> {
        self.fcm(id)?;
        let mut out = Vec::new();
        let mut queue = VecDeque::from([id]);
        while let Some(cur) = queue.pop_front() {
            out.push(cur);
            queue.extend(self.arena[cur.index()].children.iter().copied());
        }
        Ok(out)
    }

    /// Whether `a` and `b` are siblings (same parent, or both roots at the
    /// same level).
    pub fn are_siblings(&self, a: FcmId, b: FcmId) -> Result<bool, FcmError> {
        let fa = self.fcm(a)?;
        let fb = self.fcm(b)?;
        Ok(a != b && fa.parent == fb.parent && fa.level == fb.level)
    }

    /// Checks every structural invariant (R1 level steps, R2 tree shape,
    /// parent/child back-links). Composition methods preserve these by
    /// construction; `verify` exists for defence in depth and property
    /// tests.
    ///
    /// # Errors
    ///
    /// Returns the first violated invariant as an [`FcmError`].
    pub fn verify(&self) -> Result<(), FcmError> {
        for f in self.iter() {
            for &c in &f.children {
                let child = self.fcm(c)?;
                if child.parent != Some(f.id) {
                    return Err(FcmError::AlreadyHasParent {
                        id: c,
                        parent: child.parent.unwrap_or(f.id),
                    });
                }
                if f.level.child() != Some(child.level) {
                    return Err(FcmError::LevelMismatch {
                        parent: f.level,
                        child: child.level,
                    });
                }
            }
            if let Some(p) = f.parent {
                let parent = self.fcm(p)?;
                if !parent.children.contains(&f.id) {
                    return Err(FcmError::UnknownFcm { id: f.id });
                }
            }
        }
        // Tree shape: walking parents from any node terminates (no cycles).
        for f in self.iter() {
            let mut seen = 0usize;
            let mut cur = f.id;
            while let Some(p) = self.fcm(cur)?.parent {
                cur = p;
                seen += 1;
                if seen > self.arena.len() {
                    return Err(FcmError::AlreadyHasParent {
                        id: f.id,
                        parent: cur,
                    });
                }
            }
        }
        Ok(())
    }

    fn push(
        &mut self,
        name: String,
        level: HierarchyLevel,
        attributes: AttributeSet,
        parent: Option<FcmId>,
    ) -> FcmId {
        let id = FcmId(self.arena.len() as u64);
        self.arena.push(Fcm {
            id,
            name,
            level,
            attributes,
            parent,
            children: Vec::new(),
            replica_group: None,
            alive: true,
        });
        id
    }

    fn clone_subtree(&mut self, src: FcmId, parent: Option<FcmId>) -> FcmId {
        let template = self.arena[src.index()].clone();
        let copy = self.push(
            format!("{}'", template.name),
            template.level,
            template.attributes,
            parent,
        );
        self.arena[copy.index()].replica_group = template.replica_group;
        for c in template.children {
            let child_copy = self.clone_subtree(c, Some(copy));
            self.arena[copy.index()].children.push(child_copy);
        }
        copy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attributes::{Criticality, FaultTolerance};

    fn attrs(c: u32) -> AttributeSet {
        AttributeSet::default().with_criticality(c)
    }

    /// process -> task -> {p_a, p_b}
    fn small() -> (FcmHierarchy, FcmId, FcmId, FcmId, FcmId) {
        let mut h = FcmHierarchy::new();
        let process = h
            .add_root("proc", HierarchyLevel::Process, attrs(5))
            .unwrap();
        let task = h.add_child(process, "task", attrs(3)).unwrap();
        let a = h.add_child(task, "a", attrs(1)).unwrap();
        let b = h.add_child(task, "b", attrs(2)).unwrap();
        (h, process, task, a, b)
    }

    #[test]
    fn children_get_the_level_below() {
        let (h, process, task, a, _) = small();
        assert_eq!(h.fcm(process).unwrap().level(), HierarchyLevel::Process);
        assert_eq!(h.fcm(task).unwrap().level(), HierarchyLevel::Task);
        assert_eq!(h.fcm(a).unwrap().level(), HierarchyLevel::Procedure);
        assert_eq!(h.len(), 4);
        h.verify().unwrap();
    }

    #[test]
    fn procedures_cannot_have_children() {
        let (mut h, _, _, a, _) = small();
        assert!(matches!(
            h.add_child(a, "x", attrs(0)),
            Err(FcmError::BelowLeafLevel { .. })
        ));
    }

    #[test]
    fn r2_no_second_parent() {
        let (mut h, _, task, _, _) = small();
        let mut h2 = h.clone();
        let other_task = h.add_root("t2", HierarchyLevel::Task, attrs(0)).unwrap();
        let orphan_proc = h
            .add_root("orph", HierarchyLevel::Procedure, attrs(0))
            .unwrap();
        // Attaching a root works.
        let proc2 = h.add_root("p2", HierarchyLevel::Process, attrs(0)).unwrap();
        h.attach(proc2, other_task).unwrap();
        // Attaching it again (another parent) violates R2.
        let proc3 = h.add_root("p3", HierarchyLevel::Process, attrs(0)).unwrap();
        assert!(matches!(
            h.attach(proc3, other_task),
            Err(FcmError::AlreadyHasParent { .. })
        ));
        // R1: a procedure cannot be attached directly to a process.
        assert!(matches!(
            h.attach(proc3, orphan_proc),
            Err(FcmError::LevelMismatch { .. })
        ));
        // A child that already has a parent cannot be re-attached.
        let existing_child = h2.fcm(task).unwrap().children()[0];
        let p4 = h2.add_root("p4", HierarchyLevel::Task, attrs(0)).unwrap();
        let _ = p4;
        let t9 = h2.add_root("t9", HierarchyLevel::Task, attrs(0)).unwrap();
        assert!(h2.attach(t9, existing_child).is_err());
        h.verify().unwrap();
    }

    #[test]
    fn merge_siblings_combines_attributes_and_reparents_children() {
        let mut h = FcmHierarchy::new();
        let process = h.add_root("p", HierarchyLevel::Process, attrs(9)).unwrap();
        let t1 = h.add_child(process, "t1", attrs(4)).unwrap();
        let t2 = h.add_child(process, "t2", attrs(7)).unwrap();
        let c1 = h.add_child(t1, "c1", attrs(0)).unwrap();
        let c2 = h.add_child(t2, "c2", attrs(0)).unwrap();
        let merged = h.merge_siblings(t1, t2, "t12").unwrap();
        assert_eq!(
            h.fcm(merged).unwrap().attributes().criticality,
            Criticality(7)
        );
        assert_eq!(h.fcm(merged).unwrap().parent(), Some(process));
        assert_eq!(h.fcm(c1).unwrap().parent(), Some(merged));
        assert_eq!(h.fcm(c2).unwrap().parent(), Some(merged));
        // Old tasks are gone.
        assert!(h.fcm(t1).is_err());
        assert!(h.fcm(t2).is_err());
        assert_eq!(h.fcm(process).unwrap().children(), &[merged]);
        h.verify().unwrap();
    }

    #[test]
    fn r3_merge_rejects_non_siblings() {
        let mut h = FcmHierarchy::new();
        let p1 = h.add_root("p1", HierarchyLevel::Process, attrs(0)).unwrap();
        let p2 = h.add_root("p2", HierarchyLevel::Process, attrs(0)).unwrap();
        let t1 = h.add_child(p1, "t1", attrs(0)).unwrap();
        let t2 = h.add_child(p2, "t2", attrs(0)).unwrap();
        assert!(matches!(
            h.merge_siblings(t1, t2, "x"),
            Err(FcmError::NotSiblings { .. })
        ));
        // Different levels are never siblings.
        assert!(h.merge_siblings(p1, t1, "y").is_err());
        // Self-merge is nothing to compose.
        assert!(matches!(
            h.merge_siblings(t1, t1, "z"),
            Err(FcmError::NothingToCompose)
        ));
    }

    #[test]
    fn two_roots_at_same_level_are_siblings() {
        let mut h = FcmHierarchy::new();
        let p1 = h.add_root("p1", HierarchyLevel::Process, attrs(2)).unwrap();
        let p2 = h.add_root("p2", HierarchyLevel::Process, attrs(3)).unwrap();
        assert!(h.are_siblings(p1, p2).unwrap());
        let merged = h.merge_siblings(p1, p2, "p12").unwrap();
        assert_eq!(h.fcm(merged).unwrap().parent(), None);
        h.verify().unwrap();
    }

    #[test]
    fn r4_integrate_across_merges_parents_first() {
        let mut h = FcmHierarchy::new();
        let p1 = h.add_root("p1", HierarchyLevel::Process, attrs(1)).unwrap();
        let p2 = h.add_root("p2", HierarchyLevel::Process, attrs(2)).unwrap();
        let t1 = h.add_child(p1, "t1", attrs(0)).unwrap();
        let t2 = h.add_child(p2, "t2", attrs(0)).unwrap();
        let t3 = h.add_child(p2, "t3", attrs(0)).unwrap();
        let merged = h.integrate_across(t1, t2, "t12").unwrap();
        // The parents were merged into one process FCM.
        let parent = h.fcm(merged).unwrap().parent().unwrap();
        assert!(h.fcm(p1).is_err());
        assert!(h.fcm(p2).is_err());
        // t3 moved under the merged parent too ("all tasks of the two
        // parent processes can be combined into one parent FCM").
        assert_eq!(h.fcm(t3).unwrap().parent(), Some(parent));
        let mut kids = h.fcm(parent).unwrap().children().to_vec();
        kids.sort();
        let mut expect = vec![t3, merged];
        expect.sort();
        assert_eq!(kids, expect);
        h.verify().unwrap();
    }

    #[test]
    fn integrate_across_same_parent_degenerates_to_merge() {
        let (mut h, _, task, a, b) = small();
        let merged = h.integrate_across(a, b, "ab").unwrap();
        assert_eq!(h.fcm(merged).unwrap().parent(), Some(task));
        h.verify().unwrap();
    }

    #[test]
    fn integrate_across_root_and_child_is_rejected() {
        let mut h = FcmHierarchy::new();
        let p = h.add_root("p", HierarchyLevel::Process, attrs(0)).unwrap();
        let t = h.add_child(p, "t", attrs(0)).unwrap();
        let lone = h.add_root("lone", HierarchyLevel::Task, attrs(0)).unwrap();
        assert!(matches!(
            h.integrate_across(t, lone, "x"),
            Err(FcmError::NotSiblings { .. })
        ));
    }

    #[test]
    fn duplicate_into_deep_copies_the_subtree() {
        let mut h = FcmHierarchy::new();
        let p = h.add_root("p", HierarchyLevel::Process, attrs(0)).unwrap();
        let t1 = h.add_child(p, "t1", attrs(0)).unwrap();
        let t2 = h.add_child(p, "t2", attrs(0)).unwrap();
        let util = h.add_child(t1, "util", attrs(1)).unwrap();
        // t2 needs util too; R2 forbids sharing, so duplicate.
        let copy = h.duplicate_into(util, t2).unwrap();
        assert_ne!(copy, util);
        assert_eq!(h.fcm(copy).unwrap().parent(), Some(t2));
        assert_eq!(h.fcm(copy).unwrap().name(), "util'");
        assert_eq!(h.fcm(util).unwrap().parent(), Some(t1));
        assert_eq!(
            h.fcm(copy).unwrap().attributes().criticality,
            Criticality(1)
        );
        h.verify().unwrap();
    }

    #[test]
    fn duplicate_into_checks_r1() {
        let mut h = FcmHierarchy::new();
        let p = h.add_root("p", HierarchyLevel::Process, attrs(0)).unwrap();
        let t = h.add_child(p, "t", attrs(0)).unwrap();
        // A task cannot be duplicated under another task.
        assert!(matches!(
            h.duplicate_into(t, t),
            Err(FcmError::LevelMismatch { .. })
        ));
    }

    #[test]
    fn replicas_cannot_merge() {
        let mut h = FcmHierarchy::new();
        let p = h.add_root("p", HierarchyLevel::Process, attrs(0)).unwrap();
        let r1 = h.add_child(p, "r1", attrs(0)).unwrap();
        let r2 = h.add_child(p, "r2", attrs(0)).unwrap();
        let group = h.mark_replicas(&[r1, r2]).unwrap();
        assert_eq!(h.fcm(r1).unwrap().replica_group(), Some(group));
        assert!(matches!(
            h.merge_siblings(r1, r2, "x"),
            Err(FcmError::ReplicaConflict { .. })
        ));
        // A single FCM is not a replica set.
        assert!(h.mark_replicas(&[r1]).is_err());
    }

    #[test]
    fn r5_retest_is_parent_and_sibling_interfaces_only() {
        let mut h = FcmHierarchy::new();
        let p = h.add_root("p", HierarchyLevel::Process, attrs(0)).unwrap();
        let t1 = h.add_child(p, "t1", attrs(0)).unwrap();
        let t2 = h.add_child(p, "t2", attrs(0)).unwrap();
        let c = h.add_child(t1, "c", attrs(0)).unwrap();
        let d = h.add_child(t1, "d", attrs(0)).unwrap();
        let rt = h.retest_set(c).unwrap();
        assert_eq!(rt.parent, Some(t1));
        assert_eq!(rt.sibling_interfaces, vec![d]);
        assert_eq!(rt.size(), 3);
        // Naive recertification touches the whole tree.
        let naive = h.naive_retest_set(c).unwrap();
        assert_eq!(naive.len(), 5);
        assert!(naive.contains(&t2));
        // Root modification has no parent to retest.
        let rt_root = h.retest_set(p).unwrap();
        assert_eq!(rt_root.parent, None);
        assert!(rt_root.sibling_interfaces.is_empty());
    }

    #[test]
    fn descendants_bfs_order() {
        let (h, process, task, a, b) = small();
        assert_eq!(h.descendants(process).unwrap(), vec![process, task, a, b]);
        assert_eq!(h.descendants(a).unwrap(), vec![a]);
    }

    #[test]
    fn iterators_filter_dead_fcms() {
        let (mut h, _, _, a, b) = small();
        let merged = h.merge_siblings(a, b, "ab").unwrap();
        assert_eq!(h.len(), 3);
        assert!(h.iter().all(|f| f.id() != a && f.id() != b));
        assert_eq!(h.at_level(HierarchyLevel::Procedure).count(), 1);
        assert_eq!(h.roots().count(), 1);
        assert!(h.fcm(merged).is_ok());
        assert!(!h.is_empty());
    }

    #[test]
    fn attributes_mut_updates_in_place() {
        let (mut h, _, task, _, _) = small();
        h.attributes_mut(task).unwrap().fault_tolerance = FaultTolerance::TMR;
        assert_eq!(
            h.fcm(task).unwrap().attributes().fault_tolerance,
            FaultTolerance::TMR
        );
        assert!(h.attributes_mut(FcmId(99)).is_err());
    }

    #[test]
    fn unknown_and_dead_ids_error() {
        let (mut h, _, _, a, b) = small();
        assert!(h.fcm(FcmId(42)).is_err());
        h.merge_siblings(a, b, "ab").unwrap();
        assert!(matches!(h.fcm(a), Err(FcmError::UnknownFcm { .. })));
        assert!(h.retest_set(a).is_err());
        assert!(h.descendants(b).is_err());
    }

    #[test]
    fn display_of_id() {
        assert_eq!(FcmId(7).to_string(), "f7");
    }
}
