//! The paper's SW-graph condensation heuristics (§5.4).
//!
//! "Given a graph with directed weighted edges, group the nodes into sets
//! such that the sum of weights between the sets is minimized.
//! Deterministic solutions to this problem do not exist, or are
//! analytically intractable. Some useful heuristics we have investigated
//! include:" — H1, H2 and H3, all implemented here together with the
//! variations the paper sketches. Every heuristic returns a *validated*
//! [`Clustering`] (replica anti-affinity and per-cluster schedulability
//! hold), or [`AllocError::NoFeasibleClustering`].
//!
//! All merge paths run through the [`crate::pipeline`] condensation
//! engine: H1 and its pair-all variation rank pairs straight off the
//! incrementally maintained Eq. 4 influence matrix ([`pipeline::H1Greedy`]
//! and [`pipeline::H1PairAll`]); H2, H2′ and H3 compute their partition
//! (min cut / importance spheres) and then replay it through the pipeline
//! ([`pipeline::PartitionReplay`]). [`h1_rebuild`] keeps the original
//! rebuild-per-ranking implementation as the performance baseline the
//! benches compare against. Wall time per heuristic is recorded in the
//! global [`fcm_substrate::telemetry`] under `alloc.*` stages.

use fcm_core::ImportanceWeights;
use fcm_graph::algo::{recursive_min_cut, BisectPolicy};
use fcm_graph::NodeIdx;
use fcm_substrate::telemetry;

use crate::cluster::Clustering;
use crate::error::AllocError;
use crate::pipeline::{self, CondensePipeline};
use crate::sw::SwGraph;

/// Heuristic **H1**: "Combine the two nodes with the highest value of
/// mutual influence … Repeat for the next higher value of mutual
/// influence, and continue this process until the required number of
/// nodes is obtained."
///
/// Pairs whose combination violates a constraint (replica conflict,
/// unschedulable union) are skipped, exactly as the worked example skips
/// combining replicas; zero-influence pairs are considered last so the
/// target count can always be reached when a feasible clustering exists.
///
/// # Errors
///
/// * [`AllocError::NoFeasibleClustering`] — no constraint-respecting merge
///   can reduce the cluster count further;
/// * [`AllocError::Graph`] — `target` is zero or exceeds the node count.
pub fn h1(g: &SwGraph, target: usize) -> Result<Clustering, AllocError> {
    telemetry::global().time("alloc.h1", || {
        check_target(g, target)?;
        let mut pipe = CondensePipeline::new(g);
        pipe.run_policy(target, &mut pipeline::H1Greedy)?;
        pipe.into_clustering()
    })
}

/// The pre-pipeline H1 implementation, which rebuilds the full Eq. 4
/// condensation for every pair ranking (O(E + k²) per *ranking* inside
/// the merge loop, versus the pipeline's one incremental row/column
/// update per *merge*). Kept public as the measured baseline for the
/// `e1_heuristics` bench; produces exactly the same clustering as
/// [`h1`].
///
/// # Errors
///
/// As for [`h1`].
pub fn h1_rebuild(g: &SwGraph, target: usize) -> Result<Clustering, AllocError> {
    telemetry::global().time("alloc.h1_rebuild", || {
        check_target(g, target)?;
        let mut clustering = Clustering::singletons(g);
        while clustering.len() > target {
            clustering =
                merge_best_pair(g, &clustering).map_err(|_| AllocError::NoFeasibleClustering {
                    requested: target,
                    reached: clustering.len(),
                })?;
        }
        Ok(clustering)
    })
}

/// The H1 variation: "pair all nodes based on influence values and then
/// repeat the process as needed" — each round greedily matches disjoint
/// cluster pairs in descending mutual influence and merges every match.
///
/// # Errors
///
/// As for [`h1`].
pub fn h1_pair_all(g: &SwGraph, target: usize) -> Result<Clustering, AllocError> {
    telemetry::global().time("alloc.h1_pair_all", || {
        check_target(g, target)?;
        let mut pipe = CondensePipeline::new(g);
        pipe.run_policy(target, &mut pipeline::H1PairAll)?;
        pipe.into_clustering()
    })
}

/// Heuristic **H2**: "Find the min-cut of the graph. Divide the graph into
/// two parts along the cut. Find the min-cut in each half and repeat the
/// process, until the requisite number of components has been generated."
///
/// The raw cut ignores the combination constraints, so invalid groups are
/// *repaired* afterwards by relocating violating nodes to the feasible
/// group they influence most.
///
/// # Errors
///
/// * [`AllocError::Graph`] — invalid `target`;
/// * [`AllocError::NoFeasibleClustering`] — repair failed.
pub fn h2(g: &SwGraph, target: usize, policy: BisectPolicy) -> Result<Clustering, AllocError> {
    telemetry::global().time("alloc.h2", || {
        check_target(g, target)?;
        let groups = recursive_min_cut(g, target, policy)?;
        let repaired = repair(g, groups, target)?;
        replay_through_pipeline(g, repaired)
    })
}

/// Heuristic **H3**: "For n HW nodes, identify the n most important SW
/// nodes, and define their 'spheres of influence'. Map each group onto a
/// different HW node." Seeds are the `target` most important nodes;
/// every other node joins the feasible sphere it influences most
/// (falling back to any feasible sphere when it influences none).
///
/// # Errors
///
/// * [`AllocError::Graph`] — invalid `target`;
/// * [`AllocError::NoFeasibleClustering`] — some node fits no sphere.
pub fn h3(
    g: &SwGraph,
    target: usize,
    weights: &ImportanceWeights,
) -> Result<Clustering, AllocError> {
    telemetry::global().time("alloc.h3", || h3_inner(g, target, weights))
}

fn h3_inner(
    g: &SwGraph,
    target: usize,
    weights: &ImportanceWeights,
) -> Result<Clustering, AllocError> {
    check_target(g, target)?;
    let mut order: Vec<NodeIdx> = g.node_indices().collect();
    order.sort_by(|&a, &b| {
        let ia = g.node(a).expect("valid index").importance(weights);
        let ib = g.node(b).expect("valid index").importance(weights);
        ib.partial_cmp(&ia)
            .expect("importance is finite")
            .then(a.cmp(&b))
    });
    let (seeds, rest) = order.split_at(target);
    let mut groups: Vec<Vec<NodeIdx>> = seeds.iter().map(|&s| vec![s]).collect();

    // Assign the most strongly attached nodes first.
    let mut remaining: Vec<NodeIdx> = rest.to_vec();
    while !remaining.is_empty() {
        // (node position, group, attachment influence), best first.
        let mut best: Option<(usize, usize, f64)> = None;
        for (pos, &v) in remaining.iter().enumerate() {
            for (gi, group) in groups.iter().enumerate() {
                if !accepts(g, group, v) {
                    continue;
                }
                let attach: f64 = group.iter().map(|&m| g.mutual_weight(v, m)).sum();
                let better = best.is_none_or(|(_, _, b)| attach > b);
                if better {
                    best = Some((pos, gi, attach));
                }
            }
        }
        match best {
            Some((pos, gi, _)) => {
                let v = remaining.swap_remove(pos);
                groups[gi].push(v);
            }
            None => {
                return Err(AllocError::NoFeasibleClustering {
                    requested: target,
                    reached: groups.len() + remaining.len(),
                })
            }
        }
    }
    let spheres = Clustering::new(g, groups)?;
    replay_through_pipeline(g, spheres)
}

/// The H2 source–target variation ("cut the graph using source and
/// target nodes"): each bisection separates the part's most important
/// node from its least important node via an Edmonds–Karp s–t min cut,
/// so the cheapest boundary between the importance extremes is severed.
/// Invalid groups are repaired as in [`h2`].
///
/// # Errors
///
/// As for [`h2`].
pub fn h2_source_target(
    g: &SwGraph,
    target: usize,
    weights: &ImportanceWeights,
) -> Result<Clustering, AllocError> {
    telemetry::global().time("alloc.h2_st", || h2_source_target_inner(g, target, weights))
}

fn h2_source_target_inner(
    g: &SwGraph,
    target: usize,
    weights: &ImportanceWeights,
) -> Result<Clustering, AllocError> {
    use fcm_graph::algo::{induced_subgraph, st_min_cut};
    check_target(g, target)?;
    let mut groups: Vec<Vec<NodeIdx>> = vec![g.node_indices().collect()];
    while groups.len() < target {
        // Split the largest part with at least two nodes.
        let (gi, _) = groups
            .iter()
            .enumerate()
            .filter(|(_, grp)| grp.len() >= 2)
            .max_by_key(|(_, grp)| grp.len())
            .expect("target <= n guarantees a splittable group");
        let group = groups.swap_remove(gi);
        let (sub, back) = induced_subgraph(g, &group);
        // Source: most important; target: least important (sub indices).
        let mut order: Vec<usize> = (0..group.len()).collect();
        order.sort_by(|&a, &b| {
            let ia = g.node(back[a]).expect("member exists").importance(weights);
            let ib = g.node(back[b]).expect("member exists").importance(weights);
            ib.partial_cmp(&ia)
                .expect("finite importance")
                .then(a.cmp(&b))
        });
        let (s, t) = (
            NodeIdx(order[0]),
            NodeIdx(*order.last().expect("non-empty")),
        );
        let cut = st_min_cut(&sub, s, t)?;
        let to_orig = |side: &[NodeIdx]| side.iter().map(|&i| back[i.index()]).collect::<Vec<_>>();
        groups.push(to_orig(&cut.side_a));
        groups.push(to_orig(&cut.side_b));
    }
    let repaired = repair(g, groups, target)?;
    replay_through_pipeline(g, repaired)
}

/// Reconstructs `target` by replaying it as pairwise merges through the
/// condensation pipeline, so every heuristic's merge path exercises the
/// incremental Eq. 4 update. Merging two subsets of a feasible cluster is
/// always feasible, so the replay never gets stuck; the result is the
/// same clustering (same groups, same listing order, re-validated).
fn replay_through_pipeline(g: &SwGraph, target: Clustering) -> Result<Clustering, AllocError> {
    let mut pipe = CondensePipeline::new(g);
    let mut policy = pipeline::PartitionReplay::toward(g.node_count(), target.clusters());
    pipe.run_policy(target.len(), &mut policy)?;
    pipe.reorder_to(target.clusters())?;
    pipe.into_clustering()
}

/// One H1 step: merge the highest-mutual-influence feasible pair.
fn merge_best_pair(g: &SwGraph, clustering: &Clustering) -> Result<Clustering, AllocError> {
    for (_, i, j) in ranked_pairs(g, clustering) {
        if clustering.can_merge(g, i, j) {
            return clustering.merge_clusters(g, i, j);
        }
    }
    Err(AllocError::NoFeasibleClustering {
        requested: clustering.len().saturating_sub(1),
        reached: clustering.len(),
    })
}

/// All cluster pairs ranked by descending mutual influence in the
/// condensed graph (zero-influence pairs included, last).
fn ranked_pairs(g: &SwGraph, clustering: &Clustering) -> Vec<(f64, usize, usize)> {
    let cond = clustering.condensed(g);
    let k = clustering.len();
    let mut pairs = Vec::with_capacity(k * (k - 1) / 2);
    for i in 0..k {
        for j in (i + 1)..k {
            pairs.push((cond.graph.mutual_weight(NodeIdx(i), NodeIdx(j)), i, j));
        }
    }
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite influence"));
    pairs
}

/// Whether `group ∪ {v}` satisfies the combination constraints.
fn accepts(g: &SwGraph, group: &[NodeIdx], v: NodeIdx) -> bool {
    let mut merged = group.to_vec();
    merged.push(v);
    Clustering::new(g, one_group_partition(g, &merged)).is_ok()
}

/// Builds a partition where `merged` is one group and every other node is
/// a singleton (so `Clustering::new` validates just the group of
/// interest).
fn one_group_partition(g: &SwGraph, merged: &[NodeIdx]) -> Vec<Vec<NodeIdx>> {
    let mut groups = vec![merged.to_vec()];
    let inside: Vec<bool> = {
        let mut v = vec![false; g.node_count()];
        for &m in merged {
            v[m.index()] = true;
        }
        v
    };
    groups.extend(
        g.node_indices()
            .filter(|n| !inside[n.index()])
            .map(|n| vec![n]),
    );
    groups
}

/// Moves constraint-violating nodes between groups until all groups are
/// valid (bounded number of passes).
fn repair(
    g: &SwGraph,
    mut groups: Vec<Vec<NodeIdx>>,
    target: usize,
) -> Result<Clustering, AllocError> {
    let budget = g.node_count() * target.max(1) + 8;
    for _ in 0..budget {
        match Clustering::new(g, groups.clone()) {
            Ok(c) => return Ok(c),
            Err(_) => {
                if !repair_step(g, &mut groups) {
                    break;
                }
            }
        }
    }
    Err(AllocError::NoFeasibleClustering {
        requested: target,
        reached: groups.len(),
    })
}

/// Relocates one violating node; returns `false` when stuck.
fn repair_step(g: &SwGraph, groups: &mut [Vec<NodeIdx>]) -> bool {
    // Find an invalid group and the node to evict: prefer a replica
    // involved in a conflict, else the most timing-constrained node.
    let invalid = groups
        .iter()
        .position(|grp| Clustering::new(g, one_group_partition(g, grp)).is_err());
    let Some(gi) = invalid else { return false };
    // Candidate eviction order: replicas first, then by timing density.
    let mut candidates: Vec<NodeIdx> = groups[gi].clone();
    candidates.sort_by(|&a, &b| {
        let na = g.node(a).expect("valid index");
        let nb = g.node(b).expect("valid index");
        let ra = na.replica_group.is_some();
        let rb = nb.replica_group.is_some();
        rb.cmp(&ra).then(
            nb.attributes
                .timing
                .map_or(0.0, |t| t.density())
                .partial_cmp(&na.attributes.timing.map_or(0.0, |t| t.density()))
                .expect("finite density"),
        )
    });
    // Pass 1: prefer an eviction that makes the source group valid.
    // Pass 2: accept any eviction into a valid target — shrinking an
    // invalid group by one is still progress (a group of k same-module
    // replicas needs k−1 evictions), and a valid target never becomes
    // invalid (`accepts` guarantees it), so the process terminates.
    for require_source_valid in [true, false] {
        for &v in &candidates {
            let without: Vec<NodeIdx> = groups[gi].iter().copied().filter(|&n| n != v).collect();
            if without.is_empty() {
                continue;
            }
            if require_source_valid && Clustering::new(g, one_group_partition(g, &without)).is_err()
            {
                continue;
            }
            // Some other group must accept it; pick max attachment.
            let mut best: Option<(usize, f64)> = None;
            for (oj, other) in groups.iter().enumerate() {
                if oj == gi || !accepts(g, other, v) {
                    continue;
                }
                let attach: f64 = other.iter().map(|&m| g.mutual_weight(v, m)).sum();
                if best.is_none_or(|(_, b)| attach > b) {
                    best = Some((oj, attach));
                }
            }
            if let Some((oj, _)) = best {
                groups[gi].retain(|&n| n != v);
                groups[oj].push(v);
                return true;
            }
        }
    }
    false
}

fn check_target(g: &SwGraph, target: usize) -> Result<(), AllocError> {
    if target == 0 || target > g.node_count() {
        return Err(AllocError::Graph(fcm_graph::GraphError::TooManyParts {
            requested: target,
            nodes: g.node_count(),
        }));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw::SwGraphBuilder;
    use fcm_core::{AttributeSet, FaultTolerance};

    fn attrs(c: u32) -> AttributeSet {
        AttributeSet::default().with_criticality(c)
    }

    /// Two tight pairs plus a loose tail: (a,b) 1.0 mutual, (c,d) 0.8,
    /// e weakly attached to d.
    fn pairs_graph() -> SwGraph {
        let mut b = SwGraphBuilder::new();
        let a = b.add_process("pa", attrs(1));
        let bb = b.add_process("pb", attrs(2));
        let c = b.add_process("pc", attrs(3));
        let d = b.add_process("pd", attrs(4));
        let e = b.add_process("pe", attrs(5));
        b.add_influence(a, bb, 0.6).unwrap();
        b.add_influence(bb, a, 0.4).unwrap();
        b.add_influence(c, d, 0.5).unwrap();
        b.add_influence(d, c, 0.3).unwrap();
        b.add_influence(d, e, 0.1).unwrap();
        b.build()
    }

    #[test]
    fn h1_combines_strongest_pairs_first() {
        let g = pairs_graph();
        let c = h1(&g, 3).unwrap();
        let mut names: Vec<String> = (0..3).map(|i| c.cluster_name(&g, i)).collect();
        names.sort();
        assert_eq!(names, vec!["pa,b", "pc,d", "pe"]);
    }

    #[test]
    fn h1_matches_the_rebuild_baseline_exactly() {
        let g = pairs_graph();
        for target in 1..=5 {
            let incremental = h1(&g, target);
            let rebuilt = h1_rebuild(&g, target);
            assert_eq!(incremental, rebuilt, "target {target}");
        }
    }

    #[test]
    fn h1_respects_replica_anti_affinity() {
        let mut b = SwGraphBuilder::new();
        let r1 = b.add_process("p1a", attrs(9));
        let r2 = b.add_process("p1b", attrs(9));
        let x = b.add_process("p2", attrs(1));
        b.mark_replicas(&[r1, r2]).unwrap();
        b.add_influence(r1, x, 0.5).unwrap();
        b.add_influence(r2, x, 0.5).unwrap();
        let g = b.build();
        let c = h1(&g, 2).unwrap();
        // The replicas were never combined with each other.
        for i in 0..2 {
            let cluster = &c.clusters()[i];
            assert!(!(cluster.contains(&r1) && cluster.contains(&r2)));
        }
        // Reaching 1 cluster is impossible.
        assert!(matches!(
            h1(&g, 1),
            Err(AllocError::NoFeasibleClustering { .. })
        ));
    }

    #[test]
    fn h1_reaches_target_even_without_influence() {
        let mut b = SwGraphBuilder::new();
        for i in 0..4 {
            b.add_process(format!("p{i}"), attrs(i));
        }
        let g = b.build();
        let c = h1(&g, 2).unwrap();
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn h1_target_validation() {
        let g = pairs_graph();
        assert!(h1(&g, 0).is_err());
        assert!(h1(&g, 6).is_err());
        assert_eq!(h1(&g, 5).unwrap().len(), 5);
    }

    #[test]
    fn h1_pair_all_matches_disjoint_pairs_per_round() {
        let g = pairs_graph();
        let c = h1_pair_all(&g, 3).unwrap();
        assert_eq!(c.len(), 3);
        let mut names: Vec<String> = (0..3).map(|i| c.cluster_name(&g, i)).collect();
        names.sort();
        assert_eq!(names, vec!["pa,b", "pc,d", "pe"]);
    }

    #[test]
    fn h2_recovers_cluster_structure() {
        let g = pairs_graph();
        for policy in [BisectPolicy::LargestPart, BisectPolicy::HeaviestPart] {
            let c = h2(&g, 3, policy).unwrap();
            assert_eq!(c.len(), 3, "{policy:?}");
        }
        // Under the largest-part policy the tight pair (pa,pb) survives:
        // the 3-node component is always the one cut further.
        let c = h2(&g, 3, BisectPolicy::LargestPart).unwrap();
        let has_ab = (0..3).any(|i| c.cluster_name(&g, i) == "pa,b");
        assert!(has_ab, "{:?}", c.clusters());
    }

    #[test]
    fn h2_repair_separates_replicas() {
        // Replicas strongly influence a shared sink, so the min cut would
        // happily group them; repair must pull them apart.
        let mut b = SwGraphBuilder::new();
        let r1 = b.add_process("p1a", attrs(9));
        let r2 = b.add_process("p1b", attrs(9));
        let x = b.add_process("p2", attrs(1));
        let y = b.add_process("p3", attrs(1));
        b.mark_replicas(&[r1, r2]).unwrap();
        b.add_influence(r1, x, 0.9).unwrap();
        b.add_influence(r2, x, 0.9).unwrap();
        b.add_influence(x, y, 0.05).unwrap();
        let g = b.build();
        let c = h2(&g, 2, BisectPolicy::LargestPart).unwrap();
        for cluster in c.clusters() {
            assert!(!(cluster.contains(&r1) && cluster.contains(&r2)));
        }
    }

    #[test]
    fn h2_source_target_separates_importance_extremes() {
        let g = pairs_graph(); // criticalities 1..5
        let c = h2_source_target(&g, 2, &ImportanceWeights::default()).unwrap();
        assert_eq!(c.len(), 2);
        // The most important (pe, crit 5) and least important (pa, crit 1)
        // nodes end up in different clusters.
        let pa = NodeIdx(0);
        let pe = NodeIdx(4);
        let cluster_of = |n: NodeIdx| {
            c.clusters()
                .iter()
                .position(|grp| grp.contains(&n))
                .expect("node is clustered")
        };
        assert_ne!(cluster_of(pa), cluster_of(pe));
    }

    #[test]
    fn h2_source_target_respects_constraints() {
        let mut b = SwGraphBuilder::new();
        let r1 = b.add_process("p1a", attrs(9));
        let r2 = b.add_process("p1b", attrs(9));
        let x = b.add_process("p2", attrs(1));
        b.mark_replicas(&[r1, r2]).unwrap();
        b.add_influence(r1, x, 0.5).unwrap();
        let g = b.build();
        let c = h2_source_target(&g, 2, &ImportanceWeights::default()).unwrap();
        for cluster in c.clusters() {
            assert!(!(cluster.contains(&r1) && cluster.contains(&r2)));
        }
        assert!(h2_source_target(&g, 1, &ImportanceWeights::default()).is_err());
    }

    #[test]
    fn h3_seeds_are_the_most_important_nodes() {
        let mut b = SwGraphBuilder::new();
        let hi1 = b.add_process("pA", attrs(10));
        let hi2 = b.add_process("pB", attrs(9));
        let lo1 = b.add_process("pC", attrs(1));
        let lo2 = b.add_process("pD", attrs(1));
        b.add_influence(lo1, hi1, 0.6).unwrap();
        b.add_influence(lo2, hi2, 0.6).unwrap();
        let g = b.build();
        let c = h3(&g, 2, &ImportanceWeights::default()).unwrap();
        assert_eq!(c.len(), 2);
        // Each low node joined the sphere of the seed it influences.
        for cluster in c.clusters() {
            if cluster.contains(&hi1) {
                assert!(cluster.contains(&lo1));
            }
            if cluster.contains(&hi2) {
                assert!(cluster.contains(&lo2));
            }
        }
    }

    #[test]
    fn h3_unattached_nodes_fall_back_to_any_feasible_sphere() {
        let mut b = SwGraphBuilder::new();
        b.add_process("pA", attrs(10));
        b.add_process("pB", attrs(9));
        b.add_process("pC", attrs(0)); // influences nobody
        let g = b.build();
        let c = h3(&g, 2, &ImportanceWeights::default()).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.clusters().iter().map(Vec::len).sum::<usize>(), 3);
    }

    #[test]
    fn heuristics_never_violate_schedulability() {
        // Three heavy processes that pairwise conflict: at most one per
        // cluster, so target 3 is the only feasible count.
        let mut b = SwGraphBuilder::new();
        let x = b.add_process("px", attrs(1).with_timing(0, 6, 4));
        let y = b.add_process("py", attrs(2).with_timing(0, 6, 4));
        let z = b.add_process("pz", attrs(3).with_timing(0, 6, 4));
        b.add_influence(x, y, 0.9).unwrap();
        b.add_influence(y, z, 0.9).unwrap();
        let g = b.build();
        assert!(matches!(
            h1(&g, 2),
            Err(AllocError::NoFeasibleClustering { .. })
        ));
        assert_eq!(h1(&g, 3).unwrap().len(), 3);
        assert!(h2(&g, 2, BisectPolicy::LargestPart).is_err());
        assert!(h3(&g, 2, &ImportanceWeights::default()).is_err());
    }

    #[test]
    fn replicated_graph_expands_then_clusters() {
        use crate::replication::expand_replicas;
        let mut b = SwGraphBuilder::new();
        let p1 = b.add_process("p1", attrs(10).with_fault_tolerance(FaultTolerance::TMR));
        let p2 = b.add_process("p2", attrs(2));
        b.add_influence(p1, p2, 0.5).unwrap();
        let ex = expand_replicas(&b.build());
        // 4 nodes (3 replicas + p2) into 3 clusters: p2 joins one replica.
        let c = h1(&ex.graph, 3).unwrap();
        assert_eq!(c.len(), 3);
        let sizes: Vec<usize> = {
            let mut s: Vec<usize> = c.clusters().iter().map(Vec::len).collect();
            s.sort();
            s
        };
        assert_eq!(sizes, vec![1, 1, 2]);
    }
}
