//! Validated clusterings of the SW graph (paper §5.2).
//!
//! "The process of combining multiple SW nodes into clusters to be
//! collocated on a processor involves several considerations": combined
//! attributes and importance, recomputed influence on induced neighbours
//! (Eq. 4), replica anti-affinity ("two nodes connected by an edge of
//! weight of 0 cannot be combined"), and schedulability ("the processes in
//! the cluster must all be schedulable").

use std::collections::BTreeMap;

use fcm_core::{AttributeSet, CompositionKind, ImportanceWeights};
use fcm_graph::{condense, CombineRule, Condensation, NodeIdx};
use fcm_sched::{edf, Job, JobId, JobSet};

use crate::error::AllocError;
use crate::sw::{SwEdge, SwGraph};

/// A partition of the SW graph's nodes into clusters, validated against
/// the paper's combination constraints.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Clustering {
    groups: Vec<Vec<NodeIdx>>,
}

impl Clustering {
    /// Creates a validated clustering.
    ///
    /// # Errors
    ///
    /// * [`AllocError::Graph`] — `groups` is not a partition of the node
    ///   set (checked via the condensation machinery);
    /// * [`AllocError::ReplicaConflict`] — a cluster contains two replicas
    ///   of one module;
    /// * [`AllocError::Unschedulable`] — a cluster's merged timing
    ///   constraints are not EDF-schedulable on one processor.
    pub fn new(g: &SwGraph, groups: Vec<Vec<NodeIdx>>) -> Result<Self, AllocError> {
        // Partition validity (reuses the condensation's checks).
        condense(g, &groups, CombineRule::Probabilistic)?;
        for group in &groups {
            if let Some((a, b)) = replica_conflict(g, group) {
                return Err(AllocError::ReplicaConflict { a, b });
            }
            if !is_schedulable(g, group) {
                return Err(AllocError::Unschedulable {
                    members: member_names(g, group),
                });
            }
        }
        let mut groups = groups;
        for group in &mut groups {
            group.sort();
        }
        Ok(Clustering { groups })
    }

    /// The trivial clustering: every node its own cluster.
    pub fn singletons(g: &SwGraph) -> Self {
        Clustering {
            groups: g.node_indices().map(|n| vec![n]).collect(),
        }
    }

    /// The clusters (each a sorted list of SW node indices).
    pub fn clusters(&self) -> &[Vec<NodeIdx>] {
        &self.groups
    }

    /// Number of clusters.
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no clusters.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Paper-style display name of cluster `i`, e.g. `"p1a,2a"` when all
    /// members share the `p` prefix, otherwise the names joined with `+`.
    pub fn cluster_name(&self, g: &SwGraph, i: usize) -> String {
        let names = member_names(g, &self.groups[i]);
        if names.len() > 1 && names.iter().all(|n| n.starts_with('p')) {
            let stripped: Vec<&str> = names.iter().map(|n| &n[1..]).collect();
            format!("p{}", stripped.join(","))
        } else {
            names.join("+")
        }
    }

    /// Combined attributes of cluster `i` (group combination: stringent
    /// criticality/security, summed throughput, enveloping timing).
    pub fn combined_attributes(&self, g: &SwGraph, i: usize) -> AttributeSet {
        AttributeSet::combine_all(
            self.groups[i]
                .iter()
                .map(|&n| &g.node(n).expect("validated member").attributes),
            CompositionKind::Group,
        )
        .unwrap_or_default()
    }

    /// Importance of cluster `i` under `weights` (importance of the
    /// combined attribute set).
    pub fn importance(&self, g: &SwGraph, i: usize, weights: &ImportanceWeights) -> f64 {
        self.combined_attributes(g, i).importance(weights)
    }

    /// The condensed influence graph: cluster-level nodes with Eq. 4
    /// combined influences ("internal influences disappear"; fan-in/out
    /// combines probabilistically). Replica links contribute zero weight;
    /// use [`Clustering::conflicting_pairs`] for the anti-affinity they
    /// encode.
    pub fn condensed(&self, g: &SwGraph) -> Condensation {
        condense(g, &self.groups, CombineRule::Probabilistic)
            .expect("clustering was validated as a partition")
    }

    /// Cluster pairs that host replicas of the same module and therefore
    /// "must be mapped onto different HW nodes". Pairs are `(i, j)` with
    /// `i < j`.
    pub fn conflicting_pairs(&self, g: &SwGraph) -> Vec<(usize, usize)> {
        // Map replica group -> clusters hosting one of its replicas.
        let mut hosts: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
        for (ci, group) in self.groups.iter().enumerate() {
            for &n in group {
                if let Some(rg) = g.node(n).expect("validated member").replica_group {
                    let entry = hosts.entry(rg).or_default();
                    if entry.last() != Some(&ci) {
                        entry.push(ci);
                    }
                }
            }
        }
        let mut pairs = Vec::new();
        for clusters in hosts.values() {
            for (k, &a) in clusters.iter().enumerate() {
                for &b in &clusters[k + 1..] {
                    let pair = (a.min(b), a.max(b));
                    if !pairs.contains(&pair) {
                        pairs.push(pair);
                    }
                }
            }
        }
        pairs.sort_unstable();
        pairs
    }

    /// Total influence crossing between clusters — the objective the
    /// paper's heuristics minimise.
    pub fn cross_influence(&self, g: &SwGraph) -> f64 {
        crate::sw::cross_partition_influence(g, &self.groups)
    }

    /// Merges clusters `i` and `j` into one, revalidating the result.
    ///
    /// # Errors
    ///
    /// * [`AllocError::UnknownSwNode`] — a cluster index out of range;
    /// * the validation errors of [`Clustering::new`].
    pub fn merge_clusters(
        &self,
        g: &SwGraph,
        i: usize,
        j: usize,
    ) -> Result<Clustering, AllocError> {
        if i >= self.groups.len() || j >= self.groups.len() || i == j {
            return Err(AllocError::UnknownSwNode { index: i.max(j) });
        }
        let mut groups = self.groups.clone();
        let (lo, hi) = (i.min(j), i.max(j));
        let moved = groups.remove(hi);
        groups[lo].extend(moved);
        Clustering::new(g, groups)
    }

    /// Whether merging clusters `i` and `j` would be valid (constraint
    /// check without constructing the merged clustering).
    pub fn can_merge(&self, g: &SwGraph, i: usize, j: usize) -> bool {
        if i >= self.groups.len() || j >= self.groups.len() || i == j {
            return false;
        }
        let mut merged = self.groups[i].clone();
        merged.extend_from_slice(&self.groups[j]);
        replica_conflict(g, &merged).is_none() && is_schedulable(g, &merged)
    }

    /// Mutual influence between clusters `i` and `j` in the condensed
    /// graph (sum of both directions) — H1's pairing criterion.
    pub fn mutual_influence(&self, g: &SwGraph, i: usize, j: usize) -> f64 {
        let c = self.condensed(g);
        c.graph.mutual_weight(NodeIdx(i), NodeIdx(j))
    }
}

/// First pair inside `group` that must stay separated (same-module
/// replicas or a shared anti-affinity group), by name.
pub(crate) fn replica_conflict(g: &SwGraph, group: &[NodeIdx]) -> Option<(String, String)> {
    for (k, &a) in group.iter().enumerate() {
        for &b in &group[k + 1..] {
            let na = g.node(a).expect("caller validates indices");
            let nb = g.node(b).expect("caller validates indices");
            if na.must_separate_from(nb) {
                return Some((na.name.clone(), nb.name.clone()));
            }
        }
    }
    // Explicit 0-weight links also forbid combination even without tags.
    for (k, &a) in group.iter().enumerate() {
        for &b in &group[k + 1..] {
            let linked = g
                .out_edges(a)
                .any(|(_, e)| e.to == b && matches!(e.weight, SwEdge::ReplicaLink))
                || g.out_edges(b)
                    .any(|(_, e)| e.to == a && matches!(e.weight, SwEdge::ReplicaLink));
            if linked {
                let na = g.node(a).expect("validated").name.clone();
                let nb = g.node(b).expect("validated").name.clone();
                return Some((na, nb));
            }
        }
    }
    None
}

/// Whether the merged timing constraints of `group` are EDF-schedulable
/// on one processor (members without timing constraints are unconstrained).
pub(crate) fn is_schedulable(g: &SwGraph, group: &[NodeIdx]) -> bool {
    let jobs: Vec<Job> = group
        .iter()
        .filter_map(|&n| {
            g.node(n)
                .expect("caller validates indices")
                .attributes
                .timing
                .map(|t| t.to_job(n.index() as JobId))
        })
        .collect();
    match JobSet::new(jobs) {
        Ok(set) => edf::feasible(&set),
        Err(_) => false,
    }
}

pub(crate) fn member_names(g: &SwGraph, group: &[NodeIdx]) -> Vec<String> {
    group
        .iter()
        .map(|&n| g.node(n).expect("validated member").name.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw::SwGraphBuilder;
    use fcm_core::AttributeSet;

    fn attrs(c: u32) -> AttributeSet {
        AttributeSet::default().with_criticality(c)
    }

    /// p0 -> p1 (0.7), p1 -> p0 (0.2), p1 -> p2 (0.3); p3a/p3b replicas.
    fn sample() -> (SwGraph, Vec<NodeIdx>) {
        let mut b = SwGraphBuilder::new();
        let p0 = b.add_process("p0", attrs(5).with_timing(0, 20, 4));
        let p1 = b.add_process("p1", attrs(3).with_timing(0, 20, 4));
        let p2 = b.add_process("p2", attrs(1));
        let p3a = b.add_process("p3a", attrs(8));
        let p3b = b.add_process("p3b", attrs(8));
        b.add_influence(p0, p1, 0.7).unwrap();
        b.add_influence(p1, p0, 0.2).unwrap();
        b.add_influence(p1, p2, 0.3).unwrap();
        b.mark_replicas(&[p3a, p3b]).unwrap();
        (b.build(), vec![p0, p1, p2, p3a, p3b])
    }

    #[test]
    fn singletons_cover_every_node() {
        let (g, _) = sample();
        let c = Clustering::singletons(&g);
        assert_eq!(c.len(), 5);
        assert!(!c.is_empty());
        assert_eq!(c.cross_influence(&g), 0.7 + 0.2 + 0.3);
    }

    #[test]
    fn valid_clustering_builds() {
        let (g, n) = sample();
        let c = Clustering::new(&g, vec![vec![n[0], n[1]], vec![n[2], n[3]], vec![n[4]]]).unwrap();
        assert_eq!(c.len(), 3);
        // Internal influence 0.7+0.2 vanished from the crossing sum.
        assert!((c.cross_influence(&g) - 0.3).abs() < 1e-12);
    }

    #[test]
    fn replica_conflict_is_rejected() {
        let (g, n) = sample();
        let err = Clustering::new(&g, vec![vec![n[0], n[1], n[2]], vec![n[3], n[4]]]).unwrap_err();
        assert!(matches!(err, AllocError::ReplicaConflict { .. }));
    }

    #[test]
    fn unschedulable_cluster_is_rejected() {
        let mut b = SwGraphBuilder::new();
        // Two processes whose triples cannot share a processor.
        let a = b.add_process("a", attrs(0).with_timing(0, 6, 4));
        let c = b.add_process("b", attrs(0).with_timing(0, 6, 4));
        let g = b.build();
        let err = Clustering::new(&g, vec![vec![a, c]]).unwrap_err();
        assert!(matches!(err, AllocError::Unschedulable { .. }));
        // Apart they are fine.
        assert!(Clustering::new(&g, vec![vec![a], vec![c]]).is_ok());
    }

    #[test]
    fn non_partition_is_rejected() {
        let (g, n) = sample();
        assert!(Clustering::new(&g, vec![vec![n[0]]]).is_err());
    }

    #[test]
    fn condensed_graph_applies_eq4() {
        let mut b = SwGraphBuilder::new();
        let x = b.add_process("x", attrs(0));
        let y = b.add_process("y", attrs(0));
        let t = b.add_process("t", attrs(0));
        b.add_influence(x, t, 0.7).unwrap();
        b.add_influence(y, t, 0.2).unwrap();
        let g = b.build();
        let c = Clustering::new(&g, vec![vec![x, y], vec![t]]).unwrap();
        let cond = c.condensed(&g);
        let w: f64 = *cond
            .graph
            .edge_weight_between(NodeIdx(0), NodeIdx(1))
            .unwrap();
        assert!((w - 0.76).abs() < 1e-12);
    }

    #[test]
    fn conflicting_pairs_track_split_replicas() {
        let (g, n) = sample();
        let c = Clustering::new(&g, vec![vec![n[0], n[3]], vec![n[1], n[4]], vec![n[2]]]).unwrap();
        assert_eq!(c.conflicting_pairs(&g), vec![(0, 1)]);
        // Merging the conflicting clusters is impossible.
        assert!(!c.can_merge(&g, 0, 1));
        assert!(c.merge_clusters(&g, 0, 1).is_err());
    }

    #[test]
    fn merge_clusters_revalidates_and_sorts() {
        let (g, n) = sample();
        let c = Clustering::singletons(&g);
        let merged = c.merge_clusters(&g, 0, 1).unwrap();
        assert_eq!(merged.len(), 4);
        assert!(merged.clusters().iter().any(|grp| grp == &vec![n[0], n[1]]));
        // Out-of-range and self merges error.
        assert!(c.merge_clusters(&g, 0, 9).is_err());
        assert!(c.merge_clusters(&g, 2, 2).is_err());
        assert!(!c.can_merge(&g, 2, 2));
    }

    #[test]
    fn anti_affinity_groups_are_enforced() {
        let mut b = SwGraphBuilder::new();
        let a = b.add_process("a", attrs(9));
        let c = b.add_process("b", attrs(8));
        b.forbid_colocation(&[a, c]).unwrap();
        let g = b.build();
        let err = Clustering::new(&g, vec![vec![a, c]]).unwrap_err();
        assert!(matches!(err, AllocError::ReplicaConflict { .. }));
        assert!(Clustering::new(&g, vec![vec![a], vec![c]]).is_ok());
    }

    #[test]
    fn combined_attributes_and_importance() {
        let (g, n) = sample();
        let c = Clustering::new(&g, vec![vec![n[0], n[1]], vec![n[2], n[3]], vec![n[4]]]).unwrap();
        let a = c.combined_attributes(&g, 0);
        assert_eq!(a.criticality.0, 5);
        assert_eq!(a.timing.unwrap().ct, 8);
        let w = ImportanceWeights::default();
        assert!(c.importance(&g, 1, &w) > c.importance(&g, 0, &w));
    }

    #[test]
    fn cluster_names_follow_paper_style() {
        let (g, n) = sample();
        let c = Clustering::new(
            &g,
            vec![vec![n[0], n[1]], vec![n[2]], vec![n[3]], vec![n[4]]],
        )
        .unwrap();
        assert_eq!(c.cluster_name(&g, 0), "p0,1");
        assert_eq!(c.cluster_name(&g, 1), "p2");
        // Non-p names join with '+'.
        let mut b = SwGraphBuilder::new();
        let x = b.add_process("nav", attrs(0));
        let y = b.add_process("disp", attrs(0));
        let g2 = b.build();
        let c2 = Clustering::new(&g2, vec![vec![x, y]]).unwrap();
        assert_eq!(c2.cluster_name(&g2, 0), "nav+disp");
    }

    #[test]
    fn mutual_influence_between_clusters() {
        let (g, n) = sample();
        let c = Clustering::singletons(&g);
        let m = c.mutual_influence(&g, n[0].index(), n[1].index());
        assert!((m - 0.9).abs() < 1e-12);
    }
}
