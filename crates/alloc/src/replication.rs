//! Replica expansion of the SW graph (paper §5.4, Fig. 4).
//!
//! "Based on the fault tolerance requirements and need for, say, threefold
//! replication, an equivalent graph of three SW nodes with identical
//! attributes and 0 edge weights is created; each of these SW nodes can
//! thereafter be treated independently. … Node p1 is replicated 3 times to
//! satisfy its fault tolerance requirements, and edges with neighbors are
//! also replicated."

use fcm_graph::NodeIdx;

use crate::sw::{SwEdge, SwGraph, SwNode};

/// The result of expanding fault-tolerance requirements into replicas.
#[derive(Debug, Clone)]
pub struct Expansion {
    /// The expanded graph (replicas tagged and linked with 0-weight edges).
    pub graph: SwGraph,
    /// For each node of the expanded graph, the originating node of the
    /// input graph.
    pub origin: Vec<NodeIdx>,
    /// For each node of the input graph, its replicas in the expanded
    /// graph (singleton for FT = 1 nodes).
    pub replicas_of: Vec<Vec<NodeIdx>>,
}

/// Replica-name suffixes, following the paper (`p1a`, `p1b`, `p1c`).
fn suffix(i: usize, total: u8) -> String {
    if total <= 1 {
        String::new()
    } else {
        char::from(b'a' + (i as u8)).to_string()
    }
}

/// Expands every node with fault-tolerance requirement `FT = k > 1` into
/// `k` replica nodes with identical attributes, 0-weight replica links
/// between them, and all influence edges duplicated per replica pair.
///
/// # Example
///
/// ```
/// use fcm_alloc::{replication::expand_replicas, sw::SwGraphBuilder};
/// use fcm_core::{AttributeSet, FaultTolerance};
///
/// let mut b = SwGraphBuilder::new();
/// let p1 = b.add_process(
///     "p1",
///     AttributeSet::default().with_fault_tolerance(FaultTolerance::TMR),
/// );
/// let p2 = b.add_process("p2", AttributeSet::default());
/// b.add_influence(p1, p2, 0.5)?;
/// let ex = expand_replicas(&b.build());
/// // p1a, p1b, p1c, p2.
/// assert_eq!(ex.graph.node_count(), 4);
/// assert_eq!(ex.replicas_of[p1.index()].len(), 3);
/// # Ok::<(), fcm_alloc::AllocError>(())
/// ```
pub fn expand_replicas(g: &SwGraph) -> Expansion {
    let mut out = SwGraph::with_capacity(g.node_count());
    let mut origin = Vec::new();
    let mut replicas_of: Vec<Vec<NodeIdx>> = Vec::with_capacity(g.node_count());
    let mut next_group: u32 = g
        .nodes()
        .filter_map(|(_, n)| n.replica_group)
        .max()
        .map_or(0, |g| g + 1);

    for (idx, node) in g.nodes() {
        let k = node.attributes.fault_tolerance.replicas();
        let group = if k > 1 {
            let group = next_group;
            next_group += 1;
            Some(group)
        } else {
            node.replica_group
        };
        let mut copies = Vec::with_capacity(k as usize);
        for i in 0..k {
            let mut copy = SwNode::new(
                format!("{}{}", node.name, suffix(i as usize, k)),
                node.attributes,
            );
            copy.replica_group = group;
            copy.required_resources = node.required_resources.clone();
            copy.pinned_to = node.pinned_to.clone();
            copy.separation_group = node.separation_group;
            let new_idx = out.add_node(copy);
            origin.push(idx);
            copies.push(new_idx);
        }
        // 0-weight links between the replicas of this node.
        for (i, &a) in copies.iter().enumerate() {
            for &b in &copies[i + 1..] {
                out.add_edge(a, b, SwEdge::ReplicaLink);
                out.add_edge(b, a, SwEdge::ReplicaLink);
            }
        }
        replicas_of.push(copies);
    }

    // Influence edges are duplicated per replica pair; pre-existing replica
    // links in the input are carried over verbatim.
    for (_, e) in g.edges() {
        for &from in &replicas_of[e.from.index()] {
            for &to in &replicas_of[e.to.index()] {
                out.add_edge(from, to, e.weight);
            }
        }
    }

    Expansion {
        graph: out,
        origin,
        replicas_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw::SwGraphBuilder;
    use fcm_core::{AttributeSet, FaultTolerance};

    fn tmr_attrs() -> AttributeSet {
        AttributeSet::default()
            .with_criticality(10)
            .with_fault_tolerance(FaultTolerance::TMR)
    }

    #[test]
    fn simplex_nodes_pass_through_unchanged() {
        let mut b = SwGraphBuilder::new();
        let a = b.add_process("a", AttributeSet::default());
        let c = b.add_process("b", AttributeSet::default());
        b.add_influence(a, c, 0.3).unwrap();
        let ex = expand_replicas(&b.build());
        assert_eq!(ex.graph.node_count(), 2);
        assert_eq!(ex.graph.edge_count(), 1);
        assert_eq!(ex.graph.node(NodeIdx(0)).unwrap().name, "a");
        assert_eq!(ex.origin, vec![a, c]);
    }

    #[test]
    fn tmr_node_becomes_three_named_replicas() {
        let mut b = SwGraphBuilder::new();
        let p1 = b.add_process("p1", tmr_attrs());
        let ex = expand_replicas(&b.build());
        assert_eq!(ex.graph.node_count(), 3);
        let names: Vec<_> = ex.graph.nodes().map(|(_, n)| n.name.clone()).collect();
        assert_eq!(names, vec!["p1a", "p1b", "p1c"]);
        // All replicas share a group and carry identical attributes.
        let g0 = ex.graph.node(NodeIdx(0)).unwrap().replica_group;
        assert!(g0.is_some());
        for (_, n) in ex.graph.nodes() {
            assert_eq!(n.replica_group, g0);
            assert_eq!(n.attributes, tmr_attrs());
        }
        // 3 pairs × 2 directions of replica links.
        assert_eq!(ex.graph.edge_count(), 6);
        assert!(ex
            .graph
            .edges()
            .all(|(_, e)| matches!(e.weight, SwEdge::ReplicaLink)));
        assert_eq!(ex.replicas_of[p1.index()].len(), 3);
    }

    #[test]
    fn paper_fig4_counts() {
        // p1 FT=3, p2 and p3 FT=2, p4..p8 simplex → 12 nodes.
        let mut b = SwGraphBuilder::new();
        let _p1 = b.add_process("p1", tmr_attrs());
        for name in ["p2", "p3"] {
            b.add_process(
                name,
                AttributeSet::default()
                    .with_criticality(8)
                    .with_fault_tolerance(FaultTolerance::DUPLEX),
            );
        }
        for name in ["p4", "p5", "p6", "p7", "p8"] {
            b.add_process(name, AttributeSet::default());
        }
        let ex = expand_replicas(&b.build());
        assert_eq!(ex.graph.node_count(), 12);
    }

    #[test]
    fn influence_edges_are_replicated_to_every_copy() {
        let mut b = SwGraphBuilder::new();
        let p1 = b.add_process("p1", tmr_attrs());
        let p2 = b.add_process("p2", AttributeSet::default());
        b.add_influence(p1, p2, 0.5).unwrap();
        b.add_influence(p2, p1, 0.2).unwrap();
        let ex = expand_replicas(&b.build());
        // 6 replica links + 3 copies of each influence direction.
        assert_eq!(ex.graph.edge_count(), 6 + 3 + 3);
        let p2_new = ex.replicas_of[p2.index()][0];
        for &r in &ex.replicas_of[p1.index()] {
            assert_eq!(
                ex.graph.edge_weight_between(r, p2_new).unwrap().influence(),
                0.5
            );
            assert_eq!(
                ex.graph.edge_weight_between(p2_new, r).unwrap().influence(),
                0.2
            );
        }
    }

    #[test]
    fn two_replicated_endpoints_duplicate_per_pair() {
        let mut b = SwGraphBuilder::new();
        let p1 = b.add_process("p1", tmr_attrs());
        let p2 = b.add_process(
            "p2",
            AttributeSet::default().with_fault_tolerance(FaultTolerance::DUPLEX),
        );
        b.add_influence(p1, p2, 0.4).unwrap();
        let ex = expand_replicas(&b.build());
        // 3 replicas × 2 replicas = 6 influence edges.
        let influence_edges = ex
            .graph
            .edges()
            .filter(|(_, e)| matches!(e.weight, SwEdge::Influence(_)))
            .count();
        assert_eq!(influence_edges, 6);
    }

    #[test]
    fn groups_differ_across_modules() {
        let mut b = SwGraphBuilder::new();
        b.add_process("p1", tmr_attrs());
        b.add_process("p2", tmr_attrs());
        let ex = expand_replicas(&b.build());
        let g_a = ex.graph.node(NodeIdx(0)).unwrap().replica_group.unwrap();
        let g_b = ex.graph.node(NodeIdx(3)).unwrap().replica_group.unwrap();
        assert_ne!(g_a, g_b);
    }

    #[test]
    fn resource_requirements_survive_expansion() {
        let mut b = SwGraphBuilder::new();
        let p1 = b.add_process("p1", tmr_attrs());
        let mut g = b.build();
        g.node_mut(p1)
            .unwrap()
            .required_resources
            .insert("gps".into());
        let ex = expand_replicas(&g);
        for (_, n) in ex.graph.nodes() {
            assert!(n.required_resources.contains("gps"), "{}", n.name);
        }
    }

    #[test]
    fn pins_and_separation_groups_survive_expansion() {
        let mut b = SwGraphBuilder::new();
        let p1 = b.add_process("p1", tmr_attrs());
        let p2 = b.add_process("p2", AttributeSet::default());
        b.pin_to_hw(p2, "console").unwrap();
        b.forbid_colocation(&[p1, p2]).unwrap();
        let ex = expand_replicas(&b.build());
        for (_, n) in ex.graph.nodes() {
            if n.name.starts_with("p1") {
                assert_eq!(n.separation_group, Some(0), "{}", n.name);
            } else {
                assert_eq!(n.pinned_to.as_deref(), Some("console"));
            }
        }
    }

    #[test]
    fn origin_maps_back_to_input_nodes() {
        let mut b = SwGraphBuilder::new();
        let p1 = b.add_process("p1", tmr_attrs());
        let p2 = b.add_process("p2", AttributeSet::default());
        let ex = expand_replicas(&b.build());
        assert_eq!(ex.origin.len(), 4);
        assert_eq!(ex.origin[0], p1);
        assert_eq!(ex.origin[1], p1);
        assert_eq!(ex.origin[2], p1);
        assert_eq!(ex.origin[3], p2);
    }
}
