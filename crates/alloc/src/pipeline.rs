//! The condensation pipeline: incremental Eq. 4 cluster influence.
//!
//! Every heuristic in [`crate::heuristics`] reduces the SW graph by a
//! sequence of pairwise cluster merges. Before this module existed, each
//! merge step rebuilt the whole condensed graph — an O(E + k²) pass per
//! *ranking*, inside an O(n) merge loop, i.e. an O(n³)-ish hot path.
//! [`CondensePipeline`] instead maintains the cluster-level influence
//! matrix *incrementally*: a merge removes one row/column and recombines
//! only the merged cluster's row and column via the paper's Eq. 4
//! (`infl(C→t) = 1 − Π(1 − infl(i→t))`), an O(E + k) update, so each
//! merge costs O(E + k²) total (the k² being the matrix shrink copy)
//! instead of a full rebuild per candidate ranking.
//!
//! # The bitwise contract
//!
//! The incremental matrix is not merely *close* to a full recompute — it
//! is **bitwise equal** to
//! `condense(g, groups, CombineRule::Probabilistic).influence_matrix()`
//! after every merge. This holds because both sides fold edge weights
//! with the same association: complement products are accumulated in
//! global edge-id order (`DiGraph::edges` iteration order), exactly the
//! order `condense` pushes weights into its buckets. Entries whose edge
//! buckets a merge does not touch are carried over verbatim. The
//! property tests in `crates/alloc/tests` pin this contract.
//!
//! Heuristics plug in as [`CondensePolicy`] implementations: [`H1Greedy`]
//! and [`H1PairAll`] rank pairs straight from the incremental matrix;
//! [`PartitionReplay`] drives the pipeline toward a partition computed
//! elsewhere (min-cut for H2/H2′, importance spheres for H3), so every
//! heuristic's merge path flows through the same engine.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use fcm_graph::{condense, CombineRule, GraphError, InfluenceMatrix, Matrix, NodeIdx};
use fcm_substrate::{telemetry, Mutex};

use crate::cluster::{is_schedulable, member_names, replica_conflict, Clustering};
use crate::error::AllocError;
use crate::sw::SwGraph;

/// A pre-flight hook validating a SW graph before a pipeline run.
///
/// Static-analysis layers above this crate install one (see
/// [`set_preflight`]); the allocation layer itself depends on nothing
/// above it, so the hook is how design-time model checking guards
/// [`CondensePipeline::run_policy`] without inverting the crate
/// layering (the same pattern as the substrate pool's counter hook).
/// The `Err` payload is the rendered diagnostic list.
pub type Preflight = fn(&SwGraph) -> Result<(), String>;

static PREFLIGHT_ON: AtomicBool = AtomicBool::new(false);
static PREFLIGHT: Mutex<Option<Preflight>> = Mutex::new(None);

/// Installs (or removes, with `None`) the process-wide pre-flight hook.
/// While no hook is installed a pipeline run costs one relaxed atomic
/// load extra.
pub fn set_preflight(hook: Option<Preflight>) {
    *PREFLIGHT.lock() = hook;
    PREFLIGHT_ON.store(hook.is_some(), Ordering::Release);
}

/// Runs the installed pre-flight hook, if any.
fn run_preflight(g: &SwGraph) -> Result<(), AllocError> {
    if PREFLIGHT_ON.load(Ordering::Acquire) {
        if let Some(hook) = *PREFLIGHT.lock() {
            hook(g).map_err(|summary| AllocError::PreflightFailed { summary })?;
        }
    }
    Ok(())
}

/// Process-wide count of *full* condensations (the O(E + k²) rebuild a
/// [`CondensePipeline`] performs once at construction). Long-running
/// layers above this crate (the `fcm-serve` daemon) assert that after
/// startup every edit flows through the incremental Eq. 4 path — i.e.
/// this counter stays put while they mutate.
static FULL_CONDENSES: AtomicU64 = AtomicU64::new(0);

/// Records one full condensation (called by the pipeline constructors
/// and by anything else that rebuilds a cluster matrix from scratch).
pub fn note_full_condense() {
    FULL_CONDENSES.fetch_add(1, Ordering::Relaxed);
}

/// Full condensations performed by this process so far.
#[must_use]
pub fn full_condense_count() -> u64 {
    FULL_CONDENSES.load(Ordering::Relaxed)
}

/// Returns `m` without row and column `hi` (O(k²) copy; surviving
/// entries are carried over bitwise). The matrix-shrink half of an
/// incremental cluster removal or merge.
#[must_use]
pub fn shrink_row_col(m: &Matrix, hi: usize) -> Matrix {
    let k = m.rows();
    let mut next = Matrix::zeros(k - 1, k - 1);
    for a in 0..k - 1 {
        let sa = a + usize::from(a >= hi);
        for b in 0..k - 1 {
            let sb = b + usize::from(b >= hi);
            next[(a, b)] = m[(sa, sb)];
        }
    }
    next
}

/// Returns `m` with one zero row and column appended — the matrix-grow
/// half of an incremental cluster (or node) addition; the new row and
/// column are then filled by [`eq4_recombine_row_col`].
#[must_use]
pub fn grow_row_col(m: &Matrix) -> Matrix {
    let k = m.rows();
    let mut next = Matrix::zeros(k + 1, k + 1);
    for a in 0..k {
        for b in 0..k {
            next[(a, b)] = m[(a, b)];
        }
    }
    next
}

/// The Eq. 4 complement-product fold shared by both recombiners:
/// returns the new row `gi` and column `gi` as dense value slices
/// (`row[t] = 1 − Π(1 − w)` over `gi → t` edges, diagonal zero).
/// Products accumulate in the order `edges` yields them — global
/// edge-id order at every call site, the association `condense` uses.
fn eq4_fold(
    edges: impl Iterator<Item = (usize, usize, f64)>,
    gi: usize,
    k: usize,
) -> (Vec<f64>, Vec<f64>) {
    let mut comp_out = vec![1.0f64; k];
    let mut comp_in = vec![1.0f64; k];
    for (gu, gv, w) in edges {
        if gu == gi {
            comp_out[gv] *= 1.0 - w;
        }
        if gv == gi {
            comp_in[gu] *= 1.0 - w;
        }
    }
    let mut row: Vec<f64> = comp_out.into_iter().map(|c| 1.0 - c).collect();
    let mut col: Vec<f64> = comp_in.into_iter().map(|c| 1.0 - c).collect();
    row[gi] = 0.0;
    col[gi] = 0.0;
    (row, col)
}

/// Recombines row and column `gi` of `influence` via the paper's Eq. 4
/// (`infl(C→t) = 1 − Π(1 − infl(i→t))`) from `edges` — cluster-level
/// `(from, to, weight)` triples **iterated in global edge-id order**
/// with intra-cluster edges already skipped. Folding the complement
/// products in that exact order is the association `condense` uses,
/// which is what makes an incrementally-maintained matrix bitwise-equal
/// to a full recompute (see the module docs).
pub fn eq4_recombine_row_col(
    edges: impl Iterator<Item = (usize, usize, f64)>,
    gi: usize,
    influence: &mut Matrix,
) {
    let k = influence.rows();
    let (row, col) = eq4_fold(edges, gi, k);
    for t in 0..k {
        influence[(gi, t)] = row[t];
        if t != gi {
            influence[(t, gi)] = col[t];
        }
    }
}

/// [`eq4_recombine_row_col`] on a storage-polymorphic
/// [`InfluenceMatrix`]: the identical fold feeds
/// [`InfluenceMatrix::set_row_col`], so dense and CSR pipelines carry
/// the same values (CSR prunes the exact zeros).
pub fn eq4_recombine_row_col_im(
    edges: impl Iterator<Item = (usize, usize, f64)>,
    gi: usize,
    influence: &mut InfluenceMatrix,
) {
    let k = influence.rows();
    let (row, col) = eq4_fold(edges, gi, k);
    influence.set_row_col(gi, &row, &col);
}

/// A merge-step planner driving a [`CondensePipeline`].
///
/// Each round the pipeline asks the policy for a batch of disjoint
/// cluster pairs to merge (indices into the *current* cluster list).
/// An empty batch means the policy is stuck and the run fails with
/// [`AllocError::NoFeasibleClustering`].
pub trait CondensePolicy {
    /// Plans the next round of merges toward `target` clusters.
    ///
    /// Returned pairs must be disjoint (no cluster index appears twice);
    /// the pipeline applies them from the highest index down so earlier
    /// indices stay valid, and re-checks feasibility before each merge.
    fn plan_round(&mut self, pipe: &CondensePipeline<'_>, target: usize) -> Vec<(usize, usize)>;
}

/// The incremental condensation engine.
///
/// Holds the current partition of the SW graph, the node → cluster
/// membership, and the cluster-level influence matrix maintained under
/// the Eq. 4 combination rule (see the module docs for the bitwise
/// contract).
#[derive(Debug, Clone)]
pub struct CondensePipeline<'g> {
    g: &'g SwGraph,
    groups: Vec<Vec<NodeIdx>>,
    membership: Vec<usize>,
    influence: InfluenceMatrix,
    merges: u64,
}

impl<'g> CondensePipeline<'g> {
    /// Starts from the singleton partition (every node its own cluster).
    #[must_use]
    pub fn new(g: &'g SwGraph) -> CondensePipeline<'g> {
        let groups: Vec<Vec<NodeIdx>> = g.node_indices().map(|n| vec![n]).collect();
        let cond = condense(g, &groups, CombineRule::Probabilistic)
            .expect("singletons always form a partition");
        note_full_condense();
        CondensePipeline {
            g,
            membership: (0..groups.len()).collect(),
            influence: InfluenceMatrix::from_dense_auto(cond.influence_matrix()),
            groups,
            merges: 0,
        }
    }

    /// Starts from an existing validated clustering.
    #[must_use]
    pub fn from_clustering(g: &'g SwGraph, clustering: &Clustering) -> CondensePipeline<'g> {
        let groups: Vec<Vec<NodeIdx>> = clustering.clusters().to_vec();
        let cond = condense(g, &groups, CombineRule::Probabilistic)
            .expect("a Clustering is a validated partition");
        note_full_condense();
        let mut membership = vec![0usize; g.node_count()];
        for (ci, group) in groups.iter().enumerate() {
            for &n in group {
                membership[n.index()] = ci;
            }
        }
        CondensePipeline {
            g,
            membership,
            influence: InfluenceMatrix::from_dense_auto(cond.influence_matrix()),
            groups,
            merges: 0,
        }
    }

    /// Number of clusters.
    #[must_use]
    pub fn len(&self) -> usize {
        self.groups.len()
    }

    /// Whether there are no clusters (empty SW graph).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// The current clusters, each a sorted member list.
    #[must_use]
    pub fn groups(&self) -> &[Vec<NodeIdx>] {
        &self.groups
    }

    /// The incrementally-maintained cluster influence matrix (Eq. 4),
    /// in whichever representation the selection policy picked at
    /// construction (dense below the [`fcm_graph::prefer_sparse`]
    /// thresholds, CSR above them).
    #[must_use]
    pub fn influence(&self) -> &InfluenceMatrix {
        &self.influence
    }

    /// Merges applied so far.
    #[must_use]
    pub fn merges(&self) -> u64 {
        self.merges
    }

    /// Mutual influence between clusters `i` and `j` (both directions
    /// summed) — H1's pairing criterion, read straight from the matrix.
    #[must_use]
    pub fn mutual_influence(&self, i: usize, j: usize) -> f64 {
        self.influence[(i, j)] + self.influence[(j, i)]
    }

    /// All cluster pairs ranked by descending mutual influence
    /// (zero-influence pairs included, last; ties keep `(i, j)`
    /// lexicographic order via the stable sort).
    #[must_use]
    pub fn ranked_pairs(&self) -> Vec<(f64, usize, usize)> {
        let k = self.len();
        let mut pairs = Vec::with_capacity(k * (k.saturating_sub(1)) / 2);
        for i in 0..k {
            for j in (i + 1)..k {
                pairs.push((self.mutual_influence(i, j), i, j));
            }
        }
        pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite influence"));
        pairs
    }

    /// Whether merging clusters `i` and `j` would satisfy the combination
    /// constraints (replica anti-affinity, EDF-schedulable union).
    #[must_use]
    pub fn can_merge(&self, i: usize, j: usize) -> bool {
        if i >= self.groups.len() || j >= self.groups.len() || i == j {
            return false;
        }
        let mut merged = self.groups[i].clone();
        merged.extend_from_slice(&self.groups[j]);
        replica_conflict(self.g, &merged).is_none() && is_schedulable(self.g, &merged)
    }

    /// Merges clusters `i` and `j`, updating membership and the influence
    /// matrix incrementally (O(E + k²); no condensed-graph rebuild).
    ///
    /// # Errors
    ///
    /// * [`AllocError::UnknownSwNode`] — index out of range or `i == j`;
    /// * [`AllocError::ReplicaConflict`] / [`AllocError::Unschedulable`] —
    ///   the union violates a combination constraint.
    pub fn merge(&mut self, i: usize, j: usize) -> Result<(), AllocError> {
        let _span = fcm_obs::span("alloc.pipeline.merge");
        if i >= self.groups.len() || j >= self.groups.len() || i == j {
            return Err(AllocError::UnknownSwNode { index: i.max(j) });
        }
        let mut merged = self.groups[i].clone();
        merged.extend_from_slice(&self.groups[j]);
        if let Some((a, b)) = replica_conflict(self.g, &merged) {
            return Err(AllocError::ReplicaConflict { a, b });
        }
        if !is_schedulable(self.g, &merged) {
            return Err(AllocError::Unschedulable {
                members: member_names(self.g, &merged),
            });
        }

        let (lo, hi) = (i.min(j), i.max(j));
        let moved = self.groups.remove(hi);
        self.groups[lo].extend(moved);
        self.groups[lo].sort_unstable();
        for m in &mut self.membership {
            if *m == hi {
                *m = lo;
            } else if *m > hi {
                *m -= 1;
            }
        }
        self.shrink_influence(hi);
        self.recombine_row_col(lo);
        self.merges += 1;
        telemetry::global().add("alloc.pipeline.merges", 1);
        fcm_obs::counter_add("alloc.pipeline.merges", 1);
        Ok(())
    }

    /// Runs `policy` until `target` clusters remain.
    ///
    /// # Errors
    ///
    /// [`AllocError::NoFeasibleClustering`] when the policy plans nothing
    /// or no planned merge is feasible (no progress in a round);
    /// [`AllocError::PreflightFailed`] when an installed pre-flight hook
    /// (see [`set_preflight`]) rejects the SW graph before any merge.
    pub fn run_policy(
        &mut self,
        target: usize,
        policy: &mut dyn CondensePolicy,
    ) -> Result<(), AllocError> {
        run_preflight(self.g)?;
        while self.len() > target {
            let before = self.len();
            let mut batch = policy.plan_round(self, target);
            // Highest indices first: removing cluster `hi` shifts only
            // indices above it, so the remaining (disjoint) pairs of the
            // batch — all with smaller maxima — stay valid.
            batch.sort_by_key(|&(i, j)| std::cmp::Reverse(i.max(j)));
            for (i, j) in batch {
                // A previous merge in this round may invalidate a pair;
                // skip it and let the next round retry.
                if self.can_merge(i, j) {
                    self.merge(i, j)?;
                }
            }
            if self.len() == before {
                return Err(AllocError::NoFeasibleClustering {
                    requested: target,
                    reached: self.len(),
                });
            }
        }
        Ok(())
    }

    /// Reorders the clusters to match `target`'s listing order (`target`
    /// must be the same partition). The influence matrix is permuted
    /// entry-for-entry, so the bitwise contract survives.
    ///
    /// # Errors
    ///
    /// [`AllocError::Graph`] when `target` is not the same partition.
    pub fn reorder_to(&mut self, target: &[Vec<NodeIdx>]) -> Result<(), AllocError> {
        let mismatch = || {
            AllocError::Graph(GraphError::TooManyParts {
                requested: target.len(),
                nodes: self.g.node_count(),
            })
        };
        if target.len() != self.groups.len() {
            return Err(mismatch());
        }
        // Clusters are disjoint, so the smallest member identifies one.
        let mut by_min: BTreeMap<NodeIdx, usize> = self
            .groups
            .iter()
            .enumerate()
            .map(|(q, grp)| (grp[0], q))
            .collect();
        let mut perm = Vec::with_capacity(target.len());
        for tg in target {
            let min = *tg.iter().min().ok_or_else(mismatch)?;
            let q = by_min.remove(&min).ok_or_else(mismatch)?;
            let mut sorted = tg.clone();
            sorted.sort_unstable();
            if self.groups[q] != sorted {
                return Err(mismatch());
            }
            perm.push(q);
        }
        self.groups = perm.iter().map(|&q| self.groups[q].clone()).collect();
        self.influence = self.influence.permuted(&perm);
        for (ci, group) in self.groups.iter().enumerate() {
            for &n in group {
                self.membership[n.index()] = ci;
            }
        }
        Ok(())
    }

    /// Finishes the pipeline, validating the partition once.
    ///
    /// # Errors
    ///
    /// The validation errors of [`Clustering::new`] (none are expected
    /// when every merge went through [`merge`](CondensePipeline::merge)).
    pub fn into_clustering(self) -> Result<Clustering, AllocError> {
        Clustering::new(self.g, self.groups)
    }

    /// Drops row and column `hi` from the influence matrix (surviving
    /// entries are carried over bitwise in either representation).
    fn shrink_influence(&mut self, hi: usize) {
        self.influence = self.influence.shrink_row_col(hi);
    }

    /// Recombines row and column `gi` of the influence matrix from the
    /// SW edges via Eq. 4 (see [`eq4_recombine_row_col`]): intra-cluster
    /// edges are skipped, everything else is folded in global edge-id
    /// order.
    fn recombine_row_col(&mut self, gi: usize) {
        let membership = &self.membership;
        let edges = self.g.edges().filter_map(|(_, e)| {
            let gu = membership[e.from.index()];
            let gv = membership[e.to.index()];
            (gu != gv).then(|| (gu, gv, e.weight.into()))
        });
        eq4_recombine_row_col_im(edges, gi, &mut self.influence);
    }
}

/// Heuristic H1 as a policy: each round merges the single
/// highest-mutual-influence feasible pair.
#[derive(Debug, Clone, Copy, Default)]
pub struct H1Greedy;

impl CondensePolicy for H1Greedy {
    fn plan_round(&mut self, pipe: &CondensePipeline<'_>, _target: usize) -> Vec<(usize, usize)> {
        pipe.ranked_pairs()
            .into_iter()
            .find(|&(_, i, j)| pipe.can_merge(i, j))
            .map(|(_, i, j)| vec![(i, j)])
            .unwrap_or_default()
    }
}

/// The H1 variation as a policy: each round greedily matches disjoint
/// cluster pairs in descending mutual influence and merges every match
/// (stopping at the target count).
#[derive(Debug, Clone, Copy, Default)]
pub struct H1PairAll;

impl CondensePolicy for H1PairAll {
    fn plan_round(&mut self, pipe: &CondensePipeline<'_>, target: usize) -> Vec<(usize, usize)> {
        let mut pairs = pipe.ranked_pairs();
        pairs.retain(|&(_, i, j)| pipe.can_merge(i, j));
        let mut used = vec![false; pipe.len()];
        let mut matched: Vec<(usize, usize)> = Vec::new();
        for (_, i, j) in pairs {
            if !used[i] && !used[j] && pipe.len() - matched.len() > target {
                used[i] = true;
                used[j] = true;
                matched.push((i, j));
            }
        }
        matched
    }
}

/// Replays a partition computed elsewhere (H2's min cut, H3's spheres)
/// as pairwise pipeline merges: each round pairs up current clusters
/// that belong to the same target cluster. Merging two subsets of a
/// feasible cluster is always feasible (replica-conflict-free and
/// EDF-schedulable sets stay so under taking subsets), so the replay
/// never gets stuck on a valid target.
#[derive(Debug, Clone)]
pub struct PartitionReplay {
    /// Original node index → target cluster id.
    target_of: Vec<usize>,
}

impl PartitionReplay {
    /// Builds the replay policy toward `target` (a partition of the
    /// `node_count`-node SW graph).
    #[must_use]
    pub fn toward(node_count: usize, target: &[Vec<NodeIdx>]) -> PartitionReplay {
        let mut target_of = vec![0usize; node_count];
        for (ti, group) in target.iter().enumerate() {
            for &n in group {
                target_of[n.index()] = ti;
            }
        }
        PartitionReplay { target_of }
    }
}

impl CondensePolicy for PartitionReplay {
    fn plan_round(&mut self, pipe: &CondensePipeline<'_>, _target: usize) -> Vec<(usize, usize)> {
        let mut of_target: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for (q, group) in pipe.groups().iter().enumerate() {
            of_target
                .entry(self.target_of[group[0].index()])
                .or_default()
                .push(q);
        }
        let mut batch = Vec::new();
        for ids in of_target.values() {
            for pair in ids.chunks(2) {
                if let [a, b] = *pair {
                    batch.push((a, b));
                }
            }
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw::SwGraphBuilder;
    use fcm_core::AttributeSet;

    fn attrs(c: u32) -> AttributeSet {
        AttributeSet::default().with_criticality(c)
    }

    /// p0 <-> p1 strongly coupled, p1 -> p2 weak, p3a/p3b replicas of a
    /// module both influencing p2.
    fn sample() -> SwGraph {
        let mut b = SwGraphBuilder::new();
        let p0 = b.add_process("p0", attrs(5));
        let p1 = b.add_process("p1", attrs(3));
        let p2 = b.add_process("p2", attrs(1));
        let p3a = b.add_process("p3a", attrs(8));
        let p3b = b.add_process("p3b", attrs(8));
        b.add_influence(p0, p1, 0.7).unwrap();
        b.add_influence(p1, p0, 0.2).unwrap();
        b.add_influence(p1, p2, 0.3).unwrap();
        b.add_influence(p3a, p2, 0.4).unwrap();
        b.add_influence(p3b, p2, 0.4).unwrap();
        b.mark_replicas(&[p3a, p3b]).unwrap();
        b.build()
    }

    /// Full Eq. 2/Eq. 4 recompute on the current partition.
    fn full_recompute(g: &SwGraph, groups: &[Vec<NodeIdx>]) -> Matrix {
        condense(g, groups, CombineRule::Probabilistic)
            .expect("partition")
            .influence_matrix()
    }

    #[test]
    fn initial_matrix_matches_full_condense() {
        let g = sample();
        let pipe = CondensePipeline::new(&g);
        assert_eq!(pipe.influence(), &full_recompute(&g, pipe.groups()));
        assert_eq!(pipe.len(), 5);
        assert_eq!(pipe.merges(), 0);
    }

    #[test]
    fn merge_updates_matrix_bitwise() {
        let g = sample();
        let mut pipe = CondensePipeline::new(&g);
        pipe.merge(0, 1).unwrap();
        assert_eq!(pipe.len(), 4);
        assert_eq!(pipe.merges(), 1);
        assert_eq!(pipe.influence(), &full_recompute(&g, pipe.groups()));
        // Fan-in combination: merging the two replicas' targets is not
        // possible, but merging p2 into the (p0,p1) cluster is.
        pipe.merge(0, 1).unwrap();
        assert_eq!(pipe.influence(), &full_recompute(&g, pipe.groups()));
    }

    #[test]
    fn eq4_fan_in_appears_after_merge() {
        let mut b = SwGraphBuilder::new();
        let x = b.add_process("x", attrs(0));
        let y = b.add_process("y", attrs(0));
        let t = b.add_process("t", attrs(0));
        b.add_influence(x, t, 0.7).unwrap();
        b.add_influence(y, t, 0.2).unwrap();
        let g = b.build();
        let mut pipe = CondensePipeline::new(&g);
        pipe.merge(0, 1).unwrap();
        // 1 − (1−0.7)(1−0.2) = 0.76 — the paper's Fig. 5 value.
        assert!((pipe.influence()[(0, 1)] - 0.76).abs() < 1e-12);
        assert_eq!(pipe.influence(), &full_recompute(&g, pipe.groups()));
    }

    #[test]
    fn merge_rejects_replica_conflicts_and_bad_indices() {
        let g = sample();
        let mut pipe = CondensePipeline::new(&g);
        assert!(matches!(
            pipe.merge(3, 4),
            Err(AllocError::ReplicaConflict { .. })
        ));
        assert!(matches!(
            pipe.merge(0, 9),
            Err(AllocError::UnknownSwNode { .. })
        ));
        assert!(matches!(
            pipe.merge(2, 2),
            Err(AllocError::UnknownSwNode { .. })
        ));
        assert!(!pipe.can_merge(3, 4));
        assert!(pipe.can_merge(0, 1));
        assert_eq!(pipe.merges(), 0);
    }

    #[test]
    fn h1_greedy_policy_reaches_target() {
        let g = sample();
        let mut pipe = CondensePipeline::new(&g);
        pipe.run_policy(3, &mut H1Greedy).unwrap();
        assert_eq!(pipe.len(), 3);
        assert_eq!(pipe.influence(), &full_recompute(&g, pipe.groups()));
        let c = pipe.into_clustering().unwrap();
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn stuck_policy_reports_no_feasible_clustering() {
        let g = sample();
        let mut pipe = CondensePipeline::new(&g);
        // Target 1 is impossible: the replicas can never be combined.
        let err = pipe.run_policy(1, &mut H1Greedy).unwrap_err();
        assert!(matches!(
            err,
            AllocError::NoFeasibleClustering { requested: 1, .. }
        ));
    }

    #[test]
    fn partition_replay_reproduces_a_target_partition() {
        let g = sample();
        let n: Vec<NodeIdx> = g.node_indices().collect();
        let target = vec![
            vec![n[2], n[0]],
            vec![n[3]],
            vec![n[1], n[4]],
        ];
        let mut pipe = CondensePipeline::new(&g);
        let mut policy = PartitionReplay::toward(g.node_count(), &target);
        pipe.run_policy(target.len(), &mut policy).unwrap();
        assert_eq!(pipe.influence(), &full_recompute(&g, pipe.groups()));
        pipe.reorder_to(&target).unwrap();
        assert_eq!(pipe.influence(), &full_recompute(&g, pipe.groups()));
        let sorted_sets: Vec<Vec<NodeIdx>> = pipe.groups().to_vec();
        let expect: Vec<Vec<NodeIdx>> = target
            .iter()
            .map(|grp| {
                let mut s = grp.clone();
                s.sort_unstable();
                s
            })
            .collect();
        assert_eq!(sorted_sets, expect, "listing order preserved");
        pipe.into_clustering().unwrap();
    }

    #[test]
    fn reorder_to_rejects_a_different_partition() {
        let g = sample();
        let n: Vec<NodeIdx> = g.node_indices().collect();
        let mut pipe = CondensePipeline::new(&g);
        pipe.merge(0, 1).unwrap();
        // Wrong number of clusters.
        assert!(pipe.reorder_to(&[vec![n[0]]]).is_err());
        // Right count, wrong contents.
        let bogus = vec![
            vec![n[0], n[2]],
            vec![n[1]],
            vec![n[3]],
            vec![n[4]],
        ];
        assert!(pipe.reorder_to(&bogus).is_err());
    }

    #[test]
    fn from_clustering_starts_mid_flight() {
        let g = sample();
        let n: Vec<NodeIdx> = g.node_indices().collect();
        let c = Clustering::new(
            &g,
            vec![vec![n[0], n[1]], vec![n[2]], vec![n[3]], vec![n[4]]],
        )
        .unwrap();
        let pipe = CondensePipeline::from_clustering(&g, &c);
        assert_eq!(pipe.len(), 4);
        assert_eq!(pipe.influence(), &full_recompute(&g, pipe.groups()));
    }

    #[test]
    fn ranked_pairs_match_the_legacy_condense_ranking() {
        let g = sample();
        let pipe = CondensePipeline::new(&g);
        let c = Clustering::singletons(&g);
        for (w, i, j) in pipe.ranked_pairs() {
            assert_eq!(w, c.mutual_influence(&g, i, j), "pair ({i},{j})");
        }
    }
}
