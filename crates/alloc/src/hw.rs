//! The HW resource graph (paper §5.1).
//!
//! "For HW, an interconnection graph is used; for simplicity, we consider
//! a generalized HW resource graph." The paper assumes homogeneous
//! processors; heterogeneity enters only through per-node *resource tags*
//! (its example: "need for a resource present on only one processor").

use std::collections::BTreeSet;
use std::fmt;

use fcm_graph::{DiGraph, NodeIdx};

/// A hardware node (processor) with its attached resource tags and
/// throughput capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct HwNode {
    /// Display name, e.g. `"hw0"`.
    pub name: String,
    /// Resource tags available on this processor (I/O devices, sensors,
    /// co-processors). A SW node requiring tag `t` can only map here if
    /// `t` is present.
    pub resources: BTreeSet<String>,
    /// Throughput capacity (same unit as the SW throughput attribute).
    /// The summed throughput of a hosted cluster must not exceed it;
    /// unbounded by default.
    pub capacity: f64,
}

impl Default for HwNode {
    fn default() -> Self {
        HwNode {
            name: String::new(),
            resources: BTreeSet::new(),
            capacity: f64::INFINITY,
        }
    }
}

impl HwNode {
    /// Creates a node with no special resources and unbounded capacity.
    pub fn new(name: impl Into<String>) -> Self {
        HwNode {
            name: name.into(),
            ..HwNode::default()
        }
    }

    /// Adds a resource tag (builder style).
    pub fn with_resource(mut self, tag: impl Into<String>) -> Self {
        self.resources.insert(tag.into());
        self
    }

    /// Sets the throughput capacity (builder style).
    pub fn with_capacity(mut self, capacity: f64) -> Self {
        self.capacity = capacity;
        self
    }
}

impl fmt::Display for HwNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// The HW interconnection graph; edge weights are per-hop communication
/// costs (used when "communication costs between SW modules … need to be
/// considered" and the mapping's *dilation* matters).
#[derive(Debug, Clone, PartialEq)]
pub struct HwGraph {
    graph: DiGraph<HwNode, f64>,
    /// All-pairs hop-cost matrix (shortest path over link costs).
    distances: Vec<Vec<f64>>,
}

impl HwGraph {
    /// Builds a HW graph from nodes and undirected links
    /// `(a, b, cost)`.
    pub fn new(nodes: Vec<HwNode>, links: &[(usize, usize, f64)]) -> Self {
        let mut graph = DiGraph::with_capacity(nodes.len());
        for n in nodes {
            graph.add_node(n);
        }
        for &(a, b, cost) in links {
            graph.add_edge(NodeIdx(a), NodeIdx(b), cost);
            graph.add_edge(NodeIdx(b), NodeIdx(a), cost);
        }
        let distances = all_pairs_shortest(&graph);
        HwGraph { graph, distances }
    }

    /// A strongly connected (complete) network of `n` identical nodes with
    /// unit link cost — the paper's example platform ("assume there is a
    /// strongly connected network with 6 HW nodes").
    pub fn complete(n: usize) -> Self {
        let nodes = (0..n).map(|i| HwNode::new(format!("hw{i}"))).collect();
        let mut links = Vec::new();
        for a in 0..n {
            for b in (a + 1)..n {
                links.push((a, b, 1.0));
            }
        }
        HwGraph::new(nodes, &links)
    }

    /// A ring of `n` nodes with unit link cost.
    pub fn ring(n: usize) -> Self {
        let nodes = (0..n).map(|i| HwNode::new(format!("hw{i}"))).collect();
        let links: Vec<_> = (0..n).map(|i| (i, (i + 1) % n, 1.0)).collect();
        HwGraph::new(nodes, if n > 1 { &links } else { &[] })
    }

    /// A star: node 0 is the hub, nodes `1..n` are leaves.
    pub fn star(n: usize) -> Self {
        let nodes = (0..n).map(|i| HwNode::new(format!("hw{i}"))).collect();
        let links: Vec<_> = (1..n).map(|i| (0, i, 1.0)).collect();
        HwGraph::new(nodes, &links)
    }

    /// A `w × h` grid (mesh) with unit link cost.
    pub fn mesh(w: usize, h: usize) -> Self {
        let nodes = (0..w * h)
            .map(|i| HwNode::new(format!("hw{}_{}", i % w, i / w)))
            .collect();
        let mut links = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let i = y * w + x;
                if x + 1 < w {
                    links.push((i, i + 1, 1.0));
                }
                if y + 1 < h {
                    links.push((i, i + w, 1.0));
                }
            }
        }
        HwGraph::new(nodes, &links)
    }

    /// Number of processors.
    pub fn len(&self) -> usize {
        self.graph.node_count()
    }

    /// Whether the platform has no processors.
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// The node at `idx`, if it exists.
    pub fn node(&self, idx: NodeIdx) -> Option<&HwNode> {
        self.graph.node(idx)
    }

    /// Mutable node access (to attach resource tags after construction).
    pub fn node_mut(&mut self, idx: NodeIdx) -> Option<&mut HwNode> {
        self.graph.node_mut(idx)
    }

    /// Iterates over `(index, node)` pairs.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeIdx, &HwNode)> + '_ {
        self.graph.nodes()
    }

    /// Shortest-path communication cost between two processors
    /// (`0` to self, `f64::INFINITY` when disconnected).
    pub fn distance(&self, a: NodeIdx, b: NodeIdx) -> f64 {
        self.distances
            .get(a.index())
            .and_then(|row| row.get(b.index()))
            .copied()
            .unwrap_or(f64::INFINITY)
    }

    /// Whether every node can reach every other.
    pub fn is_connected(&self) -> bool {
        self.distances
            .iter()
            .all(|row| row.iter().all(|d| d.is_finite()))
    }
}

fn all_pairs_shortest(g: &DiGraph<HwNode, f64>) -> Vec<Vec<f64>> {
    let n = g.node_count();
    let mut d = vec![vec![f64::INFINITY; n]; n];
    for (i, row) in d.iter_mut().enumerate() {
        row[i] = 0.0;
    }
    for (_, e) in g.edges() {
        let (u, v) = (e.from.index(), e.to.index());
        if e.weight < d[u][v] {
            d[u][v] = e.weight;
        }
    }
    for k in 0..n {
        for i in 0..n {
            for j in 0..n {
                let via = d[i][k] + d[k][j];
                if via < d[i][j] {
                    d[i][j] = via;
                }
            }
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_topology_is_all_unit_distances() {
        let hw = HwGraph::complete(4);
        assert_eq!(hw.len(), 4);
        assert!(hw.is_connected());
        for a in 0..4 {
            for b in 0..4 {
                let d = hw.distance(NodeIdx(a), NodeIdx(b));
                if a == b {
                    assert_eq!(d, 0.0);
                } else {
                    assert_eq!(d, 1.0);
                }
            }
        }
    }

    #[test]
    fn ring_distances_wrap() {
        let hw = HwGraph::ring(6);
        assert_eq!(hw.distance(NodeIdx(0), NodeIdx(3)), 3.0);
        assert_eq!(hw.distance(NodeIdx(0), NodeIdx(5)), 1.0);
        assert!(hw.is_connected());
    }

    #[test]
    fn star_routes_through_hub() {
        let hw = HwGraph::star(5);
        assert_eq!(hw.distance(NodeIdx(1), NodeIdx(4)), 2.0);
        assert_eq!(hw.distance(NodeIdx(0), NodeIdx(4)), 1.0);
    }

    #[test]
    fn mesh_distance_is_manhattan() {
        let hw = HwGraph::mesh(3, 3);
        assert_eq!(hw.len(), 9);
        // Corner to corner: 4 hops.
        assert_eq!(hw.distance(NodeIdx(0), NodeIdx(8)), 4.0);
    }

    #[test]
    fn disconnected_platform_is_detected() {
        let hw = HwGraph::new(vec![HwNode::new("a"), HwNode::new("b")], &[]);
        assert!(!hw.is_connected());
        assert_eq!(hw.distance(NodeIdx(0), NodeIdx(1)), f64::INFINITY);
    }

    #[test]
    fn resource_tags_attach() {
        let mut hw = HwGraph::complete(2);
        hw.node_mut(NodeIdx(0))
            .unwrap()
            .resources
            .insert("gps".into());
        assert!(hw.node(NodeIdx(0)).unwrap().resources.contains("gps"));
        assert!(!hw.node(NodeIdx(1)).unwrap().resources.contains("gps"));
        let n = HwNode::new("x").with_resource("radar").with_capacity(4.0);
        assert!(n.resources.contains("radar"));
        assert_eq!(n.capacity, 4.0);
        assert_eq!(n.to_string(), "x");
        assert_eq!(HwNode::new("y").capacity, f64::INFINITY);
    }

    #[test]
    fn out_of_range_distance_is_infinite() {
        let hw = HwGraph::complete(2);
        assert_eq!(hw.distance(NodeIdx(0), NodeIdx(9)), f64::INFINITY);
    }

    #[test]
    fn singleton_and_empty() {
        let hw = HwGraph::ring(1);
        assert_eq!(hw.len(), 1);
        assert!(hw.is_connected());
        let empty = HwGraph::complete(0);
        assert!(empty.is_empty());
        assert!(empty.is_connected());
    }
}
