//! Error type for the allocation layer.

use std::error::Error;
use std::fmt;

use fcm_core::FcmError;
use fcm_graph::GraphError;

/// Errors reported while clustering SW nodes or mapping them to HW.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum AllocError {
    /// A SW node index was out of range.
    UnknownSwNode {
        /// The offending index.
        index: usize,
    },
    /// A HW node index was out of range.
    UnknownHwNode {
        /// The offending index.
        index: usize,
    },
    /// Two replicas of the same module ended up in one cluster or on one
    /// HW node ("two nodes connected by an edge of weight of 0 cannot be
    /// combined").
    ReplicaConflict {
        /// Name of the first replica.
        a: String,
        /// Name of the second replica.
        b: String,
    },
    /// A cluster's merged job set is not schedulable on one processor.
    Unschedulable {
        /// Names of the cluster members.
        members: Vec<String>,
    },
    /// No clustering to the requested size exists under the constraints.
    NoFeasibleClustering {
        /// Number of clusters requested.
        requested: usize,
        /// Number of clusters reached before getting stuck.
        reached: usize,
    },
    /// No assignment of clusters to HW nodes satisfies the constraints.
    NoFeasibleMapping {
        /// Human-readable reason.
        reason: String,
    },
    /// More clusters than HW nodes.
    TooFewHwNodes {
        /// Number of clusters to place.
        clusters: usize,
        /// Number of HW nodes available.
        hw_nodes: usize,
    },
    /// An influence value was outside `(0, 1]` (0 is reserved for replica
    /// links, which have their own constructor).
    InvalidInfluence {
        /// The offending value.
        value: f64,
    },
    /// An installed pre-flight hook (see [`crate::pipeline::set_preflight`])
    /// rejected the SW graph before the pipeline ran.
    PreflightFailed {
        /// The rendered diagnostic lines, one per line.
        summary: String,
    },
    /// An underlying graph error.
    Graph(GraphError),
    /// An underlying FCM-model error.
    Fcm(FcmError),
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::UnknownSwNode { index } => write!(f, "unknown sw node {index}"),
            AllocError::UnknownHwNode { index } => write!(f, "unknown hw node {index}"),
            AllocError::ReplicaConflict { a, b } => {
                write!(f, "replicas {a} and {b} cannot be combined or co-located")
            }
            AllocError::Unschedulable { members } => {
                write!(
                    f,
                    "cluster {{{}}} is not schedulable on one processor",
                    members.join(", ")
                )
            }
            AllocError::NoFeasibleClustering { requested, reached } => write!(
                f,
                "no feasible clustering into {requested} clusters (stuck at {reached})"
            ),
            AllocError::NoFeasibleMapping { reason } => {
                write!(f, "no feasible sw-to-hw mapping: {reason}")
            }
            AllocError::TooFewHwNodes { clusters, hw_nodes } => {
                write!(f, "{clusters} clusters cannot map onto {hw_nodes} hw nodes")
            }
            AllocError::InvalidInfluence { value } => {
                write!(
                    f,
                    "influence {value} must lie in (0, 1]; weight 0 is reserved for replica links"
                )
            }
            AllocError::PreflightFailed { summary } => {
                write!(f, "pre-flight model check failed:\n{summary}")
            }
            AllocError::Graph(e) => write!(f, "graph error: {e}"),
            AllocError::Fcm(e) => write!(f, "fcm error: {e}"),
        }
    }
}

impl Error for AllocError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AllocError::Graph(e) => Some(e),
            AllocError::Fcm(e) => Some(e),
            _ => None,
        }
    }
}

impl From<GraphError> for AllocError {
    fn from(e: GraphError) -> Self {
        AllocError::Graph(e)
    }
}

impl From<FcmError> for AllocError {
    fn from(e: FcmError) -> Self {
        AllocError::Fcm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        let e = AllocError::ReplicaConflict {
            a: "p1a".into(),
            b: "p1b".into(),
        };
        assert_eq!(
            e.to_string(),
            "replicas p1a and p1b cannot be combined or co-located"
        );
        let e = AllocError::Unschedulable {
            members: vec!["p4".into(), "p5".into()],
        };
        assert!(e.to_string().contains("p4, p5"));
        let e = AllocError::TooFewHwNodes {
            clusters: 8,
            hw_nodes: 6,
        };
        assert!(e.to_string().contains('8'));
    }

    #[test]
    fn graph_errors_convert_and_chain() {
        let e: AllocError = GraphError::EmptyGraph.into();
        assert!(matches!(e, AllocError::Graph(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e: AllocError = FcmError::NothingToCompose.into();
        assert!(matches!(e, AllocError::Fcm(_)));
    }

    #[test]
    fn is_send_sync() {
        fn check<E: std::error::Error + Send + Sync + 'static>(_: E) {}
        check(AllocError::UnknownSwNode { index: 0 });
    }
}
