//! The SW graph of process-level FCMs (paper §5.1).
//!
//! "For SW, a weighted directed graph of process FCMs is created … Nodes
//! are the FCMs, with unidirectional edges weighted by influence. Replicas
//! are connected by edges of weight 0; there is no edge in any other case
//! of non-influence. Each node has an associated list of attributes."

use std::collections::BTreeSet;
use std::fmt;

use fcm_core::{AttributeSet, ImportanceWeights};
use fcm_graph::{DiGraph, NodeIdx};

use crate::error::AllocError;

/// A node of the SW graph: one process-level FCM (possibly a replica, and
/// after clustering, possibly a set of merged processes).
#[derive(Debug, Clone, PartialEq)]
pub struct SwNode {
    /// Display name, e.g. `"p1"` or `"p1a"` for a replica.
    pub name: String,
    /// Combined attribute vector.
    pub attributes: AttributeSet,
    /// Replica-group tag: replicas of one module share a tag and may
    /// never be combined or co-located.
    pub replica_group: Option<u32>,
    /// Resource tags this process needs on its host processor (the
    /// paper's "need for a resource present on only one processor").
    pub required_resources: BTreeSet<String>,
    /// Pin to a specific HW node by name — the paper's §4.3: attributes
    /// can "require a particular SW FCM to be mapped onto a specific HW
    /// module". `None` = free placement.
    pub pinned_to: Option<String>,
    /// Anti-affinity tag — the paper's §4.3: attributes can "forbid
    /// certain FCMs being combined". Nodes sharing a tag may never share
    /// a cluster (unlike replica groups they carry no shared-module
    /// semantics for reliability).
    pub separation_group: Option<u32>,
}

impl SwNode {
    /// Creates a plain (non-replica) node.
    pub fn new(name: impl Into<String>, attributes: AttributeSet) -> Self {
        SwNode {
            name: name.into(),
            attributes,
            replica_group: None,
            required_resources: BTreeSet::new(),
            pinned_to: None,
            separation_group: None,
        }
    }

    /// Adds a required resource tag (builder style).
    pub fn with_required_resource(mut self, tag: impl Into<String>) -> Self {
        self.required_resources.insert(tag.into());
        self
    }

    /// The §5.1 importance: a weighted sum of the attribute values.
    pub fn importance(&self, weights: &ImportanceWeights) -> f64 {
        self.attributes.importance(weights)
    }

    /// Whether `self` and `other` are replicas of the same module.
    pub fn is_replica_of(&self, other: &SwNode) -> bool {
        matches!((self.replica_group, other.replica_group), (Some(a), Some(b)) if a == b)
    }

    /// Whether `self` and `other` may never share a cluster: replicas of
    /// one module, or members of one anti-affinity separation group.
    pub fn must_separate_from(&self, other: &SwNode) -> bool {
        self.is_replica_of(other)
            || matches!(
                (self.separation_group, other.separation_group),
                (Some(a), Some(b)) if a == b
            )
    }
}

impl fmt::Display for SwNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// An edge of the SW graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SwEdge {
    /// Directed influence in `(0, 1]`.
    Influence(f64),
    /// The 0-weight link between two replicas of one module.
    ReplicaLink,
}

impl SwEdge {
    /// The influence value (0 for a replica link), used wherever the graph
    /// algorithms need a numeric weight.
    pub fn influence(self) -> f64 {
        match self {
            SwEdge::Influence(v) => v,
            SwEdge::ReplicaLink => 0.0,
        }
    }
}

impl From<SwEdge> for f64 {
    fn from(e: SwEdge) -> f64 {
        e.influence()
    }
}

impl fmt::Display for SwEdge {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SwEdge::Influence(v) => write!(f, "{v}"),
            SwEdge::ReplicaLink => f.write_str("0 (replica)"),
        }
    }
}

/// The SW graph: a directed influence graph over [`SwNode`]s.
pub type SwGraph = DiGraph<SwNode, SwEdge>;

/// Builder for SW graphs with validation of influence values.
///
/// # Example
///
/// ```
/// use fcm_alloc::sw::SwGraphBuilder;
/// use fcm_core::AttributeSet;
///
/// let mut b = SwGraphBuilder::new();
/// let p1 = b.add_process("p1", AttributeSet::default().with_criticality(10));
/// let p2 = b.add_process("p2", AttributeSet::default().with_criticality(8));
/// b.add_influence(p1, p2, 0.5)?;
/// b.add_influence(p2, p1, 0.7)?;
/// let g = b.build();
/// assert_eq!(g.node_count(), 2);
/// assert!((g.mutual_weight(p1, p2) - 1.2).abs() < 1e-12);
/// # Ok::<(), fcm_alloc::AllocError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct SwGraphBuilder {
    graph: SwGraph,
    next_replica_group: u32,
    next_separation_group: u32,
}

impl SwGraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        SwGraphBuilder::default()
    }

    /// Adds a process node.
    pub fn add_process(&mut self, name: impl Into<String>, attributes: AttributeSet) -> NodeIdx {
        self.graph.add_node(SwNode::new(name, attributes))
    }

    /// Adds a directed influence edge.
    ///
    /// # Errors
    ///
    /// * [`AllocError::InvalidInfluence`] — `influence` outside `(0, 1]`
    ///   (weight 0 is reserved for replica links);
    /// * [`AllocError::Graph`] — invalid endpoints.
    pub fn add_influence(
        &mut self,
        from: NodeIdx,
        to: NodeIdx,
        influence: f64,
    ) -> Result<(), AllocError> {
        if influence.is_nan() || influence <= 0.0 || influence > 1.0 {
            return Err(AllocError::InvalidInfluence { value: influence });
        }
        self.graph
            .try_add_edge(from, to, SwEdge::Influence(influence))?;
        Ok(())
    }

    /// Adds a directed influence edge computed from fault factors via the
    /// paper's Eq. 1 + Eq. 2 — the intended workflow once factor
    /// probabilities have been measured (e.g. by `fcm-sim` campaigns).
    /// No edge is added when the combined influence is zero ("there is no
    /// edge in any other case of non-influence").
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::Graph`] for invalid endpoints.
    pub fn add_influence_from_factors(
        &mut self,
        from: NodeIdx,
        to: NodeIdx,
        factors: &[fcm_core::FaultFactor],
    ) -> Result<Option<f64>, AllocError> {
        let influence = fcm_core::Influence::from_factors(factors).value();
        if influence <= 0.0 {
            // Validate the endpoints anyway so errors do not depend on
            // the factor values.
            if self.graph.node(from).is_none() {
                return Err(AllocError::UnknownSwNode {
                    index: from.index(),
                });
            }
            if self.graph.node(to).is_none() {
                return Err(AllocError::UnknownSwNode { index: to.index() });
            }
            return Ok(None);
        }
        self.add_influence(from, to, influence)?;
        Ok(Some(influence))
    }

    /// Marks a set of nodes as replicas of one module: tags them with a
    /// fresh replica group and links each pair with a 0-weight
    /// [`SwEdge::ReplicaLink`] (both directions, matching the paper's
    /// figures).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::UnknownSwNode`] for an invalid index.
    pub fn mark_replicas(&mut self, nodes: &[NodeIdx]) -> Result<u32, AllocError> {
        for &n in nodes {
            if self.graph.node(n).is_none() {
                return Err(AllocError::UnknownSwNode { index: n.index() });
            }
        }
        let group = self.next_replica_group;
        self.next_replica_group += 1;
        for &n in nodes {
            self.graph
                .node_mut(n)
                .expect("validated above")
                .replica_group = Some(group);
        }
        for (i, &a) in nodes.iter().enumerate() {
            for &b in &nodes[i + 1..] {
                self.graph.add_edge(a, b, SwEdge::ReplicaLink);
                self.graph.add_edge(b, a, SwEdge::ReplicaLink);
            }
        }
        Ok(group)
    }

    /// Forbids the given nodes from ever sharing a cluster (a fresh
    /// anti-affinity separation group) — §4.3's "forbid certain FCMs
    /// being combined". Unlike [`SwGraphBuilder::mark_replicas`] this
    /// adds no 0-weight edges and no shared-module semantics.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::UnknownSwNode`] for an invalid index.
    pub fn forbid_colocation(&mut self, nodes: &[NodeIdx]) -> Result<u32, AllocError> {
        for &n in nodes {
            if self.graph.node(n).is_none() {
                return Err(AllocError::UnknownSwNode { index: n.index() });
            }
        }
        let group = self.next_separation_group;
        self.next_separation_group += 1;
        for &n in nodes {
            self.graph
                .node_mut(n)
                .expect("validated above")
                .separation_group = Some(group);
        }
        Ok(group)
    }

    /// Pins a node to the named HW node — §4.3's "require a particular SW
    /// FCM to be mapped onto a specific HW module".
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::UnknownSwNode`] for an invalid index.
    pub fn pin_to_hw(
        &mut self,
        node: NodeIdx,
        hw_name: impl Into<String>,
    ) -> Result<(), AllocError> {
        self.graph
            .node_mut(node)
            .ok_or(AllocError::UnknownSwNode {
                index: node.index(),
            })?
            .pinned_to = Some(hw_name.into());
        Ok(())
    }

    /// Finishes the build.
    pub fn build(self) -> SwGraph {
        self.graph
    }
}

/// Sum of influence crossing between different groups of a partition —
/// the quantity every clustering heuristic tries to minimise ("group the
/// nodes into sets such that the sum of weights between the sets is
/// minimized").
pub fn cross_partition_influence(g: &SwGraph, groups: &[Vec<NodeIdx>]) -> f64 {
    let mut membership = vec![usize::MAX; g.node_count()];
    for (gi, group) in groups.iter().enumerate() {
        for &n in group {
            membership[n.index()] = gi;
        }
    }
    g.edges()
        .filter(|(_, e)| {
            let (a, b) = (membership[e.from.index()], membership[e.to.index()]);
            a != b && a != usize::MAX && b != usize::MAX
        })
        .map(|(_, e)| e.weight.influence())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcm_core::FaultTolerance;

    fn attrs(c: u32) -> AttributeSet {
        AttributeSet::default().with_criticality(c)
    }

    #[test]
    fn builder_adds_nodes_and_edges() {
        let mut b = SwGraphBuilder::new();
        let p1 = b.add_process("p1", attrs(10));
        let p2 = b.add_process("p2", attrs(8));
        b.add_influence(p1, p2, 0.5).unwrap();
        let g = b.build();
        assert_eq!(g.node(p1).unwrap().name, "p1");
        assert_eq!(g.edge_weight_between(p1, p2).unwrap().influence(), 0.5);
    }

    #[test]
    fn influence_range_is_validated() {
        let mut b = SwGraphBuilder::new();
        let p1 = b.add_process("p1", attrs(0));
        let p2 = b.add_process("p2", attrs(0));
        assert!(matches!(
            b.add_influence(p1, p2, 0.0),
            Err(AllocError::InvalidInfluence { .. })
        ));
        assert!(b.add_influence(p1, p2, 1.5).is_err());
        assert!(b.add_influence(p1, p2, f64::NAN).is_err());
        assert!(b.add_influence(p1, p2, 1.0).is_ok());
    }

    #[test]
    fn self_influence_is_rejected_via_graph_error() {
        let mut b = SwGraphBuilder::new();
        let p1 = b.add_process("p1", attrs(0));
        assert!(matches!(
            b.add_influence(p1, p1, 0.5),
            Err(AllocError::Graph(_))
        ));
    }

    #[test]
    fn factor_driven_influence_applies_eq1_and_eq2() {
        use fcm_core::{FactorKind, FaultFactor};
        let mut b = SwGraphBuilder::new();
        let src = b.add_process("src", attrs(0));
        let dst = b.add_process("dst", attrs(0));
        let f1 = FaultFactor::new(FactorKind::ParameterPassing, 1.0, 1.0, 0.3).unwrap();
        let f2 = FaultFactor::new(FactorKind::GlobalVariable, 1.0, 1.0, 0.2).unwrap();
        let added = b.add_influence_from_factors(src, dst, &[f1, f2]).unwrap();
        assert!((added.unwrap() - 0.44).abs() < 1e-12);
        let g = b.build();
        assert!((g.edge_weight_between(src, dst).unwrap().influence() - 0.44).abs() < 1e-12);
    }

    #[test]
    fn zero_influence_factors_add_no_edge() {
        use fcm_core::{FactorKind, FaultFactor};
        let mut b = SwGraphBuilder::new();
        let src = b.add_process("src", attrs(0));
        let dst = b.add_process("dst", attrs(0));
        let dead = FaultFactor::new(FactorKind::Timing, 0.0, 0.5, 0.5).unwrap();
        assert_eq!(
            b.add_influence_from_factors(src, dst, &[dead]).unwrap(),
            None
        );
        assert_eq!(b.add_influence_from_factors(src, dst, &[]).unwrap(), None);
        // Bad endpoints still error.
        assert!(b.add_influence_from_factors(src, NodeIdx(9), &[]).is_err());
        let g = b.build();
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn replicas_are_tagged_and_linked_with_zero_weight() {
        let mut b = SwGraphBuilder::new();
        let a = b.add_process("p1a", attrs(10));
        let c = b.add_process("p1b", attrs(10));
        let d = b.add_process("p1c", attrs(10));
        let group = b.mark_replicas(&[a, c, d]).unwrap();
        let g = b.build();
        assert!(g.node(a).unwrap().is_replica_of(g.node(c).unwrap()));
        assert_eq!(g.node(a).unwrap().replica_group, Some(group));
        // 3 pairs × 2 directions = 6 replica links.
        assert_eq!(g.edge_count(), 6);
        assert_eq!(g.edge_weight_between(a, c).unwrap().influence(), 0.0);
    }

    #[test]
    fn distinct_groups_are_not_replicas_of_each_other() {
        let mut b = SwGraphBuilder::new();
        let a1 = b.add_process("a1", attrs(0));
        let a2 = b.add_process("a2", attrs(0));
        let b1 = b.add_process("b1", attrs(0));
        let b2 = b.add_process("b2", attrs(0));
        b.mark_replicas(&[a1, a2]).unwrap();
        b.mark_replicas(&[b1, b2]).unwrap();
        let g = b.build();
        assert!(!g.node(a1).unwrap().is_replica_of(g.node(b1).unwrap()));
        // Plain nodes are replicas of nothing.
        let plain = SwNode::new("x", attrs(0));
        assert!(!plain.is_replica_of(g.node(a1).unwrap()));
    }

    #[test]
    fn mark_replicas_rejects_unknown_nodes() {
        let mut b = SwGraphBuilder::new();
        let a = b.add_process("a", attrs(0));
        assert!(matches!(
            b.mark_replicas(&[a, NodeIdx(9)]),
            Err(AllocError::UnknownSwNode { index: 9 })
        ));
    }

    #[test]
    fn importance_uses_attribute_weights() {
        let n = SwNode::new("x", attrs(10).with_fault_tolerance(FaultTolerance::TMR));
        let w = ImportanceWeights::default();
        assert!((n.importance(&w) - (10.0 + 1.5)).abs() < 1e-12);
    }

    #[test]
    fn cross_partition_influence_counts_only_crossing_edges() {
        let mut b = SwGraphBuilder::new();
        let n0 = b.add_process("a", attrs(0));
        let n1 = b.add_process("b", attrs(0));
        let n2 = b.add_process("c", attrs(0));
        b.add_influence(n0, n1, 0.5).unwrap();
        b.add_influence(n1, n2, 0.3).unwrap();
        b.add_influence(n2, n0, 0.2).unwrap();
        let g = b.build();
        let groups = vec![vec![n0, n1], vec![n2]];
        // Crossing: n1->n2 (0.3) and n2->n0 (0.2).
        assert!((cross_partition_influence(&g, &groups) - 0.5).abs() < 1e-12);
        // Everything in one group: nothing crosses.
        assert_eq!(cross_partition_influence(&g, &[vec![n0, n1, n2]]), 0.0);
    }

    #[test]
    fn forbid_colocation_tags_without_edges() {
        let mut b = SwGraphBuilder::new();
        let a = b.add_process("a", attrs(9));
        let c = b.add_process("b", attrs(8));
        let d = b.add_process("c", attrs(1));
        b.forbid_colocation(&[a, c]).unwrap();
        let g = b.build();
        assert!(g.node(a).unwrap().must_separate_from(g.node(c).unwrap()));
        assert!(!g.node(a).unwrap().must_separate_from(g.node(d).unwrap()));
        // No edges created, and they are not replicas.
        assert_eq!(g.edge_count(), 0);
        assert!(!g.node(a).unwrap().is_replica_of(g.node(c).unwrap()));
    }

    #[test]
    fn pinning_and_bad_indices() {
        let mut b = SwGraphBuilder::new();
        let a = b.add_process("a", attrs(0));
        b.pin_to_hw(a, "hw3").unwrap();
        assert!(b.pin_to_hw(NodeIdx(9), "hw0").is_err());
        assert!(b.forbid_colocation(&[a, NodeIdx(9)]).is_err());
        let g = b.build();
        assert_eq!(g.node(a).unwrap().pinned_to.as_deref(), Some("hw3"));
    }

    #[test]
    fn displays() {
        assert_eq!(SwEdge::Influence(0.7).to_string(), "0.7");
        assert_eq!(SwEdge::ReplicaLink.to_string(), "0 (replica)");
        assert_eq!(SwNode::new("p3", attrs(0)).to_string(), "p3");
    }
}
