//! SW-to-HW mapping (paper §5.3–§5.4 and the worked example of §6).
//!
//! A "good" mapping, per §5.3, satisfies absolute constraints first
//! (resources, schedulability — already guaranteed by the validated
//! [`Clustering`]), then contains faults (strongly influencing FCMs on
//! one node), then separates critical processes. Two satisficing
//! strategies are given:
//!
//! * **Approach A** ("importance of tasks", §5.4 and §6.1): clusters are
//!   placed in decreasing importance order, each onto the HW node that
//!   satisfies its resource needs with the smallest communication
//!   dilation to already-placed clusters;
//! * **Approach B** ("importance of attributes", §5.4 and §6.2): the most
//!   important attribute — criticality — drives everything: the SW list is
//!   sorted by criticality and the most critical process is combined with
//!   the least critical one, "so that the same faults affect a minimal
//!   number of such processes";
//! * the §6.2 closing example orders nodes purely by **timing** and
//!   first-fits them into processors — [`timing_refinement`].

use fcm_core::ImportanceWeights;
use fcm_graph::NodeIdx;

use crate::cluster::Clustering;
use crate::error::AllocError;
use crate::hw::HwGraph;
use crate::sw::SwGraph;

/// An injective assignment of clusters to HW nodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mapping {
    /// `assignment[cluster] = hw node`.
    assignment: Vec<NodeIdx>,
}

impl Mapping {
    /// Wraps a raw `assignment[cluster] = hw node` vector **without
    /// validation** — the constructor for analysis tooling and tests
    /// that must represent infeasible or degraded placements (the
    /// approach-A/B solvers only ever return validated mappings).
    /// Feasibility judgement stays with [`Mapping::validate`] and the
    /// `fcm-check` rule catalog.
    #[must_use]
    pub fn from_assignment(assignment: Vec<NodeIdx>) -> Mapping {
        Mapping { assignment }
    }

    /// The HW node hosting cluster `i`.
    pub fn hw_of(&self, cluster: usize) -> Option<NodeIdx> {
        self.assignment.get(cluster).copied()
    }

    /// Iterates over `(cluster index, hw node)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (usize, NodeIdx)> + '_ {
        self.assignment.iter().copied().enumerate()
    }

    /// Number of placed clusters.
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// Whether the mapping is empty.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Communication dilation: Σ over condensed influence edges of
    /// `influence × hop distance` between the endpoints' processors.
    /// On a complete HW graph this equals the residual cross-node
    /// influence; on sparser topologies remote placements are penalised.
    pub fn dilation(&self, g: &SwGraph, clustering: &Clustering, hw: &HwGraph) -> f64 {
        let cond = clustering.condensed(g);
        cond.graph
            .edges()
            .map(|(_, e)| {
                let d = hw.distance(
                    self.assignment[e.from.index()],
                    self.assignment[e.to.index()],
                );
                e.weight * d
            })
            .sum()
    }

    /// Checks that the mapping is injective, resource-feasible, and keeps
    /// replica-hosting clusters on distinct nodes (the last holds by
    /// injectivity; it is rechecked for defence in depth).
    ///
    /// # Errors
    ///
    /// Returns [`AllocError::NoFeasibleMapping`] describing the violation.
    pub fn validate(
        &self,
        g: &SwGraph,
        clustering: &Clustering,
        hw: &HwGraph,
    ) -> Result<(), AllocError> {
        if self.assignment.len() != clustering.len() {
            return Err(AllocError::NoFeasibleMapping {
                reason: format!(
                    "{} assignments for {} clusters",
                    self.assignment.len(),
                    clustering.len()
                ),
            });
        }
        let mut used = vec![false; hw.len()];
        for (ci, &h) in self.assignment.iter().enumerate() {
            let node = hw
                .node(h)
                .ok_or(AllocError::UnknownHwNode { index: h.index() })?;
            if used[h.index()] {
                return Err(AllocError::NoFeasibleMapping {
                    reason: format!("hw node {} hosts two clusters", node.name),
                });
            }
            used[h.index()] = true;
            for &sw in &clustering.clusters()[ci] {
                let req = &g
                    .node(sw)
                    .expect("validated cluster member")
                    .required_resources;
                if !req.is_subset(&node.resources) {
                    return Err(AllocError::NoFeasibleMapping {
                        reason: format!(
                            "cluster {} needs resources {:?} missing on {}",
                            clustering.cluster_name(g, ci),
                            req,
                            node.name
                        ),
                    });
                }
            }
            for &sw in &clustering.clusters()[ci] {
                if let Some(pin) = &g.node(sw).expect("validated cluster member").pinned_to {
                    if pin != &node.name {
                        return Err(AllocError::NoFeasibleMapping {
                            reason: format!(
                                "cluster {} is pinned to {pin} but placed on {}",
                                clustering.cluster_name(g, ci),
                                node.name
                            ),
                        });
                    }
                }
            }
            let demand = clustering.combined_attributes(g, ci).throughput.0;
            if demand > node.capacity {
                return Err(AllocError::NoFeasibleMapping {
                    reason: format!(
                        "cluster {} needs throughput {demand} exceeding capacity {} of {}",
                        clustering.cluster_name(g, ci),
                        node.capacity,
                        node.name
                    ),
                });
            }
        }
        for (a, b) in clustering.conflicting_pairs(g) {
            if self.assignment[a] == self.assignment[b] {
                return Err(AllocError::NoFeasibleMapping {
                    reason: "replica-hosting clusters share a hw node".into(),
                });
            }
        }
        Ok(())
    }
}

/// Approach A (§5.4): place clusters in decreasing importance, each onto
/// the resource-feasible free HW node minimising communication dilation
/// against the clusters already placed.
///
/// # Errors
///
/// * [`AllocError::TooFewHwNodes`] — more clusters than processors;
/// * [`AllocError::NoFeasibleMapping`] — resources cannot be satisfied.
pub fn approach_a(
    g: &SwGraph,
    clustering: &Clustering,
    hw: &HwGraph,
    weights: &ImportanceWeights,
) -> Result<Mapping, AllocError> {
    if clustering.len() > hw.len() {
        return Err(AllocError::TooFewHwNodes {
            clusters: clustering.len(),
            hw_nodes: hw.len(),
        });
    }
    let cond = clustering.condensed(g);
    // Order clusters constraint-first ("satisfaction of constraints …
    // this is always the primary concern", §5.3): clusters carrying pins
    // or resource requirements are placed before free clusters so the few
    // nodes that can satisfy them are still available; within each class,
    // most important first.
    let is_constrained = |ci: usize| {
        clustering.clusters()[ci].iter().any(|&sw| {
            let n = g.node(sw).expect("validated cluster member");
            n.pinned_to.is_some() || !n.required_resources.is_empty()
        })
    };
    let mut order: Vec<usize> = (0..clustering.len()).collect();
    order.sort_by(|&a, &b| {
        is_constrained(b)
            .cmp(&is_constrained(a))
            .then(
                clustering
                    .importance(g, b, weights)
                    .partial_cmp(&clustering.importance(g, a, weights))
                    .expect("finite importance"),
            )
            .then(a.cmp(&b))
    });

    let mut assignment = vec![NodeIdx(usize::MAX); clustering.len()];
    let mut used = vec![false; hw.len()];
    // HW names some cluster is pinned to: free clusters avoid them when a
    // tie allows, so pins can still be honoured later in the order.
    let pin_targets: std::collections::BTreeSet<&str> = g
        .nodes()
        .filter_map(|(_, n)| n.pinned_to.as_deref())
        .collect();
    for &ci in &order {
        // Candidates are ranked by dilation cost, then (to keep scarce
        // nodes for the clusters that need them) by: not being another
        // cluster's pin target, fewest special resources, and smallest
        // sufficient capacity (best fit).
        let mut best: Option<(NodeIdx, f64, (bool, usize, f64))> = None;
        let demand = clustering.combined_attributes(g, ci).throughput.0;
        // A pinned member restricts the cluster to its named HW node;
        // contradictory pins inside one cluster make it unplaceable.
        let mut pin: Option<&str> = None;
        let mut pin_conflict = false;
        for &sw in &clustering.clusters()[ci] {
            if let Some(p) = &g.node(sw).expect("validated cluster member").pinned_to {
                match pin {
                    None => pin = Some(p.as_str()),
                    Some(existing) if existing != p => pin_conflict = true,
                    _ => {}
                }
            }
        }
        if pin_conflict {
            return Err(AllocError::NoFeasibleMapping {
                reason: format!(
                    "cluster {} contains members pinned to different hw nodes",
                    clustering.cluster_name(g, ci)
                ),
            });
        }
        for (h, node) in hw.nodes() {
            if used[h.index()]
                || !cluster_resources_ok(g, clustering, ci, &node.resources)
                || demand > node.capacity
                || pin.is_some_and(|p| p != node.name)
            {
                continue;
            }
            // Dilation contribution against already-placed neighbours.
            let cost: f64 = cond
                .graph
                .edges()
                .filter_map(|(_, e)| {
                    let (a, b) = (e.from.index(), e.to.index());
                    let other = if a == ci {
                        b
                    } else if b == ci {
                        a
                    } else {
                        return None;
                    };
                    let placed = assignment[other];
                    if placed.index() == usize::MAX {
                        None
                    } else {
                        Some(e.weight * hw.distance(h, placed))
                    }
                })
                .sum();
            let tiebreak = (
                pin.is_none() && pin_targets.contains(node.name.as_str()),
                node.resources.len(),
                node.capacity,
            );
            let better = best.is_none_or(|(_, c, t)| {
                cost < c - 1e-12
                    || ((cost - c).abs() <= 1e-12
                        && (tiebreak.0, tiebreak.1)
                            .cmp(&(t.0, t.1))
                            .then(
                                tiebreak
                                    .2
                                    .partial_cmp(&t.2)
                                    .expect("capacities are not NaN"),
                            )
                            .is_lt())
            });
            if better {
                best = Some((h, cost, tiebreak));
            }
        }
        let (h, _, _) = best.ok_or_else(|| AllocError::NoFeasibleMapping {
            reason: format!(
                "no free hw node satisfies cluster {}",
                clustering.cluster_name(g, ci)
            ),
        })?;
        assignment[ci] = h;
        used[h.index()] = true;
    }
    let mapping = Mapping { assignment };
    mapping.validate(g, clustering, hw)?;
    Ok(mapping)
}

/// The §6.2 criticality pairing (the clustering half of Approach B):
///
/// 1. list processes in descending order of criticality;
/// 2. combine the most critical with the least critical, the second most
///    critical with the second least, and so on;
/// 3. on a conflict (replicas, timing), combine with "the process
///    preceding pl on the criticality list";
/// 4. re-rank the combined sets by summary criticality and repeat until
///    the desired number of nodes is obtained.
///
/// # Errors
///
/// * [`AllocError::Graph`] — invalid `target`;
/// * [`AllocError::NoFeasibleClustering`] — a stage makes no progress.
pub fn criticality_pairing(g: &SwGraph, target: usize) -> Result<Clustering, AllocError> {
    if target == 0 || target > g.node_count() {
        return Err(AllocError::Graph(fcm_graph::GraphError::TooManyParts {
            requested: target,
            nodes: g.node_count(),
        }));
    }
    let mut clustering = Clustering::singletons(g);
    while clustering.len() > target {
        // Rank clusters by summary criticality (max member criticality).
        let mut rank: Vec<usize> = (0..clustering.len()).collect();
        rank.sort_by(|&a, &b| {
            let ca = clustering.combined_attributes(g, a).criticality;
            let cb = clustering.combined_attributes(g, b).criticality;
            cb.cmp(&ca).then(a.cmp(&b))
        });
        // One stage of most-with-least pairing on the ranked list.
        let mut merges: Vec<(usize, usize)> = Vec::new();
        let mut taken = vec![false; clustering.len()];
        let mut hi = 0usize;
        while hi < rank.len() && clustering.len() - merges.len() > target {
            if taken[rank[hi]] {
                hi += 1;
                continue;
            }
            // Try the least critical untaken partner, then walk upward
            // ("combine ph with the process preceding pl").
            let mut merged = false;
            for lo in (hi + 1..rank.len()).rev() {
                if taken[rank[lo]] {
                    continue;
                }
                if clustering.can_merge(g, rank[hi], rank[lo]) {
                    taken[rank[hi]] = true;
                    taken[rank[lo]] = true;
                    merges.push((rank[hi], rank[lo]));
                    merged = true;
                    break;
                }
            }
            let _ = merged;
            hi += 1;
        }
        if merges.is_empty() {
            return Err(AllocError::NoFeasibleClustering {
                requested: target,
                reached: clustering.len(),
            });
        }
        // Apply merges from the highest indices down to keep indices valid.
        merges.sort_by_key(|&(a, b)| std::cmp::Reverse(a.max(b)));
        for (a, b) in merges {
            if let Ok(next) = clustering.merge_clusters(g, a, b) {
                clustering = next;
            }
        }
    }
    Ok(clustering)
}

/// Approach B (§5.4 + §6.2): criticality pairing down to at most the
/// platform size, then criticality-ordered placement (the most critical
/// cluster gets the lowest-index feasible node; later attributes only
/// break ties via dilation).
///
/// # Errors
///
/// Propagates [`criticality_pairing`] and placement failures.
pub fn approach_b(
    g: &SwGraph,
    hw: &HwGraph,
    weights: &ImportanceWeights,
) -> Result<(Clustering, Mapping), AllocError> {
    let clustering = criticality_pairing(g, hw.len().min(g.node_count()))?;
    let mapping = approach_a(g, &clustering, hw, weights)?;
    Ok((clustering, mapping))
}

/// The §6.2 closing technique: order SW nodes by their timing attributes
/// (EST, then TCD), walk the ordered list, and first-fit each node into an
/// existing cluster ("maintaining their compliance to the specified
/// constraints"), opening a new cluster — up to `target` — when none
/// accepts.
///
/// # Errors
///
/// * [`AllocError::Graph`] — invalid `target`;
/// * [`AllocError::NoFeasibleClustering`] — a node fits no cluster and the
///   cluster budget is exhausted.
pub fn timing_refinement(g: &SwGraph, target: usize) -> Result<Clustering, AllocError> {
    if target == 0 || target > g.node_count() {
        return Err(AllocError::Graph(fcm_graph::GraphError::TooManyParts {
            requested: target,
            nodes: g.node_count(),
        }));
    }
    let mut order: Vec<NodeIdx> = g.node_indices().collect();
    order.sort_by_key(|&n| {
        let t = g.node(n).expect("valid index").attributes.timing;
        (
            t.map_or(u64::MAX, |t| t.est),
            t.map_or(u64::MAX, |t| t.tcd),
            n,
        )
    });
    let mut groups: Vec<Vec<NodeIdx>> = Vec::new();
    'nodes: for v in order {
        for group in &mut groups {
            let mut candidate = group.clone();
            candidate.push(v);
            if group_is_valid(g, &candidate) {
                group.push(v);
                continue 'nodes;
            }
        }
        if groups.len() < target {
            groups.push(vec![v]);
        } else {
            return Err(AllocError::NoFeasibleClustering {
                requested: target,
                reached: groups.len(),
            });
        }
    }
    Clustering::new(g, groups)
}

fn group_is_valid(g: &SwGraph, group: &[NodeIdx]) -> bool {
    let mut partition = vec![group.to_vec()];
    let inside: Vec<bool> = {
        let mut v = vec![false; g.node_count()];
        for &m in group {
            v[m.index()] = true;
        }
        v
    };
    partition.extend(
        g.node_indices()
            .filter(|n| !inside[n.index()])
            .map(|n| vec![n]),
    );
    Clustering::new(g, partition).is_ok()
}

fn cluster_resources_ok(
    g: &SwGraph,
    clustering: &Clustering,
    ci: usize,
    available: &std::collections::BTreeSet<String>,
) -> bool {
    clustering.clusters()[ci].iter().all(|&sw| {
        g.node(sw)
            .expect("validated cluster member")
            .required_resources
            .is_subset(available)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw::SwGraphBuilder;
    use fcm_core::AttributeSet;

    fn attrs(c: u32) -> AttributeSet {
        AttributeSet::default().with_criticality(c)
    }

    fn line_graph() -> SwGraph {
        let mut b = SwGraphBuilder::new();
        let n: Vec<_> = (0..4)
            .map(|i| b.add_process(format!("p{i}"), attrs(10 - i as u32)))
            .collect();
        b.add_influence(n[0], n[1], 0.8).unwrap();
        b.add_influence(n[1], n[2], 0.4).unwrap();
        b.add_influence(n[2], n[3], 0.2).unwrap();
        b.build()
    }

    #[test]
    fn approach_a_places_every_cluster_on_its_own_node() {
        let g = line_graph();
        let c = Clustering::singletons(&g);
        let hw = HwGraph::complete(4);
        let m = approach_a(&g, &c, &hw, &ImportanceWeights::default()).unwrap();
        assert_eq!(m.len(), 4);
        m.validate(&g, &c, &hw).unwrap();
        let mut hosts: Vec<usize> = m.iter().map(|(_, h)| h.index()).collect();
        hosts.sort_unstable();
        hosts.dedup();
        assert_eq!(hosts.len(), 4);
    }

    #[test]
    fn approach_a_rejects_undersized_platform() {
        let g = line_graph();
        let c = Clustering::singletons(&g);
        let hw = HwGraph::complete(3);
        assert!(matches!(
            approach_a(&g, &c, &hw, &ImportanceWeights::default()),
            Err(AllocError::TooFewHwNodes {
                clusters: 4,
                hw_nodes: 3
            })
        ));
    }

    #[test]
    fn approach_a_minimises_dilation_on_a_ring() {
        // Strongly coupled clusters land on adjacent ring nodes.
        let g = line_graph();
        let c = Clustering::singletons(&g);
        let hw = HwGraph::ring(4);
        let m = approach_a(&g, &c, &hw, &ImportanceWeights::default()).unwrap();
        // p0 and p1 (influence 0.8) must be neighbours on the ring.
        let d01 = hw.distance(m.hw_of(0).unwrap(), m.hw_of(1).unwrap());
        assert_eq!(d01, 1.0);
    }

    #[test]
    fn approach_a_respects_resource_requirements() {
        let mut b = SwGraphBuilder::new();
        let gps = b.add_process("gps_user", attrs(1));
        let other = b.add_process("other", attrs(9));
        let mut g = b.build();
        g.node_mut(gps)
            .unwrap()
            .required_resources
            .insert("gps".into());
        let mut hw = HwGraph::complete(2);
        hw.node_mut(NodeIdx(1))
            .unwrap()
            .resources
            .insert("gps".into());
        let c = Clustering::singletons(&g);
        let m = approach_a(&g, &c, &hw, &ImportanceWeights::default()).unwrap();
        assert_eq!(m.hw_of(gps.index()).unwrap(), NodeIdx(1));
        let _ = other;
        // Without the resource anywhere, mapping fails.
        let bare = HwGraph::complete(2);
        assert!(matches!(
            approach_a(&g, &c, &bare, &ImportanceWeights::default()),
            Err(AllocError::NoFeasibleMapping { .. })
        ));
    }

    #[test]
    fn approach_a_respects_throughput_capacity() {
        let mut b = SwGraphBuilder::new();
        let heavy = b.add_process("heavy", attrs(9).with_throughput(3.0));
        let light = b.add_process("light", attrs(1).with_throughput(0.5));
        let g = b.build();
        let c = Clustering::singletons(&g);
        // One big node and one small node: heavy must take the big one.
        let hw = HwGraph::new(
            vec![
                crate::hw::HwNode::new("small").with_capacity(1.0),
                crate::hw::HwNode::new("big").with_capacity(4.0),
            ],
            &[(0, 1, 1.0)],
        );
        let m = approach_a(&g, &c, &hw, &ImportanceWeights::default()).unwrap();
        assert_eq!(m.hw_of(heavy.index()).unwrap(), NodeIdx(1));
        assert_eq!(m.hw_of(light.index()).unwrap(), NodeIdx(0));
        m.validate(&g, &c, &hw).unwrap();
        // A platform of only small nodes is infeasible.
        let tiny = HwGraph::new(
            vec![
                crate::hw::HwNode::new("s0").with_capacity(1.0),
                crate::hw::HwNode::new("s1").with_capacity(1.0),
            ],
            &[(0, 1, 1.0)],
        );
        assert!(matches!(
            approach_a(&g, &c, &tiny, &ImportanceWeights::default()),
            Err(AllocError::NoFeasibleMapping { .. })
        ));
    }

    #[test]
    fn pinned_nodes_land_on_their_hw_node() {
        let mut b = SwGraphBuilder::new();
        let free = b.add_process("free", attrs(9));
        let pinned = b.add_process("pinned", attrs(1));
        b.pin_to_hw(pinned, "hw2").unwrap();
        let g = b.build();
        let c = Clustering::singletons(&g);
        let hw = HwGraph::complete(3);
        let m = approach_a(&g, &c, &hw, &ImportanceWeights::default()).unwrap();
        assert_eq!(
            hw.node(m.hw_of(pinned.index()).unwrap()).unwrap().name,
            "hw2"
        );
        m.validate(&g, &c, &hw).unwrap();
        let _ = free;
        // A platform without the named node is infeasible.
        let mut tiny = HwGraph::complete(2); // hw0, hw1 only
        let _ = tiny.node_mut(NodeIdx(0));
        assert!(matches!(
            approach_a(&g, &c, &tiny, &ImportanceWeights::default()),
            Err(AllocError::NoFeasibleMapping { .. })
        ));
    }

    #[test]
    fn contradictory_pins_in_one_cluster_are_rejected() {
        let mut b = SwGraphBuilder::new();
        let a = b.add_process("a", attrs(5));
        let c = b.add_process("b", attrs(5));
        b.pin_to_hw(a, "hw0").unwrap();
        b.pin_to_hw(c, "hw1").unwrap();
        let g = b.build();
        let clustering = Clustering::new(&g, vec![vec![a, c]]).unwrap();
        let hw = HwGraph::complete(2);
        assert!(matches!(
            approach_a(&g, &clustering, &hw, &ImportanceWeights::default()),
            Err(AllocError::NoFeasibleMapping { .. })
        ));
    }

    #[test]
    fn criticality_pairing_combines_most_with_least() {
        let g = line_graph(); // criticalities 10, 9, 8, 7
        let c = criticality_pairing(&g, 2).unwrap();
        assert_eq!(c.len(), 2);
        // Pairing: (p0, p3) and (p1, p2).
        let mut names: Vec<String> = (0..2).map(|i| c.cluster_name(&g, i)).collect();
        names.sort();
        assert_eq!(names, vec!["p0,3", "p1,2"]);
    }

    #[test]
    fn criticality_pairing_walks_up_on_conflict() {
        // Most critical p0 conflicts (timing) with least critical p3, so it
        // must pair with p2 instead.
        let mut b = SwGraphBuilder::new();
        let p0 = b.add_process("p0", attrs(10).with_timing(0, 6, 4));
        let p1 = b.add_process("p1", attrs(9));
        let p2 = b.add_process("p2", attrs(8));
        let p3 = b.add_process("p3", attrs(7).with_timing(0, 6, 4));
        let g = b.build();
        let c = criticality_pairing(&g, 2).unwrap();
        let cluster_with_p0 = c.clusters().iter().find(|grp| grp.contains(&p0)).unwrap();
        assert!(cluster_with_p0.contains(&p2));
        assert!(!cluster_with_p0.contains(&p3));
        let _ = p1;
    }

    #[test]
    fn criticality_pairing_respects_replicas() {
        let mut b = SwGraphBuilder::new();
        let r1 = b.add_process("p1a", attrs(10));
        let r2 = b.add_process("p1b", attrs(10));
        b.mark_replicas(&[r1, r2]).unwrap();
        let g = b.build();
        assert!(matches!(
            criticality_pairing(&g, 1),
            Err(AllocError::NoFeasibleClustering { .. })
        ));
        assert_eq!(criticality_pairing(&g, 2).unwrap().len(), 2);
    }

    #[test]
    fn approach_b_returns_clustering_and_mapping() {
        let g = line_graph();
        let hw = HwGraph::complete(2);
        let (c, m) = approach_b(&g, &hw, &ImportanceWeights::default()).unwrap();
        assert_eq!(c.len(), 2);
        m.validate(&g, &c, &hw).unwrap();
    }

    #[test]
    fn timing_refinement_first_fits_in_est_order() {
        let mut b = SwGraphBuilder::new();
        // Two early jobs that conflict, one late job compatible with both.
        let a = b.add_process("pa", attrs(0).with_timing(0, 6, 4));
        let c = b.add_process("pb", attrs(0).with_timing(0, 6, 4));
        let late = b.add_process("pc", attrs(0).with_timing(10, 20, 4));
        let g = b.build();
        let clustering = timing_refinement(&g, 2).unwrap();
        assert_eq!(clustering.len(), 2);
        // The late job shares a cluster with one early job.
        let with_late = clustering
            .clusters()
            .iter()
            .find(|grp| grp.contains(&late))
            .unwrap();
        assert_eq!(with_late.len(), 2);
        let _ = (a, c);
    }

    #[test]
    fn timing_refinement_fails_when_target_too_small() {
        let mut b = SwGraphBuilder::new();
        b.add_process("pa", attrs(0).with_timing(0, 6, 4));
        b.add_process("pb", attrs(0).with_timing(0, 6, 4));
        let g = b.build();
        assert!(matches!(
            timing_refinement(&g, 1),
            Err(AllocError::NoFeasibleClustering { .. })
        ));
        assert!(timing_refinement(&g, 0).is_err());
    }

    #[test]
    fn dilation_is_zero_on_complete_when_influence_is_internal() {
        let g = line_graph();
        let c = Clustering::new(
            &g,
            vec![vec![NodeIdx(0), NodeIdx(1)], vec![NodeIdx(2), NodeIdx(3)]],
        )
        .unwrap();
        let hw = HwGraph::complete(2);
        let m = approach_a(&g, &c, &hw, &ImportanceWeights::default()).unwrap();
        // Only the 0.4 edge crosses; complete topology distance 1.
        assert!((m.dilation(&g, &c, &hw) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn validate_catches_double_occupancy() {
        let g = line_graph();
        let c = Clustering::new(
            &g,
            vec![vec![NodeIdx(0), NodeIdx(1)], vec![NodeIdx(2), NodeIdx(3)]],
        )
        .unwrap();
        let hw = HwGraph::complete(2);
        let bad = Mapping {
            assignment: vec![NodeIdx(0), NodeIdx(0)],
        };
        assert!(matches!(
            bad.validate(&g, &c, &hw),
            Err(AllocError::NoFeasibleMapping { .. })
        ));
        let short = Mapping {
            assignment: vec![NodeIdx(0)],
        };
        assert!(short.validate(&g, &c, &hw).is_err());
        assert!(!short.is_empty());
    }
}
