//! Failover remapping and degraded-mode shedding.
//!
//! When a HW node dies, the process FCMs of the cluster it hosted must
//! be re-placed onto the survivors without violating the constraints the
//! original mapping honoured: replica anti-affinity ("replicas … must be
//! mapped onto different HW nodes"), resource requirements and pins,
//! throughput capacity, and schedulability (via the exact
//! [`fcm_sched::Admission`] check). Victims are re-placed in descending
//! criticality order; criticality separation is kept as a soft
//! preference, exactly as in the original placement heuristics.
//!
//! When no feasible placement exists, [`ShedPolicy`] decides between
//! failing ([`ShedPolicy::Never`]) and degraded mode
//! ([`ShedPolicy::ShedBelow`]): the lowest-criticality FCMs are shed
//! first — a victim below the threshold is dropped when it fits nowhere,
//! and a *critical* victim may displace below-threshold FCMs from a
//! survivor. FCMs at or above the threshold are never shed.

use fcm_graph::NodeIdx;
use fcm_sched::{Admission, Job, JobId};

use crate::cluster::Clustering;
use crate::error::AllocError;
use crate::hw::HwGraph;
use crate::mapping::Mapping;
use crate::sw::{SwEdge, SwGraph};

/// What to do when a victim FCM fits on no surviving node.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShedPolicy {
    /// Fail the whole remap: every victim must be re-placed.
    Never,
    /// Degraded mode: FCMs with criticality **below** `critical_at` may
    /// be shed (lowest criticality first); FCMs at or above the
    /// threshold are never shed, and a critical victim may displace
    /// sheddable FCMs from a survivor to make room.
    ShedBelow {
        /// Criticality threshold: `criticality >= critical_at` is
        /// protected.
        critical_at: u32,
    },
}

impl ShedPolicy {
    fn may_shed(&self, criticality: u32) -> bool {
        match *self {
            ShedPolicy::Never => false,
            ShedPolicy::ShedBelow { critical_at } => criticality < critical_at,
        }
    }
}

/// The result of a successful failover remap.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverOutcome {
    /// Destination per victim FCM, in placement (descending criticality)
    /// order: `Some(hw)` = moved there, `None` = shed.
    pub placement: Vec<(NodeIdx, Option<NodeIdx>)>,
    /// Victim FCMs successfully moved to a survivor.
    pub moved: Vec<NodeIdx>,
    /// FCMs dropped to reach feasibility: unplaceable victims plus any
    /// survivor-hosted FCMs displaced to admit a critical victim.
    pub shed: Vec<NodeIdx>,
    /// Whether the system is running degraded (something was shed).
    pub degraded: bool,
}

/// Per-survivor placement state during the remap.
struct Host {
    hw: NodeIdx,
    /// SW nodes currently hosted (original members plus placed victims).
    members: Vec<NodeIdx>,
    admission: Admission,
    throughput: f64,
}

/// Re-places the FCMs of the cluster hosted on `dead` onto the surviving
/// HW nodes, honouring replica anti-affinity, resources, pins, capacity
/// and EDF admission; `policy` governs degraded-mode shedding.
///
/// # Errors
///
/// * [`AllocError::UnknownHwNode`] — `dead` is out of range;
/// * [`AllocError::NoFeasibleMapping`] — a victim fits nowhere and the
///   policy forbids shedding it (including every protected victim that
///   cannot displace enough sheddable load).
pub fn remap(
    g: &SwGraph,
    clustering: &Clustering,
    mapping: &Mapping,
    hw: &HwGraph,
    dead: NodeIdx,
    policy: ShedPolicy,
) -> Result<FailoverOutcome, AllocError> {
    if hw.node(dead).is_none() {
        return Err(AllocError::UnknownHwNode {
            index: dead.index(),
        });
    }
    // The victims: members of the cluster hosted on the dead node.
    let victim_cluster = mapping.iter().find(|&(_, h)| h == dead).map(|(ci, _)| ci);
    let mut victims: Vec<NodeIdx> = match victim_cluster {
        Some(ci) => clustering.clusters()[ci].clone(),
        None => Vec::new(), // the dead node was idle
    };
    // Most critical first; index breaks ties deterministically.
    victims.sort_by_key(|&v| (std::cmp::Reverse(criticality(g, v)), v));

    // Survivor state: every live HW node, with the members of the
    // cluster it already hosts (free nodes start empty).
    let mut hosts: Vec<Host> = Vec::new();
    for (h, _) in hw.nodes() {
        if h == dead {
            continue;
        }
        let members: Vec<NodeIdx> = mapping
            .iter()
            .find(|&(_, hosted_on)| hosted_on == h)
            .map(|(ci, _)| clustering.clusters()[ci].clone())
            .unwrap_or_default();
        let jobs: Vec<Job> = members.iter().filter_map(|&m| timing_job(g, m)).collect();
        let admission =
            Admission::with_baseline(&jobs).ok_or_else(|| AllocError::NoFeasibleMapping {
                reason: format!(
                    "surviving node {} carries an infeasible baseline",
                    hw.node(h).expect("iterated node").name
                ),
            })?;
        let throughput = members.iter().map(|&m| throughput_of(g, m)).sum();
        hosts.push(Host {
            hw: h,
            members,
            admission,
            throughput,
        });
    }

    let mut placement = Vec::with_capacity(victims.len());
    let mut moved = Vec::new();
    let mut shed = Vec::new();
    for &v in &victims {
        match place(g, hw, &mut hosts, v, policy, &mut shed)? {
            Some(h) => {
                placement.push((v, Some(h)));
                moved.push(v);
            }
            None => {
                placement.push((v, None));
                shed.push(v);
            }
        }
    }
    shed.sort_unstable();
    shed.dedup();
    let degraded = !shed.is_empty();
    Ok(FailoverOutcome {
        placement,
        moved,
        shed,
        degraded,
    })
}

/// Places one victim, preferring hosts that minimise criticality
/// co-location, then load, then index. Returns `Ok(None)` when the
/// victim was shed, and an error when it fits nowhere and is protected.
fn place(
    g: &SwGraph,
    hw: &HwGraph,
    hosts: &mut [Host],
    v: NodeIdx,
    policy: ShedPolicy,
    shed: &mut Vec<NodeIdx>,
) -> Result<Option<NodeIdx>, AllocError> {
    let crit_v = criticality(g, v);
    // Pass 1: direct placement. Score = (criticality co-location burden,
    // resulting throughput, hw index) — all deterministic.
    let mut best: Option<(usize, (u64, f64, usize))> = None;
    for (i, host) in hosts.iter().enumerate() {
        if !hard_constraints_ok(g, hw, host, v) {
            continue;
        }
        if !admits(&host.admission, timing_job(g, v)) {
            continue;
        }
        let score = host_score(g, host, v, crit_v);
        if best.is_none_or(|(_, s)| score_lt(score, s)) {
            best = Some((i, score));
        }
    }
    if let Some((i, _)) = best {
        commit(g, &mut hosts[i], v);
        return Ok(Some(hosts[i].hw));
    }
    // Pass 2 (degraded mode): a protected victim may displace sheddable
    // members; an unprotected victim is simply shed.
    if policy.may_shed(crit_v) {
        return Ok(None);
    }
    if let ShedPolicy::ShedBelow { .. } = policy {
        let mut best: Option<(usize, Vec<NodeIdx>, HostScore)> = None;
        for (i, host) in hosts.iter().enumerate() {
            if !hard_constraints_ok(g, hw, host, v) {
                continue;
            }
            if let Some(displaced) = displacement_plan(g, hw, host, v, policy) {
                let score = host_score(g, host, v, crit_v);
                let better = match &best {
                    None => true,
                    Some((_, d, s)) => {
                        displaced.len() < d.len()
                            || (displaced.len() == d.len() && score_lt(score, *s))
                    }
                };
                if better {
                    best = Some((i, displaced, score));
                }
            }
        }
        if let Some((i, displaced, _)) = best {
            for &d in &displaced {
                let host = &mut hosts[i];
                host.members.retain(|&m| m != d);
                host.admission.release(d.index() as JobId);
                host.throughput -= throughput_of(g, d);
                shed.push(d);
            }
            commit(g, &mut hosts[i], v);
            return Ok(Some(hosts[i].hw));
        }
    }
    Err(AllocError::NoFeasibleMapping {
        reason: format!(
            "failover cannot re-place {} (criticality {crit_v}) on any survivor",
            g.node(v).expect("victim exists").name
        ),
    })
}

/// The sheddable members (lowest criticality first) whose removal lets
/// `v` fit on `host` under capacity and admission; `None` when even
/// shedding everything allowed does not help.
fn displacement_plan(
    g: &SwGraph,
    hw: &HwGraph,
    host: &Host,
    v: NodeIdx,
    policy: ShedPolicy,
) -> Option<Vec<NodeIdx>> {
    let mut sheddable: Vec<NodeIdx> = host
        .members
        .iter()
        .copied()
        .filter(|&m| policy.may_shed(criticality(g, m)))
        .collect();
    sheddable.sort_by_key(|&m| (criticality(g, m), m));
    let node = hw.node(host.hw).expect("host exists");
    let mut removed = Vec::new();
    let mut admission = host.admission.clone();
    let mut throughput = host.throughput;
    for m in sheddable {
        removed.push(m);
        admission.release(m.index() as JobId);
        throughput -= throughput_of(g, m);
        let fits = throughput + throughput_of(g, v) <= node.capacity
            && admits(&admission, timing_job(g, v));
        if fits {
            return Some(removed);
        }
    }
    None
}

/// Anti-affinity, resources, pin and capacity — the constraints that no
/// amount of shedding relaxes (shedding only frees CPU time and
/// throughput; separation conflicts involve protected replicas too, so
/// they are treated as hard here and rechecked against live members).
fn hard_constraints_ok(g: &SwGraph, hw: &HwGraph, host: &Host, v: NodeIdx) -> bool {
    let node = hw.node(host.hw).expect("host exists");
    let sw = g.node(v).expect("victim exists");
    if !sw.required_resources.is_subset(&node.resources) {
        return false;
    }
    if let Some(pin) = &sw.pinned_to {
        if pin != &node.name {
            return false;
        }
    }
    if host.members.iter().any(|&m| separated(g, v, m)) {
        return false;
    }
    host.throughput + sw.attributes.throughput.0 <= node.capacity
}

/// Whether `a` and `b` may never share a node: replica/separation tags,
/// or an explicit 0-weight replica link in either direction.
fn separated(g: &SwGraph, a: NodeIdx, b: NodeIdx) -> bool {
    let na = g.node(a).expect("valid index");
    let nb = g.node(b).expect("valid index");
    if na.must_separate_from(nb) {
        return true;
    }
    g.out_edges(a)
        .any(|(_, e)| e.to == b && matches!(e.weight, SwEdge::ReplicaLink))
        || g.out_edges(b)
            .any(|(_, e)| e.to == a && matches!(e.weight, SwEdge::ReplicaLink))
}

fn admits(admission: &Admission, job: Option<Job>) -> bool {
    match job {
        Some(job) => admission.would_admit(job),
        None => true, // no timing constraint: always schedulable
    }
}

fn commit(g: &SwGraph, host: &mut Host, v: NodeIdx) {
    if let Some(job) = timing_job(g, v) {
        let ok = host.admission.try_admit(job);
        debug_assert!(ok, "probe admitted but commit failed");
    }
    host.throughput += throughput_of(g, v);
    host.members.push(v);
}

/// Host preference score: (criticality co-location burden, load, index).
type HostScore = (u64, f64, usize);

fn host_score(g: &SwGraph, host: &Host, v: NodeIdx, crit_v: u32) -> HostScore {
    // Criticality co-location burden: pairing two highly critical FCMs
    // on one node is what the original heuristics avoid, so prefer the
    // host minimising Σ min(crit_v, crit_member).
    let burden: u64 = host
        .members
        .iter()
        .map(|&m| u64::from(crit_v.min(criticality(g, m))))
        .sum();
    let load = host.throughput + throughput_of(g, v);
    (burden, load, host.hw.index())
}

fn score_lt(a: HostScore, b: HostScore) -> bool {
    a.0.cmp(&b.0)
        .then(a.1.partial_cmp(&b.1).expect("finite load"))
        .then(a.2.cmp(&b.2))
        .is_lt()
}

fn criticality(g: &SwGraph, n: NodeIdx) -> u32 {
    g.node(n).expect("valid index").attributes.criticality.0
}

fn throughput_of(g: &SwGraph, n: NodeIdx) -> f64 {
    g.node(n).expect("valid index").attributes.throughput.0
}

fn timing_job(g: &SwGraph, n: NodeIdx) -> Option<Job> {
    g.node(n)
        .expect("valid index")
        .attributes
        .timing
        .map(|t| t.to_job(n.index() as JobId))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sw::SwGraphBuilder;
    use fcm_core::{AttributeSet, ImportanceWeights};

    fn attrs(c: u32) -> AttributeSet {
        AttributeSet::default().with_criticality(c)
    }

    /// Three singleton clusters (r_a, r_b replicas; low) mapped onto a
    /// 4-node platform, leaving hw3 free.
    fn replica_system() -> (SwGraph, Clustering, Mapping, HwGraph) {
        let mut b = SwGraphBuilder::new();
        let ra = b.add_process("r_a", attrs(9));
        let rb = b.add_process("r_b", attrs(9));
        let _low = b.add_process("low", attrs(1));
        b.mark_replicas(&[ra, rb]).unwrap();
        let g = b.build();
        let hw = HwGraph::complete(4);
        let c = Clustering::singletons(&g);
        let m = crate::mapping::approach_a(&g, &c, &hw, &ImportanceWeights::default()).unwrap();
        (g, c, m, hw)
    }

    fn host_of(m: &Mapping, c: &Clustering, sw: NodeIdx) -> NodeIdx {
        let ci = c
            .clusters()
            .iter()
            .position(|grp| grp.contains(&sw))
            .unwrap();
        m.hw_of(ci).unwrap()
    }

    #[test]
    fn victim_avoids_its_replicas_host() {
        let (g, c, m, hw) = replica_system();
        let (ra, rb) = (NodeIdx(0), NodeIdx(1));
        let dead = host_of(&m, &c, ra);
        let peer = host_of(&m, &c, rb);
        let out = remap(&g, &c, &m, &hw, dead, ShedPolicy::Never).unwrap();
        assert_eq!(out.moved, vec![ra]);
        assert!(out.shed.is_empty());
        assert!(!out.degraded);
        let (_, dest) = out.placement[0];
        let dest = dest.unwrap();
        assert_ne!(dest, peer, "replicas may not share a node");
        assert_ne!(dest, dead);
    }

    #[test]
    fn idle_dead_node_is_a_no_op() {
        let (g, c, m, hw) = replica_system();
        // hw3 hosts no cluster in a 3-cluster mapping on 4 nodes.
        let used: Vec<NodeIdx> = m.iter().map(|(_, h)| h).collect();
        let idle = (0..4).map(NodeIdx).find(|h| !used.contains(h)).unwrap();
        let out = remap(&g, &c, &m, &hw, idle, ShedPolicy::Never).unwrap();
        assert!(out.placement.is_empty());
        assert!(!out.degraded);
        // Out-of-range dead node errors.
        assert!(matches!(
            remap(&g, &c, &m, &hw, NodeIdx(9), ShedPolicy::Never),
            Err(AllocError::UnknownHwNode { index: 9 })
        ));
    }

    #[test]
    fn infeasible_without_shedding_errors_and_sheds_with_policy() {
        // Two nodes only: r_a and r_b replicas on hw0/hw1. Killing hw0
        // leaves r_a placeable only beside r_b — forbidden.
        let mut b = SwGraphBuilder::new();
        let ra = b.add_process("r_a", attrs(9));
        let rb = b.add_process("r_b", attrs(9));
        b.mark_replicas(&[ra, rb]).unwrap();
        let g = b.build();
        let hw = HwGraph::complete(2);
        let c = Clustering::singletons(&g);
        let m = crate::mapping::approach_a(&g, &c, &hw, &ImportanceWeights::default()).unwrap();
        let dead = host_of(&m, &c, ra);
        assert!(matches!(
            remap(&g, &c, &m, &hw, dead, ShedPolicy::Never),
            Err(AllocError::NoFeasibleMapping { .. })
        ));
        // Separation conflicts cannot be shed away either: the replica
        // is protected (criticality 9 ≥ 5), so degraded mode also fails…
        assert!(matches!(
            remap(&g, &c, &m, &hw, dead, ShedPolicy::ShedBelow { critical_at: 5 }),
            Err(AllocError::NoFeasibleMapping { .. })
        ));
        // …but with the threshold above the replicas' criticality the
        // victim itself is sheddable and the system degrades.
        let out = remap(
            &g,
            &c,
            &m,
            &hw,
            dead,
            ShedPolicy::ShedBelow { critical_at: 10 },
        )
        .unwrap();
        assert_eq!(out.shed, vec![ra]);
        assert!(out.degraded);
        assert!(out.moved.is_empty());
    }

    #[test]
    fn admission_rejects_a_timing_conflict() {
        // victim and survivor both need [0,6]×4: unschedulable together.
        let mut b = SwGraphBuilder::new();
        let v = b.add_process("v", attrs(8).with_timing(0, 6, 4));
        let s = b.add_process("s", attrs(8).with_timing(0, 6, 4));
        let free = b.add_process("f", attrs(1));
        let g = b.build();
        let hw = HwGraph::complete(3);
        let c = Clustering::singletons(&g);
        let m = crate::mapping::approach_a(&g, &c, &hw, &ImportanceWeights::default()).unwrap();
        let dead = host_of(&m, &c, v);
        let out = remap(&g, &c, &m, &hw, dead, ShedPolicy::Never).unwrap();
        let (_, dest) = out.placement[0];
        // v landed beside `f` (or alone), never beside `s`.
        assert_ne!(dest.unwrap(), host_of(&m, &c, s));
        let _ = free;
    }

    #[test]
    fn critical_victim_displaces_sheddable_load() {
        // One survivor, full window: critical victim must displace the
        // low-criticality member to fit.
        let mut b = SwGraphBuilder::new();
        let v = b.add_process("v", attrs(9).with_timing(0, 6, 4));
        let low = b.add_process("low", attrs(1).with_timing(0, 6, 4));
        let g = b.build();
        let hw = HwGraph::complete(2);
        let c = Clustering::singletons(&g);
        let m = crate::mapping::approach_a(&g, &c, &hw, &ImportanceWeights::default()).unwrap();
        let dead = host_of(&m, &c, v);
        // Without shedding: no room.
        assert!(remap(&g, &c, &m, &hw, dead, ShedPolicy::Never).is_err());
        let out = remap(
            &g,
            &c,
            &m,
            &hw,
            dead,
            ShedPolicy::ShedBelow { critical_at: 5 },
        )
        .unwrap();
        assert_eq!(out.moved, vec![v]);
        assert_eq!(out.shed, vec![low]);
        assert!(out.degraded);
        assert_eq!(out.placement[0].1, Some(host_of(&m, &c, low)));
    }

    #[test]
    fn placement_never_violates_admission_or_separation() {
        // Property-style sweep over every possible dead node of the
        // replica system: re-check all constraints on the outcome.
        let (g, c, m, hw) = replica_system();
        for dead in (0..hw.len()).map(NodeIdx) {
            let Ok(out) = remap(
                &g,
                &c,
                &m,
                &hw,
                dead,
                ShedPolicy::ShedBelow { critical_at: 10 },
            ) else {
                continue;
            };
            // Rebuild final membership: original clusters on survivors
            // minus shed, plus moved victims.
            let mut members: Vec<Vec<NodeIdx>> = vec![Vec::new(); hw.len()];
            for (ci, h) in m.iter() {
                if h != dead {
                    for &swn in &c.clusters()[ci] {
                        if !out.shed.contains(&swn) {
                            members[h.index()].push(swn);
                        }
                    }
                }
            }
            for &(swn, dest) in &out.placement {
                if let Some(h) = dest {
                    members[h.index()].push(swn);
                }
            }
            for (h, group) in members.iter().enumerate() {
                for (i, &a) in group.iter().enumerate() {
                    for &b in &group[i + 1..] {
                        assert!(!separated(&g, a, b), "separation violated on hw{h}");
                    }
                }
                let jobs: Vec<Job> = group.iter().filter_map(|&n| timing_job(&g, n)).collect();
                assert!(
                    Admission::with_baseline(&jobs).is_some(),
                    "infeasible job set on hw{h}"
                );
            }
        }
    }
}
