//! HW–SW allocation: clustering SW FCMs and mapping them onto hardware.
//!
//! Section 5 of the ICDCS'98 paper realises an integrated system in two
//! phases: "first, clustering of SW elements into FCMs; second, assigning
//! these elements to processors". This crate implements both phases:
//!
//! * [`sw`] — the weighted directed **SW graph** of process FCMs: nodes
//!   carry attributes and importance, edges carry influence; replicas are
//!   connected by 0-weight edges and "cannot be combined … and must be
//!   mapped onto different HW nodes";
//! * [`replication`] — expansion of a node with fault-tolerance
//!   requirement FT = k into k replica nodes ("an equivalent graph of
//!   three SW nodes with identical attributes and 0 edge weights");
//! * [`hw`] — the **HW graph** of processors (complete, ring, star, mesh
//!   topologies) with per-node resource tags;
//! * [`cluster`] — validated clusterings: replica anti-affinity,
//!   EDF-schedulability of each cluster, combined attributes, and the
//!   Eq. 4 condensed influence graph;
//! * [`pipeline`] — the **condensation pipeline**: an incrementally
//!   maintained Eq. 4 cluster influence matrix (bitwise-equal to a full
//!   recompute after every merge) that every heuristic drives through a
//!   pluggable [`pipeline::CondensePolicy`];
//! * [`heuristics`] — the paper's three condensation heuristics **H1**
//!   (greedy max mutual influence, plus the pair-all variant), **H2**
//!   (recursive min-cut, plus the largest-part variant) and **H3**
//!   (importance spheres), all expressed as pipeline policies;
//! * [`mapping`] — **Approach A** (importance-ordered assignment),
//!   **Approach B** (criticality-first lexicographic assignment, §6.2's
//!   most-with-least pairing) and the timing-ordered refinement of §6.2's
//!   closing example;
//! * [`failover`] — run-time re-placement of the FCMs stranded by a dead
//!   HW node onto the survivors (same constraints as the original
//!   mapping, exact admission via `fcm_sched`), with degraded-mode
//!   shedding of the lowest-criticality FCMs when nothing feasible
//!   remains.
//!
//! # Example
//!
//! ```
//! use fcm_alloc::{hw::HwGraph, heuristics, sw::SwGraphBuilder};
//! use fcm_core::AttributeSet;
//!
//! let mut b = SwGraphBuilder::new();
//! let a = b.add_process("a", AttributeSet::default().with_criticality(5));
//! let c = b.add_process("b", AttributeSet::default().with_criticality(1));
//! b.add_influence(a, c, 0.4)?;
//! let sw = b.build();
//! let hw = HwGraph::complete(1);
//! let clustering = heuristics::h1(&sw, 1)?;
//! assert_eq!(clustering.clusters().len(), 1);
//! # let _ = hw;
//! # Ok::<(), fcm_alloc::AllocError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
mod error;
pub mod failover;
pub mod heuristics;
pub mod hw;
pub mod mapping;
pub mod pipeline;
pub mod replication;
pub mod sw;

pub use cluster::Clustering;
pub use error::AllocError;
pub use pipeline::{CondensePipeline, CondensePolicy, H1Greedy, H1PairAll, PartitionReplay};
pub use failover::{FailoverOutcome, ShedPolicy};
pub use hw::{HwGraph, HwNode};
pub use mapping::Mapping;
pub use sw::{SwGraph, SwGraphBuilder, SwNode};
