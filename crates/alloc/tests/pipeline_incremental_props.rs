//! Property tests of the condensation pipeline's incremental Eq. 4
//! update: after **every** merge a policy performs, the incrementally
//! maintained influence matrix must be **bitwise** equal to a full
//! Eq. 2/Eq. 4 recompute (`condense(..).influence_matrix()`) on the
//! condensed graph — not merely within a tolerance.

use fcm_alloc::pipeline::{CondensePipeline, CondensePolicy, H1Greedy, H1PairAll, PartitionReplay};
use fcm_alloc::sw::{SwGraph, SwGraphBuilder};
use fcm_core::AttributeSet;
use fcm_graph::{condense, CombineRule};
use fcm_substrate::prop;
use fcm_substrate::rng::Rng;
use fcm_substrate::{prop_assert, prop_assert_eq};

/// A random SW graph: influences in (0, 1], a sprinkling of replica
/// pairs (the constraint H1's worked example trips over) and of timing
/// constraints (so schedulability also prunes merges).
fn random_sw_graph(rng: &mut Rng, n: usize, density: f64) -> SwGraph {
    let mut b = SwGraphBuilder::new();
    let nodes: Vec<_> = (0..n)
        .map(|i| {
            let mut attrs = AttributeSet::default().with_criticality(rng.gen_range(0..10u32));
            if rng.gen::<f64>() < 0.3 {
                attrs = attrs.with_timing(0, 20, rng.gen_range(2..=6u64));
            }
            b.add_process(format!("p{i}"), attrs)
        })
        .collect();
    for &u in &nodes {
        for &v in &nodes {
            if u != v && rng.gen::<f64>() < density {
                b.add_influence(u, v, rng.gen_range(0.01..=1.0)).unwrap();
            }
        }
    }
    // Tag up to two disjoint replica pairs.
    if n >= 4 && rng.gen::<f64>() < 0.7 {
        b.mark_replicas(&[nodes[0], nodes[1]]).unwrap();
        if rng.gen::<f64>() < 0.5 {
            b.mark_replicas(&[nodes[2], nodes[3]]).unwrap();
        }
    }
    b.build()
}

/// Asserts bitwise equality with the full recompute on the current
/// partition (compares bit patterns, so `-0.0` vs `0.0` or any ULP of
/// drift would fail).
fn assert_bitwise_equal(pipe: &CondensePipeline<'_>, g: &SwGraph) -> Result<(), String> {
    let full = condense(g, pipe.groups(), CombineRule::Probabilistic)
        .expect("pipeline groups form a partition")
        .influence_matrix();
    let inc = pipe.influence();
    prop_assert_eq!(inc.rows(), full.rows());
    for i in 0..full.rows() {
        for j in 0..full.cols() {
            prop_assert_eq!(
                inc[(i, j)].to_bits(),
                full[(i, j)].to_bits(),
                "entry ({}, {}) after {} merges: incremental {} vs full {}",
                i,
                j,
                pipe.merges(),
                inc[(i, j)],
                full[(i, j)]
            );
        }
    }
    Ok(())
}

/// Drives `policy` to `target` clusters, checking the bitwise contract
/// after every individual merge (mirrors `run_policy`'s bookkeeping but
/// interleaves the full-recompute check).
fn run_checked(
    g: &SwGraph,
    target: usize,
    policy: &mut dyn CondensePolicy,
) -> Result<(), String> {
    let mut pipe = CondensePipeline::new(g);
    assert_bitwise_equal(&pipe, g)?;
    while pipe.len() > target {
        let mut batch = policy.plan_round(&pipe, target);
        if batch.is_empty() {
            break; // stuck (e.g. only replica pairs left) — fine here
        }
        batch.sort_by_key(|&(i, j)| std::cmp::Reverse(i.max(j)));
        let before = pipe.len();
        for (i, j) in batch {
            if pipe.can_merge(i, j) {
                pipe.merge(i, j).map_err(|e| e.to_string())?;
                assert_bitwise_equal(&pipe, g)?;
            }
        }
        if pipe.len() == before {
            break;
        }
    }
    Ok(())
}

#[test]
fn h1_greedy_merges_keep_the_matrix_bitwise_equal_to_a_full_recompute() {
    prop::check_cases(
        "h1_greedy_merges_keep_the_matrix_bitwise_equal_to_a_full_recompute",
        48,
        |rng, size| {
            let n = 2 + rng.gen_range(0..=(10 * size.clamp(1, 100) / 100));
            let density = rng.gen_range(0.1..0.8);
            let g = random_sw_graph(rng, n, density);
            let target = rng.gen_range(1..=n);
            (g, target)
        },
        |(g, target)| run_checked(g, *target, &mut H1Greedy),
    );
}

#[test]
fn h1_pair_all_merges_keep_the_matrix_bitwise_equal_to_a_full_recompute() {
    prop::check_cases(
        "h1_pair_all_merges_keep_the_matrix_bitwise_equal_to_a_full_recompute",
        48,
        |rng, size| {
            let n = 2 + rng.gen_range(0..=(10 * size.clamp(1, 100) / 100));
            let density = rng.gen_range(0.1..0.8);
            let g = random_sw_graph(rng, n, density);
            let target = rng.gen_range(1..=n);
            (g, target)
        },
        |(g, target)| run_checked(g, *target, &mut H1PairAll),
    );
}

#[test]
fn partition_replay_merges_keep_the_matrix_bitwise_equal_to_a_full_recompute() {
    prop::check_cases(
        "partition_replay_merges_keep_the_matrix_bitwise_equal_to_a_full_recompute",
        48,
        |rng, size| {
            let n = 2 + rng.gen_range(0..=(10 * size.clamp(1, 100) / 100));
            let density = rng.gen_range(0.1..0.8);
            let g = random_sw_graph(rng, n, density);
            let target = rng.gen_range(1..=n);
            (g, target)
        },
        |(g, target)| {
            // Build a feasible partition with H1, then replay it through a
            // fresh pipeline (the H2/H3 merge path), checking every step.
            let mut pre = CondensePipeline::new(g);
            if pre.run_policy(*target, &mut H1Greedy).is_err() {
                return Ok(()); // no feasible partition at this target
            }
            let groups = pre.groups().to_vec();
            let mut replay = PartitionReplay::toward(g.node_count(), &groups);
            run_checked(g, groups.len(), &mut replay)?;
            // And the replay must actually land on the same partition.
            let mut pipe = CondensePipeline::new(g);
            pipe.run_policy(groups.len(), &mut replay)
                .map_err(|e| e.to_string())?;
            pipe.reorder_to(&groups).map_err(|e| e.to_string())?;
            prop_assert!(pipe.groups() == groups.as_slice(), "replay diverged");
            Ok(())
        },
    );
}

#[test]
fn incremental_h1_equals_the_rebuilding_h1_on_random_graphs() {
    prop::check_cases(
        "incremental_h1_equals_the_rebuilding_h1_on_random_graphs",
        32,
        |rng, size| {
            let n = 2 + rng.gen_range(0..=(10 * size.clamp(1, 100) / 100));
            let density = rng.gen_range(0.1..0.8);
            let g = random_sw_graph(rng, n, density);
            let target = rng.gen_range(1..=n);
            (g, target)
        },
        |(g, target)| {
            let incremental = fcm_alloc::heuristics::h1(g, *target);
            let rebuilt = fcm_alloc::heuristics::h1_rebuild(g, *target);
            prop_assert_eq!(
                incremental.is_ok(),
                rebuilt.is_ok(),
                "feasibility must agree"
            );
            if let (Ok(a), Ok(b)) = (incremental, rebuilt) {
                prop_assert!(a == b, "clusterings diverged");
            }
            Ok(())
        },
    );
}
