//! E3 timing: the discrete-event engine and injection campaigns.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fcm_sim::model::SchedulingPolicy;
use fcm_sim::{engine, InfluenceCampaign, Injection};
use fcm_workloads::avionics;

fn bench_injection(c: &mut Criterion) {
    let (spec, roles) = avionics::control_loop_system(SchedulingPolicy::PreemptiveEdf)
        .expect("static system builds");

    c.bench_function("engine_single_trial_400_ticks", |b| {
        let inj = [Injection::value(0, roles.sensors)];
        b.iter(|| engine::run(black_box(&spec), black_box(&inj), 7, 400))
    });

    let mut group = c.benchmark_group("e3_campaign");
    group.sample_size(10);
    group.bench_function("influence_500_trials", |b| {
        let campaign = InfluenceCampaign::new(spec.clone(), 400, 500, 7);
        b.iter(|| {
            campaign
                .measure_influence(black_box(roles.sensors), black_box(roles.autopilot))
                .expect("valid tasks")
        })
    });
    group.bench_function("transmission_500_trials", |b| {
        let campaign = InfluenceCampaign::new(spec.clone(), 400, 500, 7);
        b.iter(|| {
            campaign
                .measure_transmission(black_box(roles.sensors), black_box(roles.sensor_shm))
                .expect("valid indices")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_injection);
criterion_main!(benches);
