//! E3 timing: the discrete-event engine and injection campaigns.

use std::hint::black_box;

use fcm_sim::model::SchedulingPolicy;
use fcm_sim::{engine, InfluenceCampaign, Injection};
use fcm_substrate::bench::Suite;
use fcm_workloads::avionics;

fn main() {
    let (spec, roles) = avionics::control_loop_system(SchedulingPolicy::PreemptiveEdf)
        .expect("static system builds");

    let mut suite = Suite::new("e3_injection");
    let inj = [Injection::value(0, roles.sensors)];
    suite.bench("engine_single_trial_400_ticks", || {
        engine::run(black_box(&spec), black_box(&inj), 7, 400)
    });

    suite.sample_size(10);
    let campaign = InfluenceCampaign::new(spec.clone(), 400, 500, 7);
    suite.bench("e3_campaign/influence_500_trials", || {
        campaign
            .measure_influence(black_box(roles.sensors), black_box(roles.autopilot))
            .expect("valid tasks")
    });
    suite.bench("e3_campaign/transmission_500_trials", || {
        campaign
            .measure_transmission(black_box(roles.sensors), black_box(roles.sensor_shm))
            .expect("valid indices")
    });
    suite.finish();
}
