//! E2 timing: the Eq. 3 separation walk series vs truncation order and
//! matrix size.

use std::hint::black_box;

use fcm_core::separation::SeparationAnalysis;
use fcm_substrate::bench::Suite;
use fcm_workloads::random::RandomWorkload;

fn main() {
    let mut suite = Suite::new("e2_separation");
    for &n in &[8usize, 16, 32, 64] {
        let m = RandomWorkload {
            processes: n,
            density: 0.2,
            influence_range: (0.02, 0.3),
            seed: 9,
            ..RandomWorkload::default()
        }
        .generate_matrix();
        let analysis = SeparationAnalysis::new(m).expect("valid entries");
        suite.bench(&format!("pairwise_order4/{n}"), || {
            analysis.pairwise(black_box(4))
        });
    }
    let m = RandomWorkload {
        processes: 24,
        density: 0.2,
        influence_range: (0.02, 0.3),
        seed: 9,
        ..RandomWorkload::default()
    }
    .generate_matrix();
    let analysis = SeparationAnalysis::new(m).expect("valid entries");
    for order in [1usize, 2, 4, 8] {
        suite.bench(&format!("order_sweep_n24/{order}"), || {
            analysis.pairwise(black_box(order))
        });
    }
    suite.finish();
}
