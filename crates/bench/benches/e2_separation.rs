//! E2 timing: the Eq. 3 separation walk series vs truncation order and
//! matrix size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fcm_core::separation::SeparationAnalysis;
use fcm_workloads::random::RandomWorkload;

fn bench_separation(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_separation");
    for &n in &[8usize, 16, 32, 64] {
        let m = RandomWorkload {
            processes: n,
            density: 0.2,
            influence_range: (0.02, 0.3),
            seed: 9,
            ..RandomWorkload::default()
        }
        .generate_matrix();
        let analysis = SeparationAnalysis::new(m).expect("valid entries");
        group.bench_with_input(BenchmarkId::new("pairwise_order4", n), &analysis, |b, a| {
            b.iter(|| a.pairwise(black_box(4)))
        });
    }
    let m = RandomWorkload {
        processes: 24,
        density: 0.2,
        influence_range: (0.02, 0.3),
        seed: 9,
        ..RandomWorkload::default()
    }
    .generate_matrix();
    let analysis = SeparationAnalysis::new(m).expect("valid entries");
    for order in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("order_sweep_n24", order),
            &order,
            |b, &order| b.iter(|| analysis.pairwise(black_box(order))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_separation);
criterion_main!(benches);
