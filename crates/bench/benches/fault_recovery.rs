//! Fault-recovery benchmarks for `fcm-serve`: how fast the daemon gets
//! *back* to full service after the two failure modes the crash matrix
//! and degraded-mode tests pin.
//!
//! * **Cold resume** — `Store::open_resume` + full journal replay onto
//!   a fresh model, at several journal lengths. This is the recovery
//!   half of every crash-matrix case, measured instead of asserted.
//! * **Re-arm latency** — a daemon whose first journal writes fail
//!   (`journal.*:eio@0..2`) enters degraded mode on the first mutation;
//!   the sample is the wall time from that trip until a mutation is
//!   accepted again (seeded-backoff probes at `rearm_base_ms = 5`).
//!
//! The artefact (`BENCH_fault_recovery.json`, `fcm-bench/v1`) records
//! nearest-rank percentiles per point. Socket use stays confined to
//! `crates/serve` — the re-arm driver goes through `gen::run_script`.

use std::time::Instant;

use fcm_serve::gen::{self, percentile_ns};
use fcm_serve::proto::{self, Request};
use fcm_serve::server::{start, Listen, ServerConfig};
use fcm_serve::store::Store;
use fcm_serve::LiveModel;
use fcm_substrate::fault::FaultPlan;
use fcm_substrate::Json;

/// Journal lengths (accepted mutations) for the cold-resume points.
const RESUME_LENS: [usize; 3] = [16, 128, 512];
const RESUME_ITERS: usize = 30;
const REARM_ITERS: usize = 8;

const MUTATE: &str = "{\"op\":\"set_attr\",\"name\":\"p8\",\"criticality\":2}";

fn entry(name: String, samples: &[u64], extra: &[(&str, Json)]) -> Json {
    assert!(!samples.is_empty(), "{name}: no samples recorded");
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let mean = sorted.iter().sum::<u64>() as f64 / n as f64;
    let mut j = Json::object()
        .set("name", name)
        .set("iters", n as u64)
        .set("min_ns", sorted[0] as f64)
        .set("mean_ns", mean)
        .set("median_ns", percentile_ns(&sorted, 50.0) as f64)
        .set("p95_ns", percentile_ns(&sorted, 95.0) as f64)
        .set("max_ns", sorted[n - 1] as f64)
        .set("p50_ns", percentile_ns(&sorted, 50.0) as f64)
        .set("p99_ns", percentile_ns(&sorted, 99.0) as f64);
    for (k, v) in extra {
        j = j.set(k, v.clone());
    }
    j
}

/// Accepted mutation #i of the synthetic session: a fail/restore pair
/// on the paper model's `hw2` plus criticality toggles on `p8`.
fn script_line(i: usize) -> String {
    match i % 4 {
        0 => "{\"op\":\"fail_node\",\"node\":\"hw2\"}".to_string(),
        1 => "{\"op\":\"restore_node\",\"node\":\"hw2\"}".to_string(),
        k => format!("{{\"op\":\"set_attr\",\"name\":\"p8\",\"criticality\":{k}}}"),
    }
}

/// Builds a journal of `len` accepted mutations, then times
/// resume-and-replay `RESUME_ITERS` times.
fn resume_point(len: usize) -> Json {
    let dir = std::env::temp_dir().join(format!("fcm-bench-resume-{len}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut model = LiveModel::new("paper").expect("paper model");
    let mut store = Store::create_fresh(&dir).expect("fresh store");
    for i in 0..len {
        let line = script_line(i);
        let (_, req) = proto::parse_line(&line);
        let Ok(Request::Mutation(m)) = req else {
            panic!("script line is a mutation")
        };
        model.apply(&m).expect("script mutation accepted");
        store.append(model.seq(), &m).expect("append");
    }
    let reference = model.state_json().to_string_compact();
    drop((store, model));

    let mut samples = Vec::with_capacity(RESUME_ITERS);
    for _ in 0..RESUME_ITERS {
        let t0 = Instant::now();
        let (_store, rec) = Store::open_resume(&dir).expect("resume");
        let mut m = LiveModel::new("paper").expect("paper model");
        for (_, mu) in &rec.replay {
            m.apply(mu).expect("replay applies");
        }
        let ns = t0.elapsed().as_nanos() as u64;
        assert_eq!(rec.replay.len(), len);
        assert_eq!(m.state_json().to_string_compact(), reference, "resume drifted");
        samples.push(ns);
    }
    let _ = std::fs::remove_dir_all(&dir);
    println!(
        "resume {len:>4} mutations: p50 {:>9} ns  p95 {:>9} ns",
        percentile_ns(&samples, 50.0),
        percentile_ns(&samples, 95.0),
    );
    entry(
        format!("paper/resume_replay@{len}"),
        &samples,
        &[("model", Json::from("paper")), ("journal_mutations", Json::from(len as u64))],
    )
}

/// One `run_script` round-trip; returns the mutation's response line.
fn drive(target: &Listen) -> String {
    let mut buf = Vec::new();
    gen::run_script(target, MUTATE, &mut buf).expect("script session");
    let text = String::from_utf8(buf).expect("utf8 transcript");
    text.lines().nth(1).expect("mutation response").to_string()
}

/// Trips degraded mode on a fresh daemon and times the fault-trip →
/// first-accepted-mutation interval.
fn rearm_sample(iter: usize) -> u64 {
    let dir = std::env::temp_dir().join(format!("fcm-bench-rearm-{iter}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let handle = start(ServerConfig {
        state_dir: Some(dir.clone()),
        fault: FaultPlan::parse("journal.*:eio@0..2").expect("fault spec"),
        rearm_base_ms: 5,
        ..ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), "paper")
    })
    .expect("daemon starts");
    let target = Listen::Tcp(handle.addr().to_string());

    let t0 = Instant::now();
    let first = drive(&target);
    assert!(first.contains("\"degraded\":true"), "fault did not trip: {first}");
    let ns = loop {
        std::thread::sleep(std::time::Duration::from_millis(2));
        if drive(&target).contains("\"ok\":true") {
            break t0.elapsed().as_nanos() as u64;
        }
        assert!(
            t0.elapsed().as_secs() < 30,
            "daemon never re-armed (iter {iter})"
        );
    };
    handle.stop().expect("clean stop");
    let _ = std::fs::remove_dir_all(&dir);
    ns
}

fn main() {
    let mut benchmarks: Vec<Json> = RESUME_LENS.iter().map(|&len| resume_point(len)).collect();

    let rearm: Vec<u64> = (0..REARM_ITERS).map(rearm_sample).collect();
    println!(
        "re-arm after journal.*:eio@0..2: p50 {:>9} ns  max {:>9} ns",
        percentile_ns(&rearm, 50.0),
        rearm.iter().max().copied().unwrap_or(0),
    );
    benchmarks.push(entry(
        "paper/rearm_latency".to_string(),
        &rearm,
        &[("model", Json::from("paper")), ("rearm_base_ms", Json::from(5u64))],
    ));

    let artifact = Json::object()
        .set("suite", "fault_recovery")
        .set("schema", "fcm-bench/v1")
        .set("benchmarks", Json::Arr(benchmarks));
    let dir = std::env::var("FCM_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_fault_recovery.json");
    let mut text = artifact.to_string_pretty();
    text.push('\n');
    std::fs::write(&path, text).expect("write bench artifact");
    println!("wrote {}", path.display());
}
