//! E1 timing: clustering heuristics H1 / H1′ / H2 / H3 across graph
//! sizes, plus the incremental-vs-rebuild H1 comparison at n = 96 (the
//! condensation pipeline's Eq. 4 row/column update against the
//! full-recondense baseline it replaced — same clustering, different
//! cost).

use std::hint::black_box;

use fcm_alloc::heuristics::{h1, h1_pair_all, h1_rebuild, h2, h3};
use fcm_core::ImportanceWeights;
use fcm_graph::algo::BisectPolicy;
use fcm_substrate::bench::Suite;
use fcm_substrate::telemetry;
use fcm_workloads::random::RandomWorkload;

fn main() {
    let mut suite = Suite::new("e1_heuristics");
    suite.sample_size(10);
    for &n in &[16usize, 32, 64] {
        let g = RandomWorkload {
            processes: n,
            density: 0.25,
            replicated_fraction: 0.0, // pure timing comparison
            seed: 42,
            ..RandomWorkload::default()
        }
        .generate();
        let target = n / 3;
        let weights = ImportanceWeights::default();
        suite.bench(&format!("H1/{n}"), || {
            h1(black_box(&g), target).expect("feasible")
        });
        suite.bench(&format!("H1_pair_all/{n}"), || {
            h1_pair_all(black_box(&g), target).expect("feasible")
        });
        suite.bench(&format!("H2/{n}"), || {
            h2(black_box(&g), target, BisectPolicy::LargestPart).expect("feasible")
        });
        suite.bench(&format!("H3/{n}"), || {
            h3(black_box(&g), target, &weights).expect("feasible")
        });
    }
    // H1 at n = 96: the pipeline's incremental Eq. 4 update vs the
    // pre-refactor full-recondense baseline (both produce the same
    // clustering; `h1_rebuild` is kept exactly for this measurement).
    {
        let n = 96usize;
        let g = RandomWorkload {
            processes: n,
            density: 0.25,
            replicated_fraction: 0.0,
            seed: 42,
            ..RandomWorkload::default()
        }
        .generate();
        let target = n / 3;
        assert_eq!(
            h1(&g, target).expect("feasible"),
            h1_rebuild(&g, target).expect("feasible"),
            "incremental and rebuild H1 must agree before timing them"
        );
        suite.bench(&format!("H1_incremental/{n}"), || {
            h1(black_box(&g), target).expect("feasible")
        });
        suite.bench(&format!("H1_rebuild/{n}"), || {
            h1_rebuild(black_box(&g), target).expect("feasible")
        });
    }
    suite.embed_telemetry(telemetry::global());
    suite.finish();
}
