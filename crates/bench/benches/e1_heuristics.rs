//! E1 timing: clustering heuristics H1 / H1′ / H2 / H3 across graph sizes.

use std::hint::black_box;

use fcm_alloc::heuristics::{h1, h1_pair_all, h2, h3};
use fcm_core::ImportanceWeights;
use fcm_graph::algo::BisectPolicy;
use fcm_substrate::bench::Suite;
use fcm_workloads::random::RandomWorkload;

fn main() {
    let mut suite = Suite::new("e1_heuristics");
    suite.sample_size(10);
    for &n in &[16usize, 32, 64] {
        let g = RandomWorkload {
            processes: n,
            density: 0.25,
            replicated_fraction: 0.0, // pure timing comparison
            seed: 42,
            ..RandomWorkload::default()
        }
        .generate();
        let target = n / 3;
        let weights = ImportanceWeights::default();
        suite.bench(&format!("H1/{n}"), || {
            h1(black_box(&g), target).expect("feasible")
        });
        suite.bench(&format!("H1_pair_all/{n}"), || {
            h1_pair_all(black_box(&g), target).expect("feasible")
        });
        suite.bench(&format!("H2/{n}"), || {
            h2(black_box(&g), target, BisectPolicy::LargestPart).expect("feasible")
        });
        suite.bench(&format!("H3/{n}"), || {
            h3(black_box(&g), target, &weights).expect("feasible")
        });
    }
    suite.finish();
}
