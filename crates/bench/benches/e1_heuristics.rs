//! E1 timing: clustering heuristics H1 / H1′ / H2 / H3 across graph sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fcm_alloc::heuristics::{h1, h1_pair_all, h2, h3};
use fcm_core::ImportanceWeights;
use fcm_graph::algo::BisectPolicy;
use fcm_workloads::random::RandomWorkload;

fn bench_heuristics(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_heuristics");
    group.sample_size(10);
    for &n in &[16usize, 32, 64] {
        let g = RandomWorkload {
            processes: n,
            density: 0.25,
            replicated_fraction: 0.0, // pure timing comparison
            seed: 42,
            ..RandomWorkload::default()
        }
        .generate();
        let target = n / 3;
        let weights = ImportanceWeights::default();
        group.bench_with_input(BenchmarkId::new("H1", n), &g, |b, g| {
            b.iter(|| h1(black_box(g), target).expect("feasible"))
        });
        group.bench_with_input(BenchmarkId::new("H1_pair_all", n), &g, |b, g| {
            b.iter(|| h1_pair_all(black_box(g), target).expect("feasible"))
        });
        group.bench_with_input(BenchmarkId::new("H2", n), &g, |b, g| {
            b.iter(|| h2(black_box(g), target, BisectPolicy::LargestPart).expect("feasible"))
        });
        group.bench_with_input(BenchmarkId::new("H3", n), &g, |b, g| {
            b.iter(|| h3(black_box(g), target, &weights).expect("feasible"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_heuristics);
criterion_main!(benches);
