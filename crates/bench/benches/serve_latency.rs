//! Online-service latency under load: mutation-apply and query
//! round-trip percentiles for `fcm-serve`.
//!
//! For each committed model (paper, avionics) and each offered mutation
//! rate (1k / 10k / 100k mutations per second), a daemon is started on
//! an ephemeral TCP socket with a real journal (durability on the
//! acknowledgement path, as in production), a mutation-only client pool
//! drives the offered rate open-loop, and a concurrent query-only
//! client measures read latency *while the writer is busy* — the
//! bounded-latency claim under contention, not at idle.
//!
//! The artefact (`BENCH_serve_latency.json`, `fcm-bench/v1`) records
//! nearest-rank p50/p95/p99 round-trip latencies plus achieved rates.
//! Two assertions pin the acceptance criteria:
//!
//! * the paper model sustains the 10k mutations/s point with **p99
//!   query latency < 10 ms**;
//! * after every run the daemon still reports `full_condenses == 1` —
//!   no mutation fell off the incremental Eq. 4 path.

use fcm_serve::gen::{self, percentile_ns, LoadConfig, LoadReport};
use fcm_serve::server::{start, Listen, ServerConfig};
use fcm_substrate::Json;

struct Point {
    model: &'static str,
    /// Offered mutation rate, mutations/second.
    rate: u64,
    /// Load duration at this rate, ms.
    duration_ms: u64,
    /// Mutation clients. The generator pipelines requests, so a few
    /// sessions saturate the writer; extra sessions only add scheduler
    /// contention (apply itself costs ~8 µs).
    clients: usize,
}

const POINTS: [Point; 6] = [
    Point { model: "paper", rate: 1_000, duration_ms: 2_000, clients: 2 },
    Point { model: "paper", rate: 10_000, duration_ms: 2_000, clients: 4 },
    Point { model: "paper", rate: 100_000, duration_ms: 1_000, clients: 8 },
    Point { model: "avionics", rate: 1_000, duration_ms: 2_000, clients: 2 },
    Point { model: "avionics", rate: 10_000, duration_ms: 2_000, clients: 4 },
    Point { model: "avionics", rate: 100_000, duration_ms: 1_000, clients: 8 },
];

/// One `stats` round-trip against the daemon (via the script driver —
/// socket use stays confined to `crates/serve`).
fn stats_query(target: &Listen) -> Json {
    let mut buf = Vec::new();
    gen::run_script(target, "{\"op\":\"stats\"}", &mut buf).expect("stats session");
    let text = String::from_utf8(buf).expect("utf8 transcript");
    let line = text.lines().nth(1).expect("stats response");
    Json::parse(line).expect("valid JSON")
}

fn entry(name: String, samples: &[u64], extra: &[(&str, Json)]) -> Json {
    assert!(!samples.is_empty(), "{name}: no samples recorded");
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let mean = sorted.iter().sum::<u64>() as f64 / n as f64;
    let mut j = Json::object()
        .set("name", name)
        .set("iters", n as u64)
        .set("min_ns", sorted[0] as f64)
        .set("mean_ns", mean)
        .set("median_ns", percentile_ns(&sorted, 50.0) as f64)
        .set("p95_ns", percentile_ns(&sorted, 95.0) as f64)
        .set("max_ns", sorted[n - 1] as f64)
        .set("p50_ns", percentile_ns(&sorted, 50.0) as f64)
        .set("p99_ns", percentile_ns(&sorted, 99.0) as f64);
    for (k, v) in extra {
        j = j.set(k, v.clone());
    }
    j
}

fn run_point(p: &Point) -> (Json, Json) {
    let state_dir = std::env::temp_dir().join(format!(
        "fcm-serve-bench-{}-{}-{}",
        p.model,
        p.rate,
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&state_dir);
    let handle = start(ServerConfig {
        state_dir: Some(state_dir.clone()),
        snapshot_every: 4096,
        ..ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), p.model)
    })
    .expect("daemon starts");
    let target = Listen::Tcp(handle.addr().to_string());

    // Writer pool: mutation-only, offered open-loop at p.rate.
    let mutation_cfg = LoadConfig {
        rate: p.rate,
        clients: p.clients,
        duration_ms: p.duration_ms,
        seed: 0xbe7c + p.rate,
        mutation_pct: 100,
        subscribers: 0,
    };
    // Concurrent reader: query-only, a steady 2k/s probe stream.
    let query_cfg = LoadConfig {
        rate: 2_000,
        clients: 2,
        duration_ms: p.duration_ms,
        seed: 0x9ea0 + p.rate,
        mutation_pct: 0,
        subscribers: 0,
    };
    let writer = {
        let target = target.clone();
        let cfg = mutation_cfg.clone();
        std::thread::spawn(move || gen::run_load(&target, &cfg))
    };
    let reader = {
        let target = target.clone();
        let cfg = query_cfg.clone();
        std::thread::spawn(move || gen::run_load(&target, &cfg))
    };
    let mutations: LoadReport = writer.join().expect("writer pool").expect("mutation load");
    let queries: LoadReport = reader.join().expect("reader pool").expect("query load");
    assert_eq!(mutations.errors, 0, "{}: seeded mutation mix always valid", p.model);
    assert_eq!(queries.errors, 0, "{}: seeded query mix always valid", p.model);

    // The incremental-path guarantee: still exactly one full condense.
    let stats = stats_query(&target);
    assert_eq!(
        stats.get("full_condenses").and_then(Json::as_f64),
        Some(1.0),
        "{} @ {}: a mutation fell off the incremental path",
        p.model,
        p.rate
    );
    handle.stop().expect("clean stop");
    let _ = std::fs::remove_dir_all(&state_dir);

    let achieved =
        mutations.mutation_ns.len() as f64 / (mutations.elapsed_ns as f64 / 1e9);
    println!(
        "{:<10} offered {:>6}/s achieved {:>9.0}/s  apply p50 {:>7} p99 {:>9}  query p50 {:>7} p99 {:>9}",
        p.model,
        p.rate,
        achieved,
        percentile_ns(&mutations.mutation_ns, 50.0),
        percentile_ns(&mutations.mutation_ns, 99.0),
        percentile_ns(&queries.query_ns, 50.0),
        percentile_ns(&queries.query_ns, 99.0),
    );
    let common = [
        ("model", Json::from(p.model)),
        ("offered_rps", Json::from(p.rate)),
        ("achieved_rps", Json::from(achieved)),
    ];
    let apply = entry(
        format!("{}/mutation_apply@{}", p.model, p.rate),
        &mutations.mutation_ns,
        &common,
    );
    let query = entry(
        format!("{}/query@{}", p.model, p.rate),
        &queries.query_ns,
        &common,
    );

    // Acceptance: the paper model sustains 10k mutations/s with p99
    // query latency under 10 ms.
    if p.model == "paper" && p.rate == 10_000 {
        let p99 = percentile_ns(&queries.query_ns, 99.0);
        assert!(
            p99 < 10_000_000,
            "paper @ 10k: query p99 {p99} ns breaches the 10 ms bound"
        );
        assert!(
            achieved >= 0.9 * p.rate as f64,
            "paper @ 10k: achieved only {achieved:.0} mutations/s"
        );
    }
    (apply, query)
}

fn main() {
    let mut benchmarks = Vec::new();
    for p in &POINTS {
        let (apply, query) = run_point(p);
        benchmarks.push(apply);
        benchmarks.push(query);
    }
    let artifact = Json::object()
        .set("suite", "serve_latency")
        .set("schema", "fcm-bench/v1")
        .set("benchmarks", Json::Arr(benchmarks));
    let dir = std::env::var("FCM_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_serve_latency.json");
    let mut text = artifact.to_string_pretty();
    text.push('\n');
    std::fs::write(&path, text).expect("write bench artifact");
    println!("wrote {}", path.display());
}
