//! Timing benches for the paper-figure pipelines (T1, F5, F6, F7, F8).
//!
//! These time the computational kernels that regenerate each figure; the
//! figures themselves are produced by `cargo run -p fcm-bench --bin repro`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fcm_alloc::heuristics::h1;
use fcm_alloc::mapping::{approach_a, criticality_pairing, timing_refinement};
use fcm_core::{cluster_influence, ImportanceWeights, Influence};
use fcm_workloads::paper;

fn bench_figures(c: &mut Criterion) {
    let ex = paper::fig4_expansion();
    let hw = paper::hw_platform();
    let weights = ImportanceWeights::default();

    c.bench_function("fig4_replica_expansion", |b| {
        let g = paper::fig3_graph();
        b.iter(|| fcm_alloc::replication::expand_replicas(black_box(&g)))
    });

    c.bench_function("fig5_eq4_cluster_influence", |b| {
        let members = [
            Influence::new(0.7).expect("valid"),
            Influence::new(0.2).expect("valid"),
        ];
        b.iter(|| cluster_influence(black_box(&members)))
    });

    c.bench_function("fig6_h1_reduction", |b| {
        b.iter(|| h1(black_box(&ex.graph), 6).expect("feasible"))
    });

    c.bench_function("fig6_approach_a_mapping", |b| {
        let clustering = h1(&ex.graph, 6).expect("feasible");
        b.iter(|| {
            approach_a(black_box(&ex.graph), black_box(&clustering), &hw, &weights)
                .expect("mapping")
        })
    });

    c.bench_function("fig7_criticality_pairing", |b| {
        b.iter(|| criticality_pairing(black_box(&ex.graph), 6).expect("feasible"))
    });

    c.bench_function("fig8_timing_refinement", |b| {
        b.iter(|| timing_refinement(black_box(&ex.graph), 5).expect("feasible"))
    });
}

criterion_group!(benches, bench_figures);
criterion_main!(benches);
