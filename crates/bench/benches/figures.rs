//! Timing benches for the paper-figure pipelines (T1, F5, F6, F7, F8).
//!
//! These time the computational kernels that regenerate each figure; the
//! figures themselves are produced by `cargo run -p fcm-bench --bin repro`.

use std::hint::black_box;

use fcm_alloc::heuristics::h1;
use fcm_alloc::mapping::{approach_a, criticality_pairing, timing_refinement};
use fcm_core::{cluster_influence, ImportanceWeights, Influence};
use fcm_substrate::bench::Suite;
use fcm_workloads::paper;

fn main() {
    let ex = paper::fig4_expansion();
    let hw = paper::hw_platform();
    let weights = ImportanceWeights::default();

    let mut suite = Suite::new("figures");

    {
        let g = paper::fig3_graph();
        suite.bench("fig4_replica_expansion", || {
            fcm_alloc::replication::expand_replicas(black_box(&g))
        });
    }

    {
        let members = [
            Influence::new(0.7).expect("valid"),
            Influence::new(0.2).expect("valid"),
        ];
        suite.bench("fig5_eq4_cluster_influence", || {
            cluster_influence(black_box(&members))
        });
    }

    suite.bench("fig6_h1_reduction", || {
        h1(black_box(&ex.graph), 6).expect("feasible")
    });

    {
        let clustering = h1(&ex.graph, 6).expect("feasible");
        suite.bench("fig6_approach_a_mapping", || {
            approach_a(black_box(&ex.graph), black_box(&clustering), &hw, &weights)
                .expect("mapping")
        });
    }

    suite.bench("fig7_criticality_pairing", || {
        criticality_pairing(black_box(&ex.graph), 6).expect("feasible")
    });

    suite.bench("fig8_timing_refinement", || {
        timing_refinement(black_box(&ex.graph), 5).expect("feasible")
    });
    suite.finish();
}
