//! E6 timing: R5 retest-set computation vs naive full recertification.

use std::hint::black_box;

use fcm_core::{AttributeSet, FcmHierarchy, FcmId, HierarchyLevel};
use fcm_substrate::bench::Suite;

fn build_hierarchy(fanout: usize) -> (FcmHierarchy, FcmId) {
    let mut h = FcmHierarchy::new();
    let root = h
        .add_root("sys", HierarchyLevel::Process, AttributeSet::default())
        .expect("root");
    let mut a_procedure = None;
    for ti in 0..fanout {
        let task = h
            .add_child(root, format!("t{ti}"), AttributeSet::default())
            .expect("task");
        for pi in 0..fanout {
            let p = h
                .add_child(task, format!("t{ti}_p{pi}"), AttributeSet::default())
                .expect("procedure");
            a_procedure.get_or_insert(p);
        }
    }
    (h, a_procedure.expect("fanout > 0"))
}

fn main() {
    let mut suite = Suite::new("e6_retest");
    for &fanout in &[4usize, 8, 16] {
        let (h, p) = build_hierarchy(fanout);
        suite.bench(&format!("r5_retest_set/{fanout}"), || {
            h.retest_set(black_box(p)).expect("known fcm")
        });
        suite.bench(&format!("naive_recertify/{fanout}"), || {
            h.naive_retest_set(black_box(p)).expect("known fcm")
        });
    }
    suite.finish();
}
