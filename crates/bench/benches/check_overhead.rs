//! Bounds the cost of the static-analysis gate against real work.
//!
//! Times a full `fcm-check` catalog run over every committed workload
//! model and compares its median against E1 (heuristic ablation) at
//! QUICK scale. The gate is meant to run before every experiment and
//! simulation, so it must be noise: the contract targets **< 2%** of
//! E1 wall time, and the ratio is embedded in the artefact's
//! `overhead` object as `gate_vs_e1` for trend tracking across PRs.
//!
//! Model assembly is excluded from the timed region — the pipelines
//! build those artefacts anyway; the gate only adds the checking.

use fcm_bench::experiments::{self, Scale};
use fcm_bench::models;
use fcm_substrate::bench::Suite;
use fcm_substrate::Json;

fn main() {
    let mut suite = Suite::new("check_overhead");
    suite.sample_size(5).warmup(1);

    let workload_models = models::workload_models();
    suite.bench("check/all_models", || {
        workload_models
            .iter()
            .map(|m| fcm_check::run_checks(m).render().len())
            .sum::<usize>()
    });
    suite.bench("e1/quick", || experiments::e1(Scale::QUICK).to_string());

    let median = |name: &str| {
        suite
            .results()
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.median_ns)
            .expect("benchmark ran")
    };
    let (gate, e1) = (median("check/all_models"), median("e1/quick"));
    let ratio = if e1 > 0.0 { gate / e1 } else { 0.0 };
    println!("gate cost vs E1: {:.3}% (target < 2%)", ratio * 100.0);

    let overhead = Json::object().set("gate_vs_e1", ratio);
    let artifact = suite.to_artifact().set("overhead", overhead);
    let dir = std::env::var("FCM_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_check_overhead.json");
    let mut text = artifact.to_string_pretty();
    text.push('\n');
    std::fs::write(&path, text).expect("write bench artifact");
    println!("wrote {}", path.display());
}
