//! E14 timing: repairable-system reliability under the four recovery
//! policies, plus the failover remap itself.

use std::hint::black_box;

use fcm_alloc::heuristics::h1;
use fcm_alloc::mapping::approach_a;
use fcm_alloc::{failover, ShedPolicy};
use fcm_core::ImportanceWeights;
use fcm_eval::{RecoveryPolicy, ReliabilityModel, RepairableModel};
use fcm_graph::NodeIdx;
use fcm_substrate::bench::Suite;
use fcm_workloads::avionics;

fn main() {
    let (ex, _) = avionics::expanded_suite();
    let hw = avionics::platform();
    let clustering = h1(&ex.graph, hw.len()).expect("feasible");
    let mapping =
        approach_a(&ex.graph, &clustering, &hw, &ImportanceWeights::default()).expect("mapping");

    let mut suite = Suite::new("e14_recovery");
    suite.sample_size(10);

    // The raw remap: one dead node, strict vs degraded policy.
    suite.bench("remap_strict", || {
        failover::remap(
            black_box(&ex.graph),
            &clustering,
            &mapping,
            &hw,
            NodeIdx(0),
            ShedPolicy::Never,
        )
    });
    suite.bench("remap_shedding", || {
        failover::remap(
            black_box(&ex.graph),
            &clustering,
            &mapping,
            &hw,
            NodeIdx(0),
            ShedPolicy::ShedBelow { critical_at: 7 },
        )
    });

    // The full repairable mission model per policy.
    for policy in RecoveryPolicy::ALL {
        let model = RepairableModel {
            base: ReliabilityModel {
                p_hw: 0.1,
                critical_at: 7,
                trials: 2_000,
                ..ReliabilityModel::default()
            },
            ..RepairableModel::default()
        };
        suite.bench(&format!("missions_{}", policy.label()), || {
            model.evaluate(
                black_box(&ex.graph),
                &clustering,
                &mapping,
                &hw,
                policy,
            )
        });
    }
    suite.finish();
}
