//! Bounds the overhead of enabled observability on real experiments.
//!
//! Runs E1 (heuristic ablation) and E14 (recovery policy sweep) at
//! QUICK scale with `fcm-obs` disabled, then enabled, and embeds the
//! median-over-median overhead ratios in the artefact's `overhead`
//! object (`0.03` = 3% slower with tracing on). The observation
//! contract targets **< 5%** overhead with recording enabled — the
//! ratio is printed so regressions are visible in the bench log, and
//! the artefact records it for trend tracking across PRs.
//!
//! The timed region deliberately excludes the export: recording is the
//! per-event hot path, draining/writing the log happens once at
//! process exit.

use fcm_bench::experiments::{self, Scale};
use fcm_substrate::bench::Suite;
use fcm_substrate::Json;

fn main() {
    let scale = Scale::QUICK;
    let mut suite = Suite::new("obs_overhead");
    // E1 at QUICK scale is seconds per iteration; 5 samples with a
    // median comparison is plenty to spot an overhead regression.
    suite.sample_size(5).warmup(1);

    assert!(!fcm_obs::enabled(), "benches must start with obs off");
    suite.bench("e1/obs_off", || experiments::e1(scale).to_string());
    suite.bench("e14/obs_off", || experiments::e14(scale).to_string());

    fcm_obs::init(fcm_obs::ObsConfig::default());
    suite.bench("e1/obs_on", || experiments::e1(scale).to_string());
    suite.bench("e14/obs_on", || experiments::e14(scale).to_string());
    fcm_obs::set_enabled(false);
    // Drop the recorded state: this bench measures recording cost, the
    // data itself is not the artefact.
    let (spans, _) = fcm_obs::span::drain();
    let metrics = fcm_obs::metrics::drain();

    let median = |name: &str| {
        suite
            .results()
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.median_ns)
            .expect("benchmark ran")
    };
    let mut overhead = Json::object();
    for exp in ["e1", "e14"] {
        let (off, on) = (median(&format!("{exp}/obs_off")), median(&format!("{exp}/obs_on")));
        let ratio = if off > 0.0 { on / off - 1.0 } else { 0.0 };
        println!("overhead {exp}: {:.2}% (target < 5%)", ratio * 100.0);
        overhead = overhead.set(exp, ratio);
    }
    println!(
        "recorded while enabled: {} spans, {} counters, {} histograms",
        spans.len(),
        metrics.counters.len(),
        metrics.hists.len()
    );

    // Suite::finish would write the plain artefact; this bench appends
    // the overhead object first, so write it by hand.
    let artifact = suite.to_artifact().set("overhead", overhead);
    let dir = std::env::var("FCM_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_obs_overhead.json");
    let mut text = artifact.to_string_pretty();
    text.push('\n');
    std::fs::write(&path, text).expect("write bench artifact");
    println!("wrote {}", path.display());
}
