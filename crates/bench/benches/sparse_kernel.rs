//! Sparse walk-series kernel grid: the large-n half of the Eq. 3
//! benchmark story.
//!
//! `matrix_kernel` times the dense blocked kernel at n ≤ 256; this
//! suite extends the grid through the sparse engine on the
//! [`fcm_workloads::fleet::SparseFleet`] shape. Every cell at n ≤ 512
//! is first checked **bitwise** against the dense oracle (walk series
//! entry-for-entry, top-k against a full sort of the oracle row) and
//! recorded in the artefact with `"oracle": "bitwise-equal"`; the
//! large cells (1k / 10k / 50k) are sparse-only and recorded as
//! `"oracle": "skipped"`. Each artefact entry also carries the cell's
//! `n`, `nnz` and `density` so `check_bench_schema` can validate the
//! grid and readers can relate time to problem size.
//!
//! The artefact is assembled by hand (Suite's `to_artifact` has no
//! per-entry metadata hook) but keeps the exact `fcm-bench/v1` layout,
//! pretty-printed with a trailing newline, honouring `$FCM_BENCH_DIR`
//! and `FCM_BENCH_QUICK=1` like every other suite.

use fcm_graph::SparseMatrix;
use fcm_substrate::bench::Suite;
use fcm_substrate::json::{Json, ToJson};
use fcm_substrate::telemetry;
use fcm_workloads::fleet::SparseFleet;

/// Walk-series truncation order (matches `matrix_kernel`).
const ORDER: usize = 8;
/// Epsilon for the global power-max truncation check.
const EPSILON: f64 = 1e-12;
/// k for the top-k influence cells.
const TOP_K: usize = 10;

fn fleet_matrix(n: usize) -> SparseMatrix {
    SparseFleet { processes: n, ..SparseFleet::default() }.matrix()
}

/// Panics unless the sparse kernel reproduces the dense oracle
/// bit-for-bit at this size — both the full series and the top-k row.
fn assert_bitwise_oracle(n: usize, m: &SparseMatrix) {
    let dense = m.to_dense();
    let want = dense.walk_series(ORDER, EPSILON);
    let got = m.walk_series(ORDER, EPSILON);
    for i in 0..n {
        for j in 0..n {
            let sv = got.get(i, j).unwrap_or(0.0);
            let dv = want.get(i, j).expect("in bounds");
            assert_eq!(
                sv.to_bits(),
                dv.to_bits(),
                "sparse/dense series divergence at n={n} entry ({i},{j}): {sv} vs {dv}"
            );
        }
    }
    let top = m.top_k_from(0, TOP_K, ORDER, EPSILON);
    let mut full: Vec<(usize, f64)> = (1..n)
        .map(|j| (j, want.get(0, j).expect("in bounds")))
        .filter(|&(_, v)| v != 0.0)
        .collect();
    full.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite").then_with(|| a.0.cmp(&b.0)));
    full.truncate(TOP_K);
    assert_eq!(top.len(), full.len(), "top-k length at n={n}");
    for (g, w) in top.iter().zip(&full) {
        assert_eq!(
            (g.0, g.1.to_bits()),
            (w.0, w.1.to_bits()),
            "sparse/dense top-k divergence at n={n}"
        );
    }
}

/// Times the cell's two kernels and records one metadata tuple per
/// timed entry, in `Suite::results` order.
fn run_cell(
    suite: &mut Suite,
    meta: &mut Vec<(usize, usize, f64, &'static str)>,
    n: usize,
    m: &SparseMatrix,
    oracle: &'static str,
) {
    let (nnz, density) = (m.nnz(), m.density());
    suite.bench(&format!("walk_series/{n}"), || m.walk_series(ORDER, EPSILON));
    meta.push((n, nnz, density, oracle));
    suite.bench(&format!("top_k/{n}"), || m.top_k_from(0, TOP_K, ORDER, EPSILON));
    meta.push((n, nnz, density, oracle));
}

fn main() {
    let quick = std::env::var("FCM_BENCH_QUICK").is_ok_and(|v| v == "1");
    let large_ns: &[usize] = if quick { &[1_000, 10_000] } else { &[1_000, 10_000, 50_000] };

    let mut suite = Suite::new("sparse_kernel");
    suite.sample_size(if quick { 3 } else { 10 });
    let mut meta: Vec<(usize, usize, f64, &'static str)> = Vec::new();

    for n in [64usize, 128, 256, 512] {
        let m = fleet_matrix(n);
        assert_bitwise_oracle(n, &m);
        run_cell(&mut suite, &mut meta, n, &m, "bitwise-equal");
    }

    suite.sample_size(3);
    for &n in large_ns {
        let m = fleet_matrix(n);
        run_cell(&mut suite, &mut meta, n, &m, "skipped");
    }

    assert_eq!(suite.results().len(), meta.len(), "metadata tracks results 1:1");
    let benchmarks: Vec<Json> = suite
        .results()
        .iter()
        .zip(&meta)
        .map(|(stats, &(n, nnz, density, oracle))| {
            stats
                .to_json()
                .set("n", n as u64)
                .set("nnz", nnz as u64)
                .set("density", density)
                .set("oracle", oracle)
        })
        .collect();
    let artifact = Json::object()
        .set("suite", "sparse_kernel")
        .set("schema", "fcm-bench/v1")
        .set("benchmarks", Json::Arr(benchmarks))
        .set("telemetry", telemetry::global().to_json());

    let dir = std::env::var("FCM_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_sparse_kernel.json");
    let mut text = artifact.to_string_pretty();
    text.push('\n');
    std::fs::write(&path, text).expect("write bench artifact");
    println!("wrote {}", path.display());
}
