//! Full vs incremental contract certification (ISSUE 10 acceptance).
//!
//! Times one certification pass over a [`SparseFleet`] with synthesized
//! contracts at n ∈ {256, 2048, 10 000}:
//!
//! * `full/{n}` — a cold [`Certifier`] re-verifies every FCM (the cost
//!   `checktool --contracts` pays, and what `fcm-serve` would pay per
//!   mutation without the cache);
//! * `incremental/{n}` — a warm certifier after a single-FCM edit (one
//!   criticality toggled), re-verifying only the dirty row and reusing
//!   every other cached verdict, exactly the `fcm-serve` `set_attr`
//!   gating path.
//!
//! Both run the global phase (dangling scan, rely entailment, bound
//! fold, report sort) every pass — that O(n) tail is deliberately
//! *inside* the timed region, so the speedup reported is the honest
//! end-to-end ratio, not just the row-arithmetic ratio. The artefact's
//! `overhead` object carries `speedup_{n}` = full median / incremental
//! median; the acceptance bound wants `speedup_10000` ≥ 10.
//!
//! Honors `FCM_BENCH_QUICK=1` (fewer samples, same grid) and
//! `FCM_BENCH_DIR` like every other suite.

use fcm_check::{CertView, Certifier, Dirty};
use fcm_substrate::bench::Suite;
use fcm_substrate::Json;
use fcm_workloads::contracts::for_fleet;
use fcm_workloads::fleet::SparseFleet;

const SIZES: [usize; 3] = [256, 2_048, 10_000];

fn main() {
    let quick = std::env::var("FCM_BENCH_QUICK").is_ok_and(|v| v == "1");

    let mut suite = Suite::new("contract_cert");
    suite.sample_size(if quick { 3 } else { 10 }).warmup(1);

    for n in SIZES {
        let fleet = SparseFleet { processes: n, ..SparseFleet::default() };
        let influence = fleet.influence();
        let (names, mut crits, contracts) = for_fleet(&fleet);

        suite.bench(&format!("full/{n}"), || {
            let view = CertView {
                model: "fleet",
                names: &names,
                crits: &crits,
                influence: &influence,
                contracts: &contracts,
            };
            let cert = Certifier::new().certify(&view, Dirty::Full, 1);
            assert_eq!(cert.verified, n, "cold pass verifies every FCM");
            cert.report.diagnostics.len()
        });

        // Warm the cache once, then time single-row recertification
        // after a real edit (the criticality toggle makes the row's
        // state hash stale, so the verdict is recomputed, not reused).
        let mut certifier = Certifier::new();
        let view = CertView {
            model: "fleet",
            names: &names,
            crits: &crits,
            influence: &influence,
            contracts: &contracts,
        };
        certifier.certify(&view, Dirty::Full, 1);
        let dirty = n / 2;
        suite.bench(&format!("incremental/{n}"), || {
            crits[dirty] ^= 1;
            let view = CertView {
                model: "fleet",
                names: &names,
                crits: &crits,
                influence: &influence,
                contracts: &contracts,
            };
            let cert = certifier.certify(&view, Dirty::Rows(&[dirty]), 1);
            assert_eq!(
                (cert.verified, cert.reused),
                (1, n - 1),
                "a single-FCM edit re-verifies exactly one row"
            );
            cert.report.diagnostics.len()
        });
    }

    let median = |name: &str| {
        suite
            .results()
            .iter()
            .find(|s| s.name == name)
            .map(|s| s.median_ns)
            .expect("benchmark ran")
    };
    let mut overhead = Json::object();
    for n in SIZES {
        let (full, inc) = (median(&format!("full/{n}")), median(&format!("incremental/{n}")));
        let speedup = if inc > 0.0 { full / inc } else { 0.0 };
        println!("n={n}: full {full:.0} ns, incremental {inc:.0} ns, speedup {speedup:.1}x");
        overhead = overhead.set(&format!("speedup_{n}"), speedup);
    }

    let artifact = suite.to_artifact().set("overhead", overhead);
    let dir = std::env::var("FCM_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_contract_cert.json");
    let mut text = artifact.to_string_pretty();
    text.push('\n');
    std::fs::write(&path, text).expect("write bench artifact");
    println!("wrote {}", path.display());
}
