//! E4 timing: Monte-Carlo mission reliability of a mapped system.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use fcm_alloc::heuristics::h1;
use fcm_alloc::mapping::approach_a;
use fcm_core::ImportanceWeights;
use fcm_eval::ReliabilityModel;
use fcm_workloads::avionics;

fn bench_reliability(c: &mut Criterion) {
    let (ex, _) = avionics::expanded_suite();
    let hw = avionics::platform();
    let clustering = h1(&ex.graph, hw.len()).expect("feasible");
    let mapping =
        approach_a(&ex.graph, &clustering, &hw, &ImportanceWeights::default()).expect("mapping");

    let mut group = c.benchmark_group("e4_reliability");
    group.sample_size(10);
    for trials in [1_000u64, 10_000] {
        group.bench_function(format!("missions_{trials}"), |b| {
            let model = ReliabilityModel {
                trials,
                ..ReliabilityModel::default()
            };
            b.iter(|| model.evaluate(black_box(&ex.graph), &clustering, &mapping))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_reliability);
criterion_main!(benches);
