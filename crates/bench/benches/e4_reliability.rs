//! E4 timing: Monte-Carlo mission reliability of a mapped system.

use std::hint::black_box;

use fcm_alloc::heuristics::h1;
use fcm_alloc::mapping::approach_a;
use fcm_core::ImportanceWeights;
use fcm_eval::ReliabilityModel;
use fcm_substrate::bench::Suite;
use fcm_workloads::avionics;

fn main() {
    let (ex, _) = avionics::expanded_suite();
    let hw = avionics::platform();
    let clustering = h1(&ex.graph, hw.len()).expect("feasible");
    let mapping =
        approach_a(&ex.graph, &clustering, &hw, &ImportanceWeights::default()).expect("mapping");

    let mut suite = Suite::new("e4_reliability");
    suite.sample_size(10);
    for trials in [1_000u64, 10_000] {
        let model = ReliabilityModel {
            trials,
            ..ReliabilityModel::default()
        };
        suite.bench(&format!("missions_{trials}"), || {
            model.evaluate(black_box(&ex.graph), &clustering, &mapping)
        });
    }
    suite.finish();
}
