//! Timing benches for the extension machinery: s–t cuts, the generic
//! hierarchy, certification bookkeeping, and system materialisation.

use std::hint::black_box;

use fcm_alloc::heuristics::{h1, h2_source_target};
use fcm_alloc::mapping::approach_a;
use fcm_core::certification::CertificationLedger;
use fcm_core::ladder::{GenericFcmHierarchy, LevelLadder};
use fcm_core::{AttributeSet, FcmHierarchy, HierarchyLevel, ImportanceWeights};
use fcm_graph::algo::st_min_cut;
use fcm_graph::NodeIdx;
use fcm_sim::model::SchedulingPolicy;
use fcm_substrate::bench::Suite;
use fcm_workloads::materialize::{system_from_mapping, system_from_mapping_voted};
use fcm_workloads::random::RandomWorkload;
use fcm_workloads::{avionics, topologies};

fn main() {
    let mut suite = Suite::new("extensions");

    // s–t min cut across sizes.
    for &n in &[16usize, 32, 64] {
        let g = RandomWorkload {
            processes: n,
            density: 0.25,
            replicated_fraction: 0.0,
            seed: 5,
            ..RandomWorkload::default()
        }
        .generate();
        suite.bench(&format!("st_min_cut/{n}"), || {
            st_min_cut(black_box(&g), NodeIdx(0), NodeIdx(n - 1)).expect("valid")
        });
    }

    {
        let g = topologies::ring_of_cliques(6, 4, 0.6, 0.05);
        let weights = ImportanceWeights::default();
        suite.bench("h2_source_target_ring_of_cliques", || {
            h2_source_target(black_box(&g), 6, &weights).expect("feasible")
        });
    }

    suite.bench("generic_hierarchy_build_4_levels", || {
        let mut h = GenericFcmHierarchy::new(LevelLadder::with_objects());
        let p = h
            .add_root("p", "process", AttributeSet::default())
            .expect("root");
        for ti in 0..4 {
            let t = h
                .add_child(p, format!("t{ti}"), AttributeSet::default())
                .expect("task");
            for oi in 0..4 {
                let o = h
                    .add_child(t, format!("o{oi}"), AttributeSet::default())
                    .expect("object");
                for fi in 0..2 {
                    h.add_child(o, format!("f{fi}"), AttributeSet::default())
                        .expect("procedure");
                }
            }
        }
        h
    });

    {
        let mut h = FcmHierarchy::new();
        let p = h
            .add_root("p", HierarchyLevel::Process, AttributeSet::default())
            .expect("root");
        let mut leaf = None;
        for ti in 0..8 {
            let t = h
                .add_child(p, format!("t{ti}"), AttributeSet::default())
                .expect("task");
            for fi in 0..8 {
                let f = h
                    .add_child(t, format!("f{fi}"), AttributeSet::default())
                    .expect("procedure");
                leaf.get_or_insert(f);
            }
        }
        let leaf = leaf.expect("non-empty");
        let baseline = CertificationLedger::certify_all(&h);
        suite.bench("certification_modify_and_recertify", || {
            let mut ledger = baseline.clone();
            ledger
                .record_modification(black_box(&h), leaf)
                .expect("known fcm");
            ledger.recertify_outstanding(&h)
        });
    }

    suite.sample_size(20);
    let (ex, _) = avionics::expanded_suite();
    let hw = avionics::platform();
    let clustering = h1(&ex.graph, hw.len()).expect("feasible");
    let mapping =
        approach_a(&ex.graph, &clustering, &hw, &ImportanceWeights::default()).expect("mapping");
    suite.bench("materialize/avionics_unvoted", || {
        system_from_mapping(
            black_box(&ex.graph),
            &clustering,
            &mapping,
            SchedulingPolicy::PreemptiveEdf,
            0.2,
        )
        .expect("materialises")
    });
    suite.bench("materialize/avionics_voted", || {
        system_from_mapping_voted(
            black_box(&ex.graph),
            &clustering,
            &mapping,
            SchedulingPolicy::PreemptiveEdf,
            0.2,
        )
        .expect("materialises")
    });
    suite.finish();
}
