//! Matrix-kernel timing: naive allocating power series vs the blocked,
//! workspace-reusing kernel (`Matrix::walk_series_into`), at the sizes
//! the analysis engine actually sees. The naive baseline is the `ikj`
//! triple loop the blocked kernel is bitwise-equivalent to, allocating
//! a fresh matrix per power — exactly what `fcm-core` did before the
//! kernel refactor.

use std::hint::black_box;

use fcm_graph::{Matrix, Workspace};
use fcm_substrate::bench::Suite;
use fcm_substrate::rng::Rng;
use fcm_substrate::telemetry;

const ORDER: usize = 8;
const EPSILON: f64 = 1e-12;

/// A random sub-stochastic influence matrix (row sums < 1, so the walk
/// series converges like the paper's Eq. 3 assumes).
fn random_matrix(n: usize, seed: u64) -> Matrix {
    let mut rng = Rng::seed_from_u64(seed);
    let mut m = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            if i != j && rng.gen::<f64>() < 0.3 {
                m[(i, j)] = rng.gen_range(0.0..0.8) / n as f64;
            }
        }
    }
    m
}

/// The pre-refactor baseline: naive `ikj` product, one fresh allocation
/// per power and per accumulation step.
fn naive_series(p: &Matrix, order: usize, epsilon: f64) -> Matrix {
    let n = p.rows();
    let mut acc = Matrix::zeros(n, n);
    let mut power = Matrix::identity(n);
    for _ in 0..order {
        let mut next = Matrix::zeros(n, n);
        for i in 0..n {
            for k in 0..n {
                let a = power[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..n {
                    next[(i, j)] += a * p[(k, j)];
                }
            }
        }
        power = next;
        if power.max_abs() < epsilon {
            break;
        }
        acc = &acc + &power;
    }
    acc
}

fn main() {
    let mut suite = Suite::new("matrix_kernel");
    suite.sample_size(10);
    for &n in &[32usize, 64, 128, 256] {
        let p = random_matrix(n, 7 + n as u64);
        // The two paths must agree bitwise before their times mean anything.
        let reference = naive_series(&p, ORDER, EPSILON);
        let mut ws = Workspace::new();
        let mut acc = Matrix::zeros(0, 0);
        p.walk_series_into(ORDER, EPSILON, &mut ws, &mut acc);
        for i in 0..n {
            for j in 0..n {
                assert_eq!(
                    acc[(i, j)].to_bits(),
                    reference[(i, j)].to_bits(),
                    "blocked kernel diverged at ({i}, {j}) for n={n}"
                );
            }
        }
        suite.bench(&format!("naive_series/{n}"), || {
            naive_series(black_box(&p), ORDER, EPSILON)
        });
        suite.bench(&format!("blocked_series/{n}"), || {
            p.walk_series_into(ORDER, EPSILON, &mut ws, &mut acc);
            black_box(acc.max_abs())
        });
    }
    suite.embed_telemetry(telemetry::global());
    suite.finish();
}
