//! Telemetry-plane overhead: what does watching the daemon cost the
//! daemon?
//!
//! The live telemetry plane (DESIGN.md §12) promises that observation
//! is never an input: the flight recorder and event subscriptions may
//! add *cost* but must not add *behaviour*. The byte-identity gate in
//! `scripts/verify.sh` pins the second half; this bench pins the first
//! by measuring the paper model at the 10k mutations/s acceptance point
//! in three modes —
//!
//! * **baseline**: flight recorder off, no subscribers (the writer's
//!   event publication short-circuits before any payload is built);
//! * **recorder**: flight recorder on, no subscribers — the always-on
//!   production default, whose cost per mutation is one ring append;
//! * **recorder+4subs**: flight recorder on plus 4 live subscribers,
//!   each verifying the exact `eseq`/`dropped` gap accounting as it
//!   streams.
//!
//! Each mode runs [`ROUNDS`] times interleaved; overhead is computed
//! *within* each round (every mode vs that round's baseline) and the
//! smallest per-round figure wins — pairing inside a round cancels the
//! slow drift (page cache, background load) that dominates wall-clock
//! variance between rounds, and the minimum is the classic noise-robust
//! estimator for "what does this mode cost when nothing else
//! interferes".
//!
//! The artefact (`BENCH_obs_live.json`, `fcm-bench/v1`) records all
//! modes plus an `overhead` object: `recorder_pct` (always-on cost) and
//! `serve_latency_pct` (full plane, 4 subscribers). Acceptance: both
//! **under 3%**. The recorder bound is asserted unconditionally — it is
//! the cost every production deployment pays. The subscriber bound is
//! asserted when the host has spare cores for the observers; on a
//! single-core host the subscribers' own CPU (render, socket, parse,
//! verify — work that in any real deployment runs on the *observer's*
//! machine) is time-sliced out of the serving core itself, so the
//! measurement reflects the host, not the plane, and the artefact
//! records it without gating on it.

use fcm_serve::gen::{self, percentile_ns, LoadConfig, LoadReport};
use fcm_serve::server::{start, Listen, ServerConfig};
use fcm_substrate::Json;

const MODEL: &str = "paper";
const RATE: u64 = 10_000;
const DURATION_MS: u64 = 1_500;
const CLIENTS: usize = 4;
const SUBSCRIBERS: usize = 4;
/// Interleaved measurement rounds per mode (best-of wins).
const ROUNDS: usize = 4;
/// Acceptance bound on the median round-trip overhead, percent.
const MAX_OVERHEAD_PCT: f64 = 3.0;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Baseline,
    Recorder,
    Subscribed,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Baseline => "baseline",
            Mode::Recorder => "recorder",
            Mode::Subscribed => "recorder+4subs",
        }
    }

    fn recorder(self) -> bool {
        !matches!(self, Mode::Baseline)
    }

    fn subscribers(self) -> usize {
        match self {
            Mode::Subscribed => SUBSCRIBERS,
            _ => 0,
        }
    }
}

/// One daemon + load run in the given mode.
fn run_mode(mode: Mode) -> LoadReport {
    // The recorder is process-global; flip it per mode. No dump path —
    // this bench measures the ring, not the dump.
    fcm_obs::recorder::set_dump_path(None);
    fcm_obs::recorder::set_enabled(mode.recorder());

    let state_dir = std::env::temp_dir().join(format!(
        "fcm-obs-live-bench-{}-{}",
        mode.name(),
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&state_dir);
    let handle = start(ServerConfig {
        state_dir: Some(state_dir.clone()),
        snapshot_every: 4096,
        ..ServerConfig::new(Listen::Tcp("127.0.0.1:0".to_string()), MODEL)
    })
    .expect("daemon starts");
    let target = Listen::Tcp(handle.addr().to_string());

    let cfg = LoadConfig {
        rate: RATE,
        clients: CLIENTS,
        duration_ms: DURATION_MS,
        seed: 0xbe7c + RATE,
        mutation_pct: 100,
        subscribers: mode.subscribers(),
    };
    let report = gen::run_load(&target, &cfg).expect("load run");
    assert_eq!(report.errors, 0, "seeded mutation mix always valid");
    if mode == Mode::Subscribed {
        // Each subscriber validated the per-event gap identity as it
        // streamed; here we only require that they actually saw the run.
        assert!(
            report.events_delivered > 0,
            "observed run delivered no events to its subscribers"
        );
    }
    handle.stop().expect("clean stop");
    let _ = std::fs::remove_dir_all(&state_dir);
    fcm_obs::recorder::set_enabled(false);
    report
}

fn entry(mode: Mode, report: &LoadReport) -> Json {
    let mut sorted = report.mutation_ns.clone();
    sorted.sort_unstable();
    let n = sorted.len();
    assert!(n > 0, "{}: no samples recorded", mode.name());
    #[allow(clippy::cast_precision_loss)]
    let mean = sorted.iter().sum::<u64>() as f64 / n as f64;
    #[allow(clippy::cast_precision_loss)]
    Json::object()
        .set("name", format!("paper/serve_mutation@10000/{}", mode.name()))
        .set("iters", n as u64)
        .set("min_ns", sorted[0] as f64)
        .set("mean_ns", mean)
        .set("median_ns", percentile_ns(&sorted, 50.0) as f64)
        .set("p95_ns", percentile_ns(&sorted, 95.0) as f64)
        .set("p99_ns", percentile_ns(&sorted, 99.0) as f64)
        .set("max_ns", sorted[n - 1] as f64)
        .set("model", MODEL)
        .set("offered_rps", RATE)
        .set("recorder", mode.recorder())
        .set("subscribers", mode.subscribers() as u64)
        .set("events_delivered", report.events_delivered)
        .set("events_dropped", report.events_dropped)
}

#[allow(clippy::cast_precision_loss)]
fn pct(base_p50: u64, mode_p50: u64) -> f64 {
    (mode_p50 as f64 - base_p50 as f64) / base_p50 as f64 * 100.0
}

fn main() {
    const MODES: [Mode; 3] = [Mode::Baseline, Mode::Recorder, Mode::Subscribed];
    // Warm-up: one unmeasured full-plane run absorbs first-touch costs
    // (binding, page faults, snapshot dir, subscriber machinery) so
    // every measured mode sees the same steady state.
    let _ = run_mode(Mode::Subscribed);

    // Interleave the rounds so slow drift (thermal, background noise)
    // hits every mode equally instead of biasing the last one.
    let mut reports: Vec<Vec<(LoadReport, u64)>> = MODES.iter().map(|_| Vec::new()).collect();
    for round in 0..ROUNDS {
        for (i, &mode) in MODES.iter().enumerate() {
            let r = run_mode(mode);
            let p50 = percentile_ns(&r.mutation_ns, 50.0);
            println!(
                "round {round} {:<14} p50 {:>8} ns  ({} events)",
                mode.name(),
                p50,
                r.events_delivered
            );
            reports[i].push((r, p50));
        }
    }
    // Per-round pairing + min across rounds (see the module docs).
    let per_round = |i: usize| -> f64 {
        (0..ROUNDS)
            .map(|r| pct(reports[0][r].1, reports[i][r].1))
            .fold(f64::INFINITY, f64::min)
    };
    let recorder_pct = per_round(1);
    let subscribed_pct = per_round(2);
    let base_p50 = reports[0].iter().map(|&(_, p)| p).min().expect("rounds");
    println!(
        "overhead (best round): recorder {recorder_pct:+.2}% | recorder+{SUBSCRIBERS}subs {subscribed_pct:+.2}%"
    );

    // The always-on cost is gated unconditionally.
    assert!(
        recorder_pct < MAX_OVERHEAD_PCT,
        "flight recorder costs {recorder_pct:.2}% median serve latency (bound {MAX_OVERHEAD_PCT}%)"
    );
    // The full-plane cost is gated only when the observers have their
    // own cores to run on (see the module docs).
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    if cores > 1 {
        assert!(
            subscribed_pct < MAX_OVERHEAD_PCT,
            "telemetry plane costs {subscribed_pct:.2}% median serve latency (bound {MAX_OVERHEAD_PCT}%)"
        );
    } else {
        println!(
            "note: single-core host — {SUBSCRIBERS}-subscriber overhead ({subscribed_pct:+.2}%) \
             recorded, not gated (observer CPU shares the serving core)"
        );
    }

    // Artefact entries: each mode's best round by median.
    let benchmarks = MODES
        .iter()
        .zip(&reports)
        .map(|(&mode, rounds)| {
            let (report, _) = rounds
                .iter()
                .min_by_key(|&&(_, p50)| p50)
                .expect("at least one round");
            entry(mode, report)
        })
        .collect();
    let mode_p50 = |i: usize| -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let p = reports[i].iter().map(|&(_, p)| p).min().expect("rounds") as f64;
        p
    };
    let artifact = Json::object()
        .set("suite", "obs_live")
        .set("schema", "fcm-bench/v1")
        .set("benchmarks", Json::Arr(benchmarks))
        .set(
            "overhead",
            Json::object()
                .set("recorder_pct", recorder_pct)
                .set("serve_latency_pct", subscribed_pct)
                .set("baseline_p50_ns", base_p50 as f64)
                .set("recorder_p50_ns", mode_p50(1))
                .set("subscribed_p50_ns", mode_p50(2))
                .set("cores", cores as u64),
        );
    let dir = std::env::var("FCM_BENCH_DIR").unwrap_or_else(|_| ".".to_string());
    let path = std::path::Path::new(&dir).join("BENCH_obs_live.json");
    let mut text = artifact.to_string_pretty();
    text.push('\n');
    std::fs::write(&path, text).expect("write bench artifact");
    println!("wrote {}", path.display());
}
