//! E5 timing: schedulability analysis — EDF simulation vs non-preemptive
//! branch-and-bound, and the periodic response-time analysis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use fcm_sched::periodic::{PeriodicTask, TaskSet};
use fcm_sched::{edf, nonpreemptive, Job, JobSet};

fn job_set(n: usize) -> JobSet {
    // Staggered feasible jobs.
    let jobs: Vec<Job> = (0..n)
        .map(|i| {
            let i = i as u64;
            Job::new(i, i * 3, i * 3 + 40 + (i % 5) * 7, 3 + i % 4)
        })
        .collect();
    JobSet::new(jobs).expect("constructed jobs are well-formed")
}

fn bench_sched(c: &mut Criterion) {
    let mut group = c.benchmark_group("e5_sched");
    for &n in &[8usize, 16, 32] {
        let set = job_set(n);
        group.bench_with_input(BenchmarkId::new("edf_feasible", n), &set, |b, s| {
            b.iter(|| edf::feasible(black_box(s)))
        });
        if n <= 16 {
            group.bench_with_input(BenchmarkId::new("nonpreemptive_exact", n), &set, |b, s| {
                b.iter(|| nonpreemptive::feasible(black_box(s)).expect("within budget"))
            });
        }
    }
    let tasks = TaskSet::new(
        (1..=12u64)
            .map(|i| PeriodicTask::new(10 * i, i.min(4)))
            .collect(),
    )
    .expect("valid tasks");
    group.bench_function("rm_response_time_12_tasks", |b| {
        b.iter(|| black_box(&tasks).rm_response_times())
    });
    group.finish();
}

criterion_group!(benches, bench_sched);
criterion_main!(benches);
