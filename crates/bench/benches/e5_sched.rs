//! E5 timing: schedulability analysis — EDF simulation vs non-preemptive
//! branch-and-bound, and the periodic response-time analysis.

use std::hint::black_box;

use fcm_sched::periodic::{PeriodicTask, TaskSet};
use fcm_sched::{edf, nonpreemptive, Job, JobSet};
use fcm_substrate::bench::Suite;

fn job_set(n: usize) -> JobSet {
    // Staggered feasible jobs.
    let jobs: Vec<Job> = (0..n)
        .map(|i| {
            let i = i as u64;
            Job::new(i, i * 3, i * 3 + 40 + (i % 5) * 7, 3 + i % 4)
        })
        .collect();
    JobSet::new(jobs).expect("constructed jobs are well-formed")
}

fn main() {
    let mut suite = Suite::new("e5_sched");
    for &n in &[8usize, 16, 32] {
        let set = job_set(n);
        suite.bench(&format!("edf_feasible/{n}"), || {
            edf::feasible(black_box(&set))
        });
        if n <= 16 {
            suite.bench(&format!("nonpreemptive_exact/{n}"), || {
                nonpreemptive::feasible(black_box(&set)).expect("within budget")
            });
        }
    }
    let tasks = TaskSet::new(
        (1..=12u64)
            .map(|i| PeriodicTask::new(10 * i, i.min(4)))
            .collect(),
    )
    .expect("valid tasks");
    suite.bench("rm_response_time_12_tasks", || {
        black_box(&tasks).rm_response_times()
    });
    suite.finish();
}
