//! Assembles the analyzable [`SystemModel`]s behind the committed
//! workloads, for `checktool` and `repro --check`.
//!
//! Two complete models are exposed: the paper's §6 worked example
//! (`paper`) and the avionics extension suite (`avionics`). Both are
//! built from the same constructors the experiments use, so a clean
//! bill of health from `fcm-check` covers exactly what the benchmarks
//! run. [`broken_e14_model`] deliberately damages the avionics model
//! for the worked diagnostics example in EXPERIMENTS.md.

use fcm_alloc::heuristics::h1;
use fcm_alloc::mapping::{approach_a, Mapping};
use fcm_alloc::ShedPolicy;
use fcm_check::{FactorView, RecoveryView, SystemModel};
use fcm_core::{AttributeSet, FcmHierarchy, HierarchyLevel, ImportanceWeights};
use fcm_graph::Matrix;
use fcm_workloads::materialize::RecoverySpec;
use fcm_workloads::{avionics, paper};

/// Names of the committed workload models, in report order.
pub const MODEL_NAMES: [&str; 2] = ["paper", "avionics"];

/// Criticality threshold for the degraded-mode shed policy attached to
/// both models: every replicated, pinned, or resource-bound FCM in the
/// committed workloads has criticality ≥ 4, so protected work is never
/// below the shed line (rule C015).
pub const SHED_CRITICAL_AT: u32 = 3;

fn recovery_view(spec: &RecoverySpec) -> RecoveryView {
    RecoveryView {
        heartbeat_period: spec.heartbeat_period,
        detection_latency: spec.detection_latency,
        max_retries: spec.max_retries,
        backoff_base: spec.backoff_base,
        checkpoint_every: spec.checkpoint_every,
    }
}

fn attrs(criticality: u32) -> AttributeSet {
    AttributeSet::default().with_criticality(criticality)
}

/// The FCM tree behind the paper example: each Table 1 process is a
/// root, and p1 (the TMR flight-control process) is given its task and
/// procedure substructure so all three ladder ranks are exercised.
fn paper_hierarchy() -> FcmHierarchy {
    let mut h = FcmHierarchy::new();
    for row in &paper::TABLE_1 {
        let p = h
            .add_root(row.name, HierarchyLevel::Process, paper::attributes(row))
            .expect("root insertion is infallible");
        if row.name == "p1" {
            let control = h
                .add_child(p, "p1.control", attrs(row.criticality))
                .expect("process accepts task children");
            let io = h
                .add_child(p, "p1.io", attrs(row.criticality - 2))
                .expect("process accepts task children");
            h.add_child(control, "p1.control.law", attrs(row.criticality))
                .expect("task accepts procedure children");
            h.add_child(io, "p1.io.read", attrs(row.criticality - 2))
                .expect("task accepts procedure children");
        }
    }
    h
}

/// Eq. 1 factor triples consistent with the Fig. 3 edge weights: the
/// surviving paper values are the products, so occurrence carries the
/// weight and transmission/manifestation are certain.
fn paper_factors() -> Vec<FactorView> {
    paper::FIG_3_EDGES
        .iter()
        .map(|&(from, to, p)| FactorView {
            from: paper::TABLE_1[from].name.to_string(),
            to: paper::TABLE_1[to].name.to_string(),
            occurrence: p,
            transmission: 1.0,
            manifestation: 1.0,
        })
        .collect()
}

/// The complete paper (§6) system model.
#[must_use]
pub fn paper_model() -> SystemModel {
    let ex = paper::fig4_expansion();
    let g = ex.graph;
    let hw = paper::hw_platform();
    let c = h1(&g, hw.len()).expect("paper clustering is feasible");
    let m = approach_a(&g, &c, &hw, &ImportanceWeights::default()).expect("paper mapping exists");
    let influence = Matrix::from_graph(&g);
    SystemModel::new("paper")
        .with_hierarchy(&paper_hierarchy())
        .with_retest_from_view()
        .with_factors(paper_factors())
        .with_influence(influence)
        .with_sw(g)
        .with_clustering(c)
        .with_mapping(m, hw)
        .with_recovery(recovery_view(&RecoverySpec::default()))
        .with_shed(ShedPolicy::ShedBelow {
            critical_at: SHED_CRITICAL_AT,
        })
}

/// The FCM tree behind the avionics suite: one process root per
/// function; the autopilot gets task/procedure substructure.
fn avionics_hierarchy() -> FcmHierarchy {
    let mut h = FcmHierarchy::new();
    let rows: [(&str, u32); 8] = [
        ("autopilot", 10),
        ("collision", 9),
        ("sensors", 8),
        ("nav", 7),
        ("display", 5),
        ("datalink", 4),
        ("maintenance", 2),
        ("cabin", 1),
    ];
    for &(name, crit) in &rows {
        let p = h
            .add_root(name, HierarchyLevel::Process, attrs(crit))
            .expect("root insertion is infallible");
        if name == "autopilot" {
            let laws = h
                .add_child(p, "autopilot.laws", attrs(crit))
                .expect("process accepts task children");
            h.add_child(laws, "autopilot.laws.inner", attrs(crit))
                .expect("task accepts procedure children");
            h.add_child(laws, "autopilot.laws.outer", attrs(crit - 1))
                .expect("task accepts procedure children");
        }
    }
    h
}

/// The complete avionics extension system model (the E14 workload).
#[must_use]
pub fn avionics_model() -> SystemModel {
    let (ex, _) = avionics::expanded_suite();
    let g = ex.graph;
    let hw = avionics::platform();
    let c = h1(&g, hw.len()).expect("avionics clustering is feasible");
    let m =
        approach_a(&g, &c, &hw, &ImportanceWeights::default()).expect("avionics mapping exists");
    let influence = Matrix::from_graph(&g);
    SystemModel::new("avionics")
        .with_hierarchy(&avionics_hierarchy())
        .with_retest_from_view()
        .with_influence(influence)
        .with_sw(g)
        .with_clustering(c)
        .with_mapping(m, hw)
        .with_recovery(recovery_view(&RecoverySpec::default()))
        .with_shed(ShedPolicy::ShedBelow {
            critical_at: SHED_CRITICAL_AT,
        })
}

/// The avionics model with three deliberate defects, for the worked
/// example in EXPERIMENTS.md:
///
/// * an Eq. 1 occurrence probability inflated past 1 (→ C008);
/// * two conflicting clusters remapped onto one cabinet (→ C012);
/// * the watchdog heartbeat period zeroed out (→ C016).
#[must_use]
pub fn broken_e14_model() -> SystemModel {
    let mut model = avionics_model();
    model.name = "avionics-broken".to_string();

    model.factors.push(FactorView {
        from: "sensors".to_string(),
        to: "autopilot".to_string(),
        occurrence: 1.4,
        transmission: 1.0,
        manifestation: 1.0,
    });

    let (g, c, m) = (
        model.sw.as_ref().expect("avionics model carries a graph"),
        model
            .clustering
            .as_ref()
            .expect("avionics model carries a clustering"),
        model
            .mapping
            .as_ref()
            .expect("avionics model carries a mapping"),
    );
    let mut assignment: Vec<_> = m.iter().map(|(_, hw)| hw).collect();
    let &(a, b) = c
        .conflicting_pairs(g)
        .first()
        .expect("replicated suite has conflicting cluster pairs");
    assignment[b] = assignment[a];
    model.mapping = Some(Mapping::from_assignment(assignment));

    if let Some(r) = &mut model.recovery {
        r.heartbeat_period = 0;
    }
    model
}

/// Looks a committed workload model up by name.
#[must_use]
pub fn model_by_name(name: &str) -> Option<SystemModel> {
    match name {
        "paper" => Some(paper_model()),
        "avionics" => Some(avionics_model()),
        _ => None,
    }
}

/// All committed workload models, in [`MODEL_NAMES`] order.
#[must_use]
pub fn workload_models() -> Vec<SystemModel> {
    MODEL_NAMES
        .iter()
        .map(|n| model_by_name(n).expect("MODEL_NAMES entries resolve"))
        .collect()
}

/// The workload models an experiment id draws on: the avionics suite
/// backs the extension experiments, everything else runs on the paper
/// example alone.
#[must_use]
pub fn models_for_experiment(id: &str) -> &'static [&'static str] {
    match id {
        "e5" | "e11" | "e12" | "e13" | "e14" => &MODEL_NAMES,
        _ => &["paper"],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcm_check::{run_checks, Severity};

    #[test]
    fn committed_workload_models_have_no_errors() {
        for model in workload_models() {
            let report = run_checks(&model);
            assert_eq!(
                report.count(Severity::Error),
                0,
                "{}:\n{}",
                model.name,
                report.render()
            );
        }
    }

    #[test]
    fn broken_model_fires_the_documented_codes() {
        let report = run_checks(&broken_e14_model());
        let codes: Vec<u16> = report.diagnostics.iter().map(|d| d.code.0).collect();
        for expected in [8u16, 12, 16] {
            assert!(codes.contains(&expected), "missing C{expected:03}: {codes:?}");
        }
    }

    #[test]
    fn experiment_ids_resolve_to_known_models() {
        for id in ["e1", "e5", "e14"] {
            for name in models_for_experiment(id) {
                assert!(model_by_name(name).is_some(), "unknown model {name}");
            }
        }
    }
}
