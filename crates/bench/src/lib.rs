//! Experiment implementations for the DDSI reproduction.
//!
//! Every table and figure of the paper, plus the extension experiments
//! E1–E7 documented in `DESIGN.md`, is a function here returning a
//! structured result with a `Display` table. The `repro` binary prints
//! them; the Criterion benches time their computational kernels; the
//! integration suite asserts their qualitative shape.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod models;
pub mod report;

pub use report::Table;
