//! A minimal column-aligned table type for experiment reports.

use std::fmt;

use fcm_substrate::{Json, ToJson};

/// A column-aligned text table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: impl IntoIterator<Item = S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded or truncated to the header width).
    pub fn push<S: Into<String>>(&mut self, row: impl IntoIterator<Item = S>) {
        let mut row: Vec<String> = row.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows (for assertions in tests).
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }
}

impl ToJson for Table {
    fn to_json(&self) -> Json {
        Json::object()
            .set("header", self.header.clone())
            .set(
                "rows",
                Json::Arr(self.rows.iter().map(|r| Json::from(r.clone())).collect()),
            )
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let write_row = |f: &mut fmt::Formatter<'_>, row: &[String]| -> fmt::Result {
            for (i, (cell, w)) in row.iter().zip(&widths).enumerate() {
                if i > 0 {
                    write!(f, "  ")?;
                }
                write!(f, "{cell:>w$}", w = w)?;
            }
            writeln!(f)
        };
        write_row(f, &self.header)?;
        for row in &self.rows {
            write_row(f, row)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new(["name", "value"]);
        t.push(["alpha", "1"]);
        t.push(["b", "22222"]);
        let s = t.to_string();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        // All lines have equal width.
        assert_eq!(lines[0].len(), lines[1].len());
        assert_eq!(lines[1].len(), lines[2].len());
        assert!(!t.is_empty());
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(["a", "b", "c"]);
        t.push(["x"]);
        assert_eq!(t.rows()[0].len(), 3);
    }

    #[test]
    fn json_artifact_round_trips() {
        let mut t = Table::new(["n", "strategy"]);
        t.push(["8", "H1"]);
        t.push(["16", "H2 \"quoted\""]);
        let j = t.to_json();
        let back = Json::parse(&j.to_string_pretty()).expect("parses");
        assert_eq!(back, j);
        let rows = back.get("rows").and_then(Json::as_array).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[1].as_array().unwrap()[1].as_str(),
            Some("H2 \"quoted\"")
        );
    }
}
