//! Source-invariant lint gate: a plain-text scan keeping the repo
//! hermetic.
//!
//! ```text
//! srclint [root]
//! ```
//!
//! Walks every `.rs` file under `root/crates` (default `.`) and
//! enforces the invariants the substrate exists to guarantee:
//!
//! * no `std::time` wall-clock reads outside `crates/substrate` (plus
//!   `crates/serve`, whose snapshot metadata timestamp is a declared
//!   I/O edge) — all timing flows through the substrate so runs stay
//!   reproducible;
//! * no `rand` / `serde` imports anywhere (the substrate's PRNG and
//!   JSON emitter are the only allowed sources of randomness and
//!   serialisation);
//! * no monotonic-clock reads (`Instant::now`) outside the substrate,
//!   the observability layer, the bench harness, and the serve daemon;
//! * no socket use (TCP or Unix-domain, via the std networking
//!   modules) outside `crates/serve` — the online service is the
//!   single process boundary, everything else stays a pure library;
//! * no fault-injection shims (`FaultInjector` / `FaultPlan`) outside
//!   the substrate (which defines them), the serve daemon (whose IO
//!   sites they gate), and the bench harness (which measures recovery)
//!   — analysis crates must never grow hidden failure hooks;
//! * no square dense allocation (`Matrix::zeros` with two identical
//!   non-numeric arguments, i.e. an n×n buffer) inside `crates/core` or
//!   `crates/serve` — their query paths go through `InfluenceMatrix`,
//!   which picks the representation; a literal n×n allocation would
//!   silently defeat the sparse engine at fleet scale;
//! * no exact walk-series recompute (`walk_series` / `top_k_from`) on
//!   the compositional certification path (`crates/check/src/contract.rs`
//!   and `certify.rs`) — the C017+ rules and the incremental certifier
//!   must stay O(degree) contract arithmetic; reaching for the O(n²)
//!   series there would silently defeat the cache;
//! * diagnostic codes declared in `crates/check/src/rules.rs` are
//!   unique.
//!
//! Exit codes follow the repo-wide contract (DESIGN.md): 0 = clean,
//! 1 = findings, 2 = usage or IO error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

const USAGE: &str = "usage: srclint [root]
exit codes: 0 = clean, 1 = findings, 2 = usage or IO error";

/// Crate-directory names (under `crates/`) allowed to read clocks.
const INSTANT_ALLOWED: [&str; 4] = ["substrate", "obs", "bench", "serve"];

/// Crate-directory names allowed to read the wall clock (the substrate
/// owns time; serve's snapshot metadata timestamp is a declared I/O
/// edge that never feeds an analysis).
const WALL_CLOCK_ALLOWED: [&str; 2] = ["substrate", "serve"];

/// The only crate allowed to open sockets.
const NET_ALLOWED: [&str; 1] = ["serve"];

/// Crates allowed to reference the deterministic fault-injection shim.
const FAULT_ALLOWED: [&str; 3] = ["substrate", "serve", "bench"];

/// Crates whose analysis paths must never allocate a square dense
/// matrix directly — representation choice belongs to `InfluenceMatrix`.
const DENSE_ALLOC_BANNED: [&str; 2] = ["core", "serve"];

fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    out.sort();
    Ok(())
}

/// The crate-directory name a file belongs to (`crates/<name>/...`).
fn crate_of(rel: &Path) -> Option<&str> {
    let mut parts = rel.components().map(|c| c.as_os_str().to_str().unwrap_or(""));
    if parts.next() == Some("crates") {
        parts.next()
    } else {
        None
    }
}

fn main() -> ExitCode {
    let mut root = ".".to_string();
    let mut seen_root = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("srclint: unknown flag {flag}\n{USAGE}");
                return ExitCode::from(2);
            }
            r if !seen_root => {
                root = r.to_string();
                seen_root = true;
            }
            extra => {
                eprintln!("srclint: unexpected argument {extra}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let crates_dir = Path::new(&root).join("crates");
    let mut files = Vec::new();
    if let Err(e) = rs_files(&crates_dir, &mut files) {
        eprintln!("srclint: cannot scan {}: {e}", crates_dir.display());
        return ExitCode::from(2);
    }

    // Needles are assembled at runtime so this scanner never matches
    // its own source text.
    let wall_clock = format!("System{}", "Time");
    let monotonic = format!("Instant::{}", "now");
    let use_rand = format!("use {}", "rand");
    let extern_rand = format!("extern crate {}", "rand");
    let use_serde = format!("use {}", "serde");
    let extern_serde = format!("extern crate {}", "serde");
    let code_decl = format!("code: {}(", "Code");
    let tcp_net = format!("std::{}::", "net");
    let unix_net = format!("os::unix::{}", "net");
    let fault_injector = format!("Fault{}", "Injector");
    let fault_plan = format!("Fault{}", "Plan");
    let dense_zeros = format!("Matrix::{}", "zeros(");
    let series_call = format!("walk_{}", "series");
    let topk_call = format!("top_k_{}", "from");

    let mut findings = Vec::new();
    let mut codes: Vec<(u16, String)> = Vec::new();
    for path in &files {
        let rel = path.strip_prefix(&root).unwrap_or(path);
        let krate = crate_of(rel).unwrap_or("");
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("srclint: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let in_rules = rel.ends_with("check/src/rules.rs");
        let in_cert_path =
            rel.ends_with("check/src/contract.rs") || rel.ends_with("check/src/certify.rs");
        for (i, line) in text.lines().enumerate() {
            let loc = format!("{}:{}", rel.display(), i + 1);
            let trimmed = line.trim_start();
            if !WALL_CLOCK_ALLOWED.contains(&krate) && line.contains(&wall_clock) {
                findings.push(format!("{loc}: wall-clock ({wall_clock}) outside substrate/serve"));
            }
            if krate != "substrate" {
                if trimmed.starts_with(&use_rand) || trimmed.starts_with(&extern_rand) {
                    findings.push(format!("{loc}: external randomness import outside crates/substrate"));
                }
                if trimmed.starts_with(&use_serde) || trimmed.starts_with(&extern_serde) {
                    findings.push(format!("{loc}: external serialisation import outside crates/substrate"));
                }
            }
            if line.contains(&monotonic) && !INSTANT_ALLOWED.contains(&krate) {
                findings.push(format!("{loc}: monotonic clock read outside substrate/obs/bench/serve"));
            }
            if (line.contains(&tcp_net) || line.contains(&unix_net))
                && !NET_ALLOWED.contains(&krate)
            {
                findings.push(format!("{loc}: socket use outside crates/serve"));
            }
            if (line.contains(&fault_injector) || line.contains(&fault_plan))
                && !FAULT_ALLOWED.contains(&krate)
            {
                findings.push(format!("{loc}: fault-injection shim outside substrate/serve/bench"));
            }
            if DENSE_ALLOC_BANNED.contains(&krate) {
                if let Some(pos) = line.find(&dense_zeros) {
                    let rest = &line[pos + dense_zeros.len()..];
                    if let Some(end) = rest.find(')') {
                        let args: Vec<&str> = rest[..end].split(',').map(str::trim).collect();
                        let square_symbolic = args.len() == 2
                            && args[0] == args[1]
                            && args[0]
                                .chars()
                                .next()
                                .is_some_and(|c| !c.is_ascii_digit());
                        if square_symbolic {
                            findings.push(format!(
                                "{loc}: square dense allocation ({dense_zeros}{a}, {a})) in crates/{krate} — route through InfluenceMatrix",
                                a = args[0]
                            ));
                        }
                    }
                }
            }
            if in_cert_path && (line.contains(&series_call) || line.contains(&topk_call)) {
                findings.push(format!(
                    "{loc}: exact series recompute on the certification path — C017+ must stay O(degree) contract arithmetic"
                ));
            }
            if in_rules {
                if let Some(rest) = trimmed.strip_prefix(&code_decl) {
                    if let Ok(n) = rest.trim_end_matches("),").trim_end_matches(')').parse::<u16>() {
                        if let Some((_, first)) = codes.iter().find(|(c, _)| *c == n) {
                            findings.push(format!("{loc}: duplicate diagnostic code C{n:03} (first declared at {first})"));
                        } else {
                            codes.push((n, loc.clone()));
                        }
                    }
                }
            }
        }
    }

    for f in &findings {
        println!("srclint: {f}");
    }
    println!(
        "srclint: scanned {} files, {} finding(s), {} diagnostic codes",
        files.len(),
        findings.len(),
        codes.len()
    );
    ExitCode::from(u8::from(!findings.is_empty()))
}
