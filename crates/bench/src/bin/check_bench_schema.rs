//! `check_bench_schema` — validates `BENCH_*.json` artefacts.
//!
//! Every committed bench artefact must follow the `fcm-bench/v1` schema
//! documented in DESIGN.md §Observability:
//!
//! * top level: object with `schema` (string starting `fcm-bench/`),
//!   `suite` (non-empty string), `benchmarks` (non-empty array), and
//!   optionally `telemetry` (array of stage snapshots) and `overhead`
//!   (object of numeric ratios); nothing else;
//! * each `benchmarks` entry: `name` (non-empty string), `iters` ≥ 1,
//!   and nanosecond statistics `min_ns` / `mean_ns` / `median_ns` /
//!   `p95_ns` / `max_ns`, all numeric, non-negative, and consistently
//!   ordered (`min ≤ median ≤ p95 ≤ max`, `min ≤ mean ≤ max`);
//! * each `telemetry` entry: `stage` (string) with numeric `spans`,
//!   `total_ns`, `count`;
//! * grid suites (`sparse_kernel`) may attach per-entry problem-size
//!   metadata: when any of `n` / `nnz` / `density` is present all three
//!   are required (`n` ≥ 1, `nnz` ≥ 0, `density` ∈ [0, 1]), and
//!   `oracle`, when present, must be `"bitwise-equal"` or `"skipped"`
//!   and travel with the size keys;
//! * the `obs_live` suite must carry an `overhead` object with numeric
//!   `recorder_pct` and `serve_latency_pct` — the telemetry-plane cost
//!   figures the acceptance bound reads.
//!
//! Usage: `check_bench_schema <file.json>...` — prints one line per
//! problem; exit codes follow the repo-wide contract (DESIGN.md):
//! 0 = all files pass (or `--help`), 1 = a file fails, 2 = usage error.
//! `scripts/check_bench_schema.sh` runs it over every artefact in the
//! repo root; `scripts/verify.sh` runs that before merging.

use fcm_substrate::Json;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("usage: check_bench_schema <BENCH_file.json> ...");
        std::process::exit(0);
    }
    if args.is_empty() {
        eprintln!("usage: check_bench_schema <BENCH_file.json> ...");
        std::process::exit(2);
    }
    let mut failed = false;
    for path in &args {
        match std::fs::read_to_string(path) {
            Ok(text) => {
                let problems = validate(&text);
                if problems.is_empty() {
                    println!("{path}: OK");
                } else {
                    failed = true;
                    for p in problems {
                        eprintln!("{path}: {p}");
                    }
                }
            }
            Err(e) => {
                failed = true;
                eprintln!("{path}: cannot read: {e}");
            }
        }
    }
    std::process::exit(i32::from(failed));
}

/// All schema violations in one artefact (empty = valid).
fn validate(text: &str) -> Vec<String> {
    let j = match Json::parse(text) {
        Ok(j) => j,
        Err(e) => return vec![format!("not JSON: {e}")],
    };
    let Json::Obj(top) = &j else {
        return vec!["top level is not an object".into()];
    };
    let mut problems = Vec::new();
    for key in top.keys() {
        if !matches!(key.as_str(), "schema" | "suite" | "benchmarks" | "telemetry" | "overhead") {
            problems.push(format!("unknown top-level key '{key}'"));
        }
    }
    match j.get("schema").and_then(Json::as_str) {
        Some(s) if s.starts_with("fcm-bench/") => {}
        Some(s) => problems.push(format!("schema {s:?} does not start with 'fcm-bench/'")),
        None => problems.push("missing string 'schema'".into()),
    }
    match j.get("suite").and_then(Json::as_str) {
        Some(s) if !s.is_empty() => {}
        _ => problems.push("missing non-empty string 'suite'".into()),
    }
    match j.get("benchmarks").and_then(Json::as_array) {
        Some([]) => problems.push("'benchmarks' array is empty".into()),
        Some(entries) => {
            for (i, entry) in entries.iter().enumerate() {
                for p in validate_benchmark(entry) {
                    problems.push(format!("benchmarks[{i}]: {p}"));
                }
            }
        }
        None => problems.push("missing 'benchmarks' array".into()),
    }
    if let Some(tel) = j.get("telemetry") {
        match tel.as_array() {
            Some(entries) => {
                for (i, entry) in entries.iter().enumerate() {
                    if entry.get("stage").and_then(Json::as_str).is_none() {
                        problems.push(format!("telemetry[{i}]: missing string 'stage'"));
                    }
                    for key in ["spans", "total_ns", "count"] {
                        if entry.get(key).and_then(Json::as_f64).is_none() {
                            problems.push(format!("telemetry[{i}]: missing numeric '{key}'"));
                        }
                    }
                }
            }
            None => problems.push("'telemetry' is not an array".into()),
        }
    }
    if let Some(overhead) = j.get("overhead") {
        match overhead {
            Json::Obj(map) => {
                for (k, v) in map {
                    if v.as_f64().is_none() {
                        problems.push(format!("overhead['{k}'] is not numeric"));
                    }
                }
            }
            _ => problems.push("'overhead' is not an object".into()),
        }
    }
    if j.get("suite").and_then(Json::as_str) == Some("obs_live") {
        for key in ["recorder_pct", "serve_latency_pct"] {
            if j.get("overhead").and_then(|o| o.get(key)).and_then(Json::as_f64).is_none() {
                problems.push(format!("obs_live suite: missing numeric overhead.{key}"));
            }
        }
    }
    problems
}

fn validate_benchmark(entry: &Json) -> Vec<String> {
    let mut problems = Vec::new();
    match entry.get("name").and_then(Json::as_str) {
        Some(n) if !n.is_empty() => {}
        _ => problems.push("missing non-empty string 'name'".into()),
    }
    let mut stat = |key: &str| -> Option<f64> {
        match entry.get(key).and_then(Json::as_f64) {
            Some(v) if v >= 0.0 => Some(v),
            Some(v) => {
                problems.push(format!("'{key}' is negative ({v})"));
                None
            }
            None => {
                problems.push(format!("missing numeric '{key}'"));
                None
            }
        }
    };
    let iters = stat("iters");
    let min = stat("min_ns");
    let mean = stat("mean_ns");
    let median = stat("median_ns");
    let p95 = stat("p95_ns");
    let max = stat("max_ns");
    if let Some(it) = iters {
        if it < 1.0 {
            problems.push(format!("'iters' must be >= 1 (got {it})"));
        }
    }
    if let (Some(min), Some(median), Some(p95), Some(max)) = (min, median, p95, max) {
        if !(min <= median && median <= p95 && p95 <= max) {
            problems.push(format!(
                "statistics out of order: min={min} median={median} p95={p95} max={max}"
            ));
        }
    }
    if let (Some(min), Some(mean), Some(max)) = (min, mean, max) {
        if !(min <= mean && mean <= max) {
            problems.push(format!("mean {mean} outside [min {min}, max {max}]"));
        }
    }
    // Sparse-grid metadata: optional, but the size keys travel together
    // and the oracle verdict is a closed enum.
    let has = |k: &str| entry.get(k).is_some();
    if has("n") || has("nnz") || has("density") {
        match entry.get("n").and_then(Json::as_f64) {
            Some(v) if v >= 1.0 => {}
            Some(v) => problems.push(format!("'n' must be >= 1 (got {v})")),
            None => problems.push("grid entry: missing numeric 'n'".into()),
        }
        match entry.get("nnz").and_then(Json::as_f64) {
            Some(v) if v >= 0.0 => {}
            Some(v) => problems.push(format!("'nnz' must be >= 0 (got {v})")),
            None => problems.push("grid entry: missing numeric 'nnz'".into()),
        }
        match entry.get("density").and_then(Json::as_f64) {
            Some(v) if (0.0..=1.0).contains(&v) => {}
            Some(v) => problems.push(format!("'density' must be in [0, 1] (got {v})")),
            None => problems.push("grid entry: missing numeric 'density'".into()),
        }
    }
    if let Some(oracle) = entry.get("oracle") {
        match oracle.as_str() {
            Some("bitwise-equal" | "skipped") => {}
            _ => problems.push(format!(
                "'oracle' must be \"bitwise-equal\" or \"skipped\" (got {oracle})"
            )),
        }
        if !has("n") {
            problems.push("'oracle' requires the grid keys n/nnz/density".into());
        }
    }
    problems
}
