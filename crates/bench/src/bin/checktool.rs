//! Design-time static analysis over the committed workload models.
//!
//! ```text
//! checktool [--json] [--broken-e14] [--contracts FILE | --emit-contracts] [model...]
//! ```
//!
//! Runs the full `fcm-check` catalog over the named workload models
//! (default: all of them) and prints one report per model, human
//! readable or as a `fcm-check/v1` JSON document with `--json`.
//! `--broken-e14` appends the deliberately damaged avionics model from
//! EXPERIMENTS.md so the failure path is demonstrable.
//!
//! `--contracts FILE` attaches an `fcm-contracts/v1` document to every
//! selected model, arming the compositional rules C017–C022;
//! `--emit-contracts` instead synthesizes the tightest passing contract
//! set for exactly one model and prints it — the round trip
//! `checktool M --emit-contracts > c.json && checktool M --contracts
//! c.json` always exits 0.
//!
//! Exit codes follow the repo-wide contract (DESIGN.md): 0 = every
//! model clean of errors, 1 = at least one error diagnostic, 2 = usage
//! error (unknown flag or model name, unreadable or malformed contract
//! file, `--emit-contracts` over several models).

use std::process::ExitCode;

use fcm_bench::models;
use fcm_check::{contract, run_checks, ContractSet, Severity};
use fcm_substrate::{Json, ToJson};

const USAGE: &str = "usage: checktool [--json] [--broken-e14] [--contracts FILE | --emit-contracts] [model...]
  models: paper avionics        (default: all)
  --json             emit one fcm-check/v1 JSON document instead of text
  --broken-e14       also analyse the deliberately broken avionics model
  --contracts FILE   attach an fcm-contracts/v1 file (arms rules C017-C022)
  --emit-contracts   print the tightest passing contract set for one model
exit codes: 0 = clean, 1 = error diagnostics found, 2 = usage error";

fn main() -> ExitCode {
    let mut json = false;
    let mut broken = false;
    let mut emit = false;
    let mut contracts_path: Option<String> = None;
    let mut names: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--json" => json = true,
            "--broken-e14" => broken = true,
            "--emit-contracts" => emit = true,
            "--contracts" => match args.next() {
                Some(path) => contracts_path = Some(path),
                None => {
                    eprintln!("checktool: --contracts needs a file path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            flag if flag.starts_with('-') => {
                eprintln!("checktool: unknown flag {flag}\n{USAGE}");
                return ExitCode::from(2);
            }
            name => names.push(name.to_string()),
        }
    }
    if emit && contracts_path.is_some() {
        eprintln!("checktool: --emit-contracts and --contracts are mutually exclusive\n{USAGE}");
        return ExitCode::from(2);
    }
    if names.is_empty() {
        names = models::MODEL_NAMES.iter().map(|s| s.to_string()).collect();
    }

    fcm_check::gates::install();
    let mut selected = Vec::new();
    for name in &names {
        match models::model_by_name(name) {
            Some(m) => selected.push(m),
            None => {
                eprintln!(
                    "checktool: unknown model {name} (expected one of: {})",
                    models::MODEL_NAMES.join(", ")
                );
                return ExitCode::from(2);
            }
        }
    }
    if broken {
        selected.push(models::broken_e14_model());
    }

    if emit {
        if selected.len() != 1 {
            eprintln!("checktool: --emit-contracts takes exactly one model\n{USAGE}");
            return ExitCode::from(2);
        }
        let Some(set) = contract::synthesize_for_model(&selected[0]) else {
            eprintln!("checktool: model has no influence matrix to synthesize contracts from");
            return ExitCode::from(2);
        };
        println!("{}", set.to_json().to_string_pretty());
        return ExitCode::SUCCESS;
    }

    if let Some(path) = &contracts_path {
        let set = match load_contracts(path) {
            Ok(set) => set,
            Err(e) => {
                eprintln!("checktool: {e}");
                return ExitCode::from(2);
            }
        };
        selected = selected
            .into_iter()
            .map(|m| m.with_contracts(set.clone()))
            .collect();
    }

    let reports: Vec<_> = selected.iter().map(run_checks).collect();
    let failed = reports.iter().any(fcm_check::Report::has_errors);

    if json {
        let doc = Json::object()
            .set("schema", "fcm-check/v1")
            .set("errors", reports.iter().map(|r| r.count(Severity::Error)).sum::<usize>() as f64)
            .set("reports", Json::Arr(reports.iter().map(ToJson::to_json).collect()));
        println!("{}", doc.to_string_pretty());
    } else {
        for report in &reports {
            println!("{}", report.render());
        }
    }
    ExitCode::from(u8::from(failed))
}

fn load_contracts(path: &str) -> Result<ContractSet, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read contracts file {path}: {e}"))?;
    let doc = Json::parse(&text).map_err(|e| format!("contracts file {path}: {e}"))?;
    ContractSet::from_json(&doc).map_err(|e| format!("contracts file {path}: {e}"))
}
