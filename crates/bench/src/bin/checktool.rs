//! Design-time static analysis over the committed workload models.
//!
//! ```text
//! checktool [--json] [--broken-e14] [model...]
//! ```
//!
//! Runs the full `fcm-check` catalog over the named workload models
//! (default: all of them) and prints one report per model, human
//! readable or as a `fcm-check/v1` JSON document with `--json`.
//! `--broken-e14` appends the deliberately damaged avionics model from
//! EXPERIMENTS.md so the failure path is demonstrable.
//!
//! Exit codes follow the repo-wide contract (DESIGN.md): 0 = every
//! model clean of errors, 1 = at least one error diagnostic, 2 = usage
//! error (unknown flag or model name).

use std::process::ExitCode;

use fcm_bench::models;
use fcm_check::{run_checks, Severity};
use fcm_substrate::{Json, ToJson};

const USAGE: &str = "usage: checktool [--json] [--broken-e14] [model...]
  models: paper avionics        (default: all)
  --json        emit one fcm-check/v1 JSON document instead of text
  --broken-e14  also analyse the deliberately broken avionics model
exit codes: 0 = clean, 1 = error diagnostics found, 2 = usage error";

fn main() -> ExitCode {
    let mut json = false;
    let mut broken = false;
    let mut names: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            "--json" => json = true,
            "--broken-e14" => broken = true,
            flag if flag.starts_with('-') => {
                eprintln!("checktool: unknown flag {flag}\n{USAGE}");
                return ExitCode::from(2);
            }
            name => names.push(name.to_string()),
        }
    }
    if names.is_empty() {
        names = models::MODEL_NAMES.iter().map(|s| s.to_string()).collect();
    }

    fcm_check::gates::install();
    let mut selected = Vec::new();
    for name in &names {
        match models::model_by_name(name) {
            Some(m) => selected.push(m),
            None => {
                eprintln!(
                    "checktool: unknown model {name} (expected one of: {})",
                    models::MODEL_NAMES.join(", ")
                );
                return ExitCode::from(2);
            }
        }
    }
    if broken {
        selected.push(models::broken_e14_model());
    }

    let reports: Vec<_> = selected.iter().map(run_checks).collect();
    let failed = reports.iter().any(fcm_check::Report::has_errors);

    if json {
        let doc = Json::object()
            .set("schema", "fcm-check/v1")
            .set("errors", reports.iter().map(|r| r.count(Severity::Error)).sum::<usize>() as f64)
            .set("reports", Json::Arr(reports.iter().map(ToJson::to_json).collect()));
        println!("{}", doc.to_string_pretty());
    } else {
        for report in &reports {
            println!("{}", report.render());
        }
    }
    ExitCode::from(u8::from(failed))
}
