//! Regenerates every table and figure of the paper plus the extension
//! experiments E1–E14.
//!
//! ```text
//! cargo run --release -p fcm-bench --bin repro            # everything
//! cargo run --release -p fcm-bench --bin repro -- t1 f6   # a selection
//! cargo run --release -p fcm-bench --bin repro -- --quick # reduced scale
//! cargo run --release -p fcm-bench --bin repro -- f3 --dot # Graphviz output
//! cargo run --release -p fcm-bench --bin repro -- --seed 7 # reseed streams
//! ```
//!
//! Every run is deterministic: the default base seed is fixed, so two
//! invocations with the same arguments produce byte-identical output.
//! After each experiment a wall-time line and the stage-telemetry
//! summary are printed with a `# ` prefix — those lines carry
//! wall-clock measurements, so byte-comparisons (`scripts/verify.sh`)
//! strip them with `grep -v '^# '`.

use std::time::Instant;

use fcm_bench::experiments::{self, Scale};
use fcm_substrate::telemetry;

/// Every valid experiment id with its one-line description — the single
/// source of truth for `--list` and for unknown-id rejection.
const EXPERIMENTS: [(&str, &str); 21] = [
    ("t1", "Table 1: example process attributes"),
    ("f3", "Fig. 3: initial SW influence graph (--dot available)"),
    ("f4", "Fig. 4: replica-expanded graph (--dot available)"),
    ("f5", "Fig. 5: Eq. 4 cluster influence"),
    ("f6", "Fig. 6: H1 reduction to the 6-node platform"),
    ("f7", "Fig. 7: criticality-driven integration"),
    ("f8", "Fig. 8: timing-ordered refinement"),
    ("e1", "heuristic ablation"),
    ("e2", "separation-series convergence"),
    ("e3", "measured vs analytic influence"),
    ("e4", "mission reliability of competing strategies"),
    ("e5", "schedulability vs utilisation"),
    ("e6", "R5 retest set vs naive recertification"),
    ("e7", "isolation-technique ablation"),
    ("e8", "integration-depth tradeoff"),
    ("e9", "HW platform selection"),
    ("e10", "heuristic x interaction structure"),
    ("e11", "materialised-system validation"),
    ("e12", "measured workflow end to end"),
    ("e13", "TMR voting in the materialised system"),
    ("e14", "node-failure recovery policy sweep"),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let dot = args.iter().any(|a| a == "--dot");
    let seed = parse_seed(&args);
    let scale = if quick { Scale::QUICK } else { Scale::FULL }.with_seed(seed);
    if args.iter().any(|a| a == "--list") {
        for (id, what) in EXPERIMENTS {
            println!("{id:<4} {what}");
        }
        return;
    }
    let mut selected: Vec<&str> = Vec::new();
    let mut skip_value = false;
    for a in &args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if a == "--seed" {
            skip_value = true;
        } else if !a.starts_with("--") {
            selected.push(a.as_str());
        }
    }
    // Reject unknown ids up front: a typo must not silently run nothing.
    let unknown: Vec<&str> = selected
        .iter()
        .copied()
        .filter(|s| !EXPERIMENTS.iter().any(|(id, _)| s.eq_ignore_ascii_case(id)))
        .collect();
    if !unknown.is_empty() {
        eprintln!("unknown experiment id(s): {}", unknown.join(", "));
        eprintln!(
            "valid ids: {}",
            EXPERIMENTS
                .iter()
                .map(|(id, _)| *id)
                .collect::<Vec<_>>()
                .join(" ")
        );
        std::process::exit(2);
    }
    let want =
        |id: &str| selected.is_empty() || selected.iter().any(|s| s.eq_ignore_ascii_case(id));

    if want("t1") {
        emit("T1  Table 1: example process attributes", || {
            experiments::t1().to_string()
        });
    }
    if want("f3") {
        emit("F3  Fig. 3: initial SW influence graph", || {
            if dot {
                experiments::f3_dot()
            } else {
                experiments::f3().to_string()
            }
        });
    }
    if want("f4") {
        emit("F4  Fig. 4: replica-expanded graph", || {
            if dot {
                experiments::f4_dot()
            } else {
                experiments::f4().to_string()
            }
        });
    }
    if want("f5") {
        emit("F5  Fig. 5: Eq. 4 cluster influence", || {
            experiments::f5().to_string()
        });
    }
    if want("f6") {
        emit("F6  Fig. 6: H1 reduction to the 6-node platform", || {
            experiments::f6().to_string()
        });
    }
    if want("f7") {
        emit("F7  Fig. 7: criticality-driven integration", || {
            experiments::f7().to_string()
        });
    }
    if want("f8") {
        emit("F8  Fig. 8: timing-ordered refinement", || {
            experiments::f8().to_string()
        });
    }
    if want("e1") {
        emit("E1  heuristic ablation (residual cross-node influence)", || {
            experiments::e1(scale).to_string()
        });
    }
    if want("e2") {
        emit("E2  separation-series convergence (Eq. 3 truncation)", || {
            experiments::e2().to_string()
        });
    }
    if want("e3") {
        emit("E3  measured vs analytic influence (Eq. 1/2)", || {
            experiments::e3(scale).to_string()
        });
    }
    if want("e4") {
        emit("E4  mission reliability of competing strategies", || {
            experiments::e4(scale).to_string()
        });
    }
    if want("e5") {
        emit("E5  schedulability vs utilisation", || {
            experiments::e5(scale).to_string()
        });
    }
    if want("e6") {
        emit("E6  R5 retest set vs naive recertification", || {
            experiments::e6().to_string()
        });
    }
    if want("e7") {
        emit("E7  isolation-technique ablation", || {
            experiments::e7(scale).to_string()
        });
    }
    if want("e8") {
        emit(
            "E8  integration-depth tradeoff (the paper's deferred study)",
            || experiments::e8(scale).to_string(),
        );
    }
    if want("e9") {
        emit("E9  HW platform selection under a reliability target", || {
            experiments::e9(scale).to_string()
        });
    }
    if want("e10") {
        emit("E10 heuristic × interaction structure", || {
            experiments::e10().to_string()
        });
    }
    if want("e11") {
        emit(
            "E11 materialised-system validation (simulator in the loop)",
            || experiments::e11(scale).to_string(),
        );
    }
    if want("e12") {
        emit(
            "E12 measured workflow: campaign -> SW graph -> integration",
            || experiments::e12(scale),
        );
    }
    if want("e13") {
        emit("E13 TMR voting in the materialised system", || {
            experiments::e13(scale).to_string()
        });
    }
    if want("e14") {
        emit("E14 node-failure recovery policy sweep", || {
            experiments::e14(scale).to_string()
        });
    }
}

/// Runs one experiment: section header, the experiment's own output,
/// then the `# `-prefixed wall time and per-stage telemetry summary
/// (the global sink is reset first, so the stages belong to this
/// experiment alone). The `# ` lines are the only non-deterministic
/// output — byte comparisons must strip them.
fn emit(title: &str, body: impl FnOnce() -> String) {
    println!("\n=== {title} ===");
    telemetry::global().reset();
    let t0 = Instant::now();
    let out = body();
    let wall = t0.elapsed();
    print!("{out}");
    println!("# wall {:.3}s", wall.as_secs_f64());
    for line in telemetry::global().summary_lines() {
        println!("# {line}");
    }
}

/// Parses `--seed <n>` (also `--seed=<n>`); defaults to 0, the fixed
/// seed every published table is generated with.
fn parse_seed(args: &[String]) -> u64 {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--seed" {
            let v = it.next().unwrap_or_else(|| {
                eprintln!("--seed requires a value");
                std::process::exit(2);
            });
            return parse_or_die(v);
        }
        if let Some(v) = a.strip_prefix("--seed=") {
            return parse_or_die(v);
        }
    }
    0
}

fn parse_or_die(v: &str) -> u64 {
    v.parse().unwrap_or_else(|_| {
        eprintln!("invalid --seed value: {v}");
        std::process::exit(2);
    })
}
