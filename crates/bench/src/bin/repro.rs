//! Regenerates every table and figure of the paper plus the extension
//! experiments E1–E14.
//!
//! ```text
//! cargo run --release -p fcm-bench --bin repro            # everything
//! cargo run --release -p fcm-bench --bin repro -- t1 f6   # a selection
//! cargo run --release -p fcm-bench --bin repro -- --quick # reduced scale
//! cargo run --release -p fcm-bench --bin repro -- f3 --dot # Graphviz output
//! cargo run --release -p fcm-bench --bin repro -- --seed 7 # reseed streams
//! cargo run --release -p fcm-bench --bin repro -- e14 --obs-out trace.jsonl
//! cargo run --release -p fcm-bench --bin repro -- --check e5 e14
//! ```
//!
//! Every run is deterministic: the default base seed is fixed, so two
//! invocations with the same arguments produce byte-identical output.
//! After each experiment a wall-time line and the stage-telemetry
//! summary are printed with a `# ` prefix — those lines carry
//! wall-clock measurements, so byte-comparisons (`scripts/verify.sh`)
//! strip them with `grep -v '^# '`.
//!
//! `--obs-out <path>` (or the `FCM_OBS_OUT` environment variable)
//! enables the `fcm-obs` observability layer and writes its JSONL
//! event log to `path` at exit; render it with the `obsview` binary.
//! The experiment tables stay byte-identical with observability on or
//! off — only the `# ` lines and the event log differ.

use std::time::Instant;

use fcm_bench::experiments::{self, Scale};
use fcm_substrate::telemetry;

/// One line per flag — the single source of truth for `--help` and the
/// unknown-flag error text.
const FLAG_HELP: [(&str, &str); 7] = [
    ("--quick", "reduced experiment scale (fast smoke run)"),
    ("--dot", "Graphviz output for f3/f4"),
    ("--list", "list experiment ids and exit"),
    (
        "--check",
        "static-analyse the selected experiments' workload models and exit",
    ),
    ("--seed <n>", "override the base seed (default 0)"),
    (
        "--obs-out <path>",
        "write the fcm-obs JSONL event log to <path> (env: FCM_OBS_OUT)",
    ),
    ("--help", "this text"),
];

/// Every valid experiment id with its one-line description — the single
/// source of truth for `--list` and for unknown-id rejection.
const EXPERIMENTS: [(&str, &str); 22] = [
    ("t1", "Table 1: example process attributes"),
    ("f3", "Fig. 3: initial SW influence graph (--dot available)"),
    ("f4", "Fig. 4: replica-expanded graph (--dot available)"),
    ("f5", "Fig. 5: Eq. 4 cluster influence"),
    ("f6", "Fig. 6: H1 reduction to the 6-node platform"),
    ("f7", "Fig. 7: criticality-driven integration"),
    ("f8", "Fig. 8: timing-ordered refinement"),
    ("e1", "heuristic ablation"),
    ("e2", "separation-series convergence"),
    ("e3", "measured vs analytic influence"),
    ("e4", "mission reliability of competing strategies"),
    ("e5", "schedulability vs utilisation"),
    ("e6", "R5 retest set vs naive recertification"),
    ("e7", "isolation-technique ablation"),
    ("e8", "integration-depth tradeoff"),
    ("e9", "HW platform selection"),
    ("e10", "heuristic x interaction structure"),
    ("e11", "materialised-system validation"),
    ("e12", "measured workflow end to end"),
    ("e13", "TMR voting in the materialised system"),
    ("e14", "node-failure recovery policy sweep"),
    ("e15", "sparse large-n analysis engine"),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print_help();
        return;
    }
    reject_unknown_flags(&args);
    let quick = args.iter().any(|a| a == "--quick");
    let dot = args.iter().any(|a| a == "--dot");
    let seed = parse_seed(&args);
    let scale = if quick { Scale::QUICK } else { Scale::FULL }.with_seed(seed);
    if args.iter().any(|a| a == "--list") {
        for (id, what) in EXPERIMENTS {
            println!("{id:<4} {what}");
        }
        return;
    }
    let obs_out = parse_obs_out(&args);
    if let Some(path) = &obs_out {
        // Fail fast on an unwritable path, before hours of experiments.
        if let Err(e) = std::fs::File::create(path) {
            eprintln!("cannot write obs log {path}: {e}");
            std::process::exit(2);
        }
        fcm_obs::init(fcm_obs::ObsConfig::default());
    }
    let mut selected: Vec<&str> = Vec::new();
    let mut skip_value = false;
    for a in &args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if a == "--seed" || a == "--obs-out" {
            skip_value = true;
        } else if !a.starts_with("--") {
            selected.push(a.as_str());
        }
    }
    // Reject unknown ids up front: a typo must not silently run nothing.
    let unknown: Vec<&str> = selected
        .iter()
        .copied()
        .filter(|s| !EXPERIMENTS.iter().any(|(id, _)| s.eq_ignore_ascii_case(id)))
        .collect();
    if !unknown.is_empty() {
        eprintln!("unknown experiment id(s): {}", unknown.join(", "));
        eprintln!(
            "valid ids: {}",
            EXPERIMENTS
                .iter()
                .map(|(id, _)| *id)
                .collect::<Vec<_>>()
                .join(" ")
        );
        std::process::exit(2);
    }
    if args.iter().any(|a| a == "--check") {
        run_check_mode(&selected);
    }
    let want =
        |id: &str| selected.is_empty() || selected.iter().any(|s| s.eq_ignore_ascii_case(id));

    if want("t1") {
        emit("T1  Table 1: example process attributes", || {
            experiments::t1().to_string()
        });
    }
    if want("f3") {
        emit("F3  Fig. 3: initial SW influence graph", || {
            if dot {
                experiments::f3_dot()
            } else {
                experiments::f3().to_string()
            }
        });
    }
    if want("f4") {
        emit("F4  Fig. 4: replica-expanded graph", || {
            if dot {
                experiments::f4_dot()
            } else {
                experiments::f4().to_string()
            }
        });
    }
    if want("f5") {
        emit("F5  Fig. 5: Eq. 4 cluster influence", || {
            experiments::f5().to_string()
        });
    }
    if want("f6") {
        emit("F6  Fig. 6: H1 reduction to the 6-node platform", || {
            experiments::f6().to_string()
        });
    }
    if want("f7") {
        emit("F7  Fig. 7: criticality-driven integration", || {
            experiments::f7().to_string()
        });
    }
    if want("f8") {
        emit("F8  Fig. 8: timing-ordered refinement", || {
            experiments::f8().to_string()
        });
    }
    if want("e1") {
        emit("E1  heuristic ablation (residual cross-node influence)", || {
            experiments::e1(scale).to_string()
        });
    }
    if want("e2") {
        emit("E2  separation-series convergence (Eq. 3 truncation)", || {
            experiments::e2().to_string()
        });
    }
    if want("e3") {
        emit("E3  measured vs analytic influence (Eq. 1/2)", || {
            experiments::e3(scale).to_string()
        });
    }
    if want("e4") {
        emit("E4  mission reliability of competing strategies", || {
            experiments::e4(scale).to_string()
        });
    }
    if want("e5") {
        emit("E5  schedulability vs utilisation", || {
            experiments::e5(scale).to_string()
        });
    }
    if want("e6") {
        emit("E6  R5 retest set vs naive recertification", || {
            experiments::e6().to_string()
        });
    }
    if want("e7") {
        emit("E7  isolation-technique ablation", || {
            experiments::e7(scale).to_string()
        });
    }
    if want("e8") {
        emit(
            "E8  integration-depth tradeoff (the paper's deferred study)",
            || experiments::e8(scale).to_string(),
        );
    }
    if want("e9") {
        emit("E9  HW platform selection under a reliability target", || {
            experiments::e9(scale).to_string()
        });
    }
    if want("e10") {
        emit("E10 heuristic × interaction structure", || {
            experiments::e10().to_string()
        });
    }
    if want("e11") {
        emit(
            "E11 materialised-system validation (simulator in the loop)",
            || experiments::e11(scale).to_string(),
        );
    }
    if want("e12") {
        emit(
            "E12 measured workflow: campaign -> SW graph -> integration",
            || experiments::e12(scale),
        );
    }
    if want("e13") {
        emit("E13 TMR voting in the materialised system", || {
            experiments::e13(scale).to_string()
        });
    }
    if want("e14") {
        emit("E14 node-failure recovery policy sweep", || {
            experiments::e14(scale).to_string()
        });
    }
    if want("e15") {
        emit("E15 sparse large-n analysis engine (oracle-checked CSR sweep)", || {
            experiments::e15(scale).to_string()
        });
    }

    if let Some(path) = &obs_out {
        if let Err(e) = fcm_obs::export::export_to(std::path::Path::new(path)) {
            eprintln!("cannot write obs log {path}: {e}");
            std::process::exit(2);
        }
        println!("# obs log written to {path}");
    }
}

/// `--check`: static-analyse the workload models behind the selected
/// experiment ids (default: all) and exit without running anything.
/// This is the pre-flight gate of `scripts/verify.sh` — a model with
/// error diagnostics must never reach the experiment drivers, so a
/// failed check exits 2 (the run is rejected before it starts).
fn run_check_mode(selected: &[&str]) -> ! {
    fcm_check::gates::install();
    let ids: Vec<String> = if selected.is_empty() {
        EXPERIMENTS.iter().map(|(id, _)| id.to_string()).collect()
    } else {
        selected.iter().map(|s| s.to_ascii_lowercase()).collect()
    };
    let wanted: Vec<&str> = fcm_bench::models::MODEL_NAMES
        .iter()
        .copied()
        .filter(|name| {
            ids.iter()
                .any(|id| fcm_bench::models::models_for_experiment(id).contains(name))
        })
        .collect();
    let mut failed = false;
    for name in wanted {
        let model = fcm_bench::models::model_by_name(name).expect("MODEL_NAMES entries resolve");
        let report = fcm_check::run_checks(&model);
        println!("{}", report.render());
        failed |= report.has_errors();
    }
    if failed {
        eprintln!("pre-flight model check failed: experiments were not run");
        std::process::exit(2);
    }
    std::process::exit(0);
}

/// Prints the usage text (every flag, experiment selection, env vars).
fn print_help() {
    println!("repro — regenerate every table and figure of the paper plus E1-E15");
    println!();
    println!("usage: repro [FLAGS] [EXPERIMENT_ID ...]");
    println!();
    println!("flags:");
    for (flag, what) in FLAG_HELP {
        println!("  {flag:<18} {what}");
    }
    println!();
    println!("environment:");
    println!("  FCM_OBS_OUT        like --obs-out (the flag wins when both are set)");
    println!("  FCM_SWEEP_THREADS  sweep thread count (1 forces sequential)");
    println!();
    println!("experiment ids (default: all, see --list):");
    println!(
        "  {}",
        EXPERIMENTS
            .iter()
            .map(|(id, _)| *id)
            .collect::<Vec<_>>()
            .join(" ")
    );
}

/// Rejects any `--flag` that is not in [`FLAG_HELP`], exit code 2 — a
/// typo like `--obsout` must not silently run without observability.
fn reject_unknown_flags(args: &[String]) {
    let known = ["--quick", "--dot", "--list", "--check", "--seed", "--obs-out"];
    let mut skip_value = false;
    for a in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if !a.starts_with("--") {
            continue;
        }
        let name = a.split('=').next().unwrap_or(a);
        if !known.contains(&name) {
            eprintln!("unknown flag: {a}");
            eprintln!("valid flags:");
            for (flag, what) in FLAG_HELP {
                eprintln!("  {flag:<18} {what}");
            }
            std::process::exit(2);
        }
        if (name == "--seed" || name == "--obs-out") && !a.contains('=') {
            skip_value = true;
        }
    }
}

/// Resolves the obs event-log path: `--obs-out <path>` / `--obs-out=`
/// beats the `FCM_OBS_OUT` environment variable; `None` disables
/// observability entirely.
fn parse_obs_out(args: &[String]) -> Option<String> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--obs-out" {
            match it.next() {
                Some(v) => return Some(v.clone()),
                None => {
                    eprintln!("--obs-out requires a value");
                    std::process::exit(2);
                }
            }
        }
        if let Some(v) = a.strip_prefix("--obs-out=") {
            return Some(v.to_string());
        }
    }
    std::env::var(fcm_obs::OBS_OUT_ENV)
        .ok()
        .filter(|v| !v.is_empty())
}

/// Runs one experiment: section header, the experiment's own output,
/// then the `# `-prefixed wall time and per-stage telemetry summary
/// (the global sink is reset first, so the stages belong to this
/// experiment alone). The `# ` lines are the only non-deterministic
/// output — byte comparisons must strip them.
///
/// When observability is enabled the whole experiment runs under a
/// root span named by its id (the title's first word), so `obsview`
/// renders one tree per experiment.
fn emit(title: &'static str, body: impl FnOnce() -> String) {
    println!("\n=== {title} ===");
    telemetry::global().reset();
    let root = title.split_whitespace().next().unwrap_or("repro");
    let _root_span = fcm_obs::span(root);
    let t0 = Instant::now();
    let out = body();
    let wall = t0.elapsed();
    print!("{out}");
    println!("# wall {:.3}s", wall.as_secs_f64());
    for line in telemetry::global().summary_lines() {
        println!("# {line}");
    }
}

/// Parses `--seed <n>` (also `--seed=<n>`); defaults to 0, the fixed
/// seed every published table is generated with.
fn parse_seed(args: &[String]) -> u64 {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--seed" {
            let v = it.next().unwrap_or_else(|| {
                eprintln!("--seed requires a value");
                std::process::exit(2);
            });
            return parse_or_die(v);
        }
        if let Some(v) = a.strip_prefix("--seed=") {
            return parse_or_die(v);
        }
    }
    0
}

fn parse_or_die(v: &str) -> u64 {
    v.parse().unwrap_or_else(|_| {
        eprintln!("invalid --seed value: {v}");
        std::process::exit(2);
    })
}
