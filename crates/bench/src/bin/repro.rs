//! Regenerates every table and figure of the paper plus the extension
//! experiments E1–E14.
//!
//! ```text
//! cargo run --release -p fcm-bench --bin repro            # everything
//! cargo run --release -p fcm-bench --bin repro -- t1 f6   # a selection
//! cargo run --release -p fcm-bench --bin repro -- --quick # reduced scale
//! cargo run --release -p fcm-bench --bin repro -- f3 --dot # Graphviz output
//! cargo run --release -p fcm-bench --bin repro -- --seed 7 # reseed streams
//! ```
//!
//! Every run is deterministic: the default base seed is fixed, so two
//! invocations with the same arguments produce byte-identical output.

use fcm_bench::experiments::{self, Scale};

/// Every valid experiment id with its one-line description — the single
/// source of truth for `--list` and for unknown-id rejection.
const EXPERIMENTS: [(&str, &str); 21] = [
    ("t1", "Table 1: example process attributes"),
    ("f3", "Fig. 3: initial SW influence graph (--dot available)"),
    ("f4", "Fig. 4: replica-expanded graph (--dot available)"),
    ("f5", "Fig. 5: Eq. 4 cluster influence"),
    ("f6", "Fig. 6: H1 reduction to the 6-node platform"),
    ("f7", "Fig. 7: criticality-driven integration"),
    ("f8", "Fig. 8: timing-ordered refinement"),
    ("e1", "heuristic ablation"),
    ("e2", "separation-series convergence"),
    ("e3", "measured vs analytic influence"),
    ("e4", "mission reliability of competing strategies"),
    ("e5", "schedulability vs utilisation"),
    ("e6", "R5 retest set vs naive recertification"),
    ("e7", "isolation-technique ablation"),
    ("e8", "integration-depth tradeoff"),
    ("e9", "HW platform selection"),
    ("e10", "heuristic x interaction structure"),
    ("e11", "materialised-system validation"),
    ("e12", "measured workflow end to end"),
    ("e13", "TMR voting in the materialised system"),
    ("e14", "node-failure recovery policy sweep"),
];

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let dot = args.iter().any(|a| a == "--dot");
    let seed = parse_seed(&args);
    let scale = if quick { Scale::QUICK } else { Scale::FULL }.with_seed(seed);
    if args.iter().any(|a| a == "--list") {
        for (id, what) in EXPERIMENTS {
            println!("{id:<4} {what}");
        }
        return;
    }
    let mut selected: Vec<&str> = Vec::new();
    let mut skip_value = false;
    for a in &args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if a == "--seed" {
            skip_value = true;
        } else if !a.starts_with("--") {
            selected.push(a.as_str());
        }
    }
    // Reject unknown ids up front: a typo must not silently run nothing.
    let unknown: Vec<&str> = selected
        .iter()
        .copied()
        .filter(|s| !EXPERIMENTS.iter().any(|(id, _)| s.eq_ignore_ascii_case(id)))
        .collect();
    if !unknown.is_empty() {
        eprintln!("unknown experiment id(s): {}", unknown.join(", "));
        eprintln!(
            "valid ids: {}",
            EXPERIMENTS
                .iter()
                .map(|(id, _)| *id)
                .collect::<Vec<_>>()
                .join(" ")
        );
        std::process::exit(2);
    }
    let want =
        |id: &str| selected.is_empty() || selected.iter().any(|s| s.eq_ignore_ascii_case(id));

    if want("t1") {
        section("T1  Table 1: example process attributes");
        print!("{}", experiments::t1());
    }
    if want("f3") {
        section("F3  Fig. 3: initial SW influence graph");
        print!(
            "{}",
            if dot {
                experiments::f3_dot()
            } else {
                experiments::f3()
            }
        );
    }
    if want("f4") {
        section("F4  Fig. 4: replica-expanded graph");
        print!(
            "{}",
            if dot {
                experiments::f4_dot()
            } else {
                experiments::f4()
            }
        );
    }
    if want("f5") {
        section("F5  Fig. 5: Eq. 4 cluster influence");
        print!("{}", experiments::f5());
    }
    if want("f6") {
        section("F6  Fig. 6: H1 reduction to the 6-node platform");
        print!("{}", experiments::f6());
    }
    if want("f7") {
        section("F7  Fig. 7: criticality-driven integration");
        print!("{}", experiments::f7());
    }
    if want("f8") {
        section("F8  Fig. 8: timing-ordered refinement");
        print!("{}", experiments::f8());
    }
    if want("e1") {
        section("E1  heuristic ablation (residual cross-node influence)");
        print!("{}", experiments::e1(scale));
    }
    if want("e2") {
        section("E2  separation-series convergence (Eq. 3 truncation)");
        print!("{}", experiments::e2());
    }
    if want("e3") {
        section("E3  measured vs analytic influence (Eq. 1/2)");
        print!("{}", experiments::e3(scale));
    }
    if want("e4") {
        section("E4  mission reliability of competing strategies");
        print!("{}", experiments::e4(scale));
    }
    if want("e5") {
        section("E5  schedulability vs utilisation");
        print!("{}", experiments::e5(scale));
    }
    if want("e6") {
        section("E6  R5 retest set vs naive recertification");
        print!("{}", experiments::e6());
    }
    if want("e7") {
        section("E7  isolation-technique ablation");
        print!("{}", experiments::e7(scale));
    }
    if want("e8") {
        section("E8  integration-depth tradeoff (the paper's deferred study)");
        print!("{}", experiments::e8(scale));
    }
    if want("e9") {
        section("E9  HW platform selection under a reliability target");
        print!("{}", experiments::e9(scale));
    }
    if want("e10") {
        section("E10 heuristic × interaction structure");
        print!("{}", experiments::e10());
    }
    if want("e11") {
        section("E11 materialised-system validation (simulator in the loop)");
        print!("{}", experiments::e11(scale));
    }
    if want("e12") {
        section("E12 measured workflow: campaign -> SW graph -> integration");
        print!("{}", experiments::e12(scale));
    }
    if want("e13") {
        section("E13 TMR voting in the materialised system");
        print!("{}", experiments::e13(scale));
    }
    if want("e14") {
        section("E14 node-failure recovery policy sweep");
        print!("{}", experiments::e14(scale));
    }
}

fn section(title: &str) {
    println!("\n=== {title} ===");
}

/// Parses `--seed <n>` (also `--seed=<n>`); defaults to 0, the fixed
/// seed every published table is generated with.
fn parse_seed(args: &[String]) -> u64 {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--seed" {
            let v = it.next().unwrap_or_else(|| {
                eprintln!("--seed requires a value");
                std::process::exit(2);
            });
            return parse_or_die(v);
        }
        if let Some(v) = a.strip_prefix("--seed=") {
            return parse_or_die(v);
        }
    }
    0
}

fn parse_or_die(v: &str) -> u64 {
    v.parse().unwrap_or_else(|_| {
        eprintln!("invalid --seed value: {v}");
        std::process::exit(2);
    })
}
