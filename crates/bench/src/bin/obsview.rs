//! `obsview` — offline inspector for `fcm-obs` JSONL event logs.
//!
//! ```text
//! cargo run --release -p fcm-bench --bin repro -- e14 --obs-out trace.jsonl
//! cargo run --release -p fcm-bench --bin obsview -- trace.jsonl
//! ```
//!
//! Renders, from a log written by `repro --obs-out` (or any
//! [`fcm_obs::export`] producer):
//!
//! * the **span tree** — every root span with its children indented
//!   beneath it, each line showing total wall time and *self* time
//!   (total minus direct children); sibling lists are capped so a
//!   100k-cell sweep stays readable;
//! * a **flamegraph** in collapsed-stack format (`root;child;leaf
//!   <self_ns>`), one line per distinct stack, ready for any external
//!   flamegraph renderer and aggregated across spans with equal stacks;
//! * **histogram summaries** — count/mean/p50/p90/p99/max per recorded
//!   latency distribution;
//! * **counters and gauges** in lexicographic order.
//!
//! Exit codes follow the repo-wide contract (DESIGN.md): 0 on success
//! (or `--help`), 2 on usage, IO, or parse errors (obsview never
//! panics on malformed input — `EventLog::parse` reports the line).

use std::collections::BTreeMap;

use fcm_obs::{EventLog, LoggedSpan};

/// Sibling spans rendered per parent before eliding the rest.
const MAX_CHILDREN: usize = 12;
/// Tree depth bound (cycle guard for corrupt parent links).
const MAX_DEPTH: usize = 64;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let usage = |out: &mut dyn std::io::Write| {
        let _ = writeln!(out, "usage: obsview <log.jsonl>");
        let _ = writeln!(out, "  renders the span tree, collapsed-stack flamegraph, and");
        let _ = writeln!(out, "  histogram summaries of an fcm-obs event log");
        let _ = writeln!(out, "  (produce one with: repro --obs-out <log.jsonl>)");
    };
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage(&mut std::io::stdout());
        std::process::exit(0);
    }
    let path = match args.as_slice() {
        [p] => p.clone(),
        _ => {
            usage(&mut std::io::stderr());
            std::process::exit(2);
        }
    };
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("obsview: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    let log = match EventLog::parse(&text) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("obsview: {path}: {e}");
            std::process::exit(2);
        }
    };
    print!("{}", render(&log));
}

/// The full report for one parsed log.
fn render(log: &EventLog) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "event log: schema {}, {} spans, {} counters, {} gauges, {} histograms\n",
        log.schema,
        log.spans.len(),
        log.counters.len(),
        log.gauges.len(),
        log.hists.len()
    ));
    if log.spans_dropped > 0 {
        out.push_str(&format!(
            "warning: {} spans dropped to ring overflow (raise the ring capacity)\n",
            log.spans_dropped
        ));
    }
    let tree = SpanTree::build(&log.spans);
    if !log.spans.is_empty() {
        out.push_str("\n== span tree ==\n");
        for &root in &tree.roots {
            render_subtree(&mut out, &tree, root, 0);
        }
        out.push_str("\n== flamegraph (collapsed stacks) ==\n");
        for (stack, self_ns) in tree.collapsed_stacks() {
            out.push_str(&format!("{stack} {self_ns}\n"));
        }
    }
    if !log.hists.is_empty() {
        out.push_str("\n== histograms ==\n");
        out.push_str(&format!(
            "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            "name", "count", "mean", "p50", "p90", "p99", "max"
        ));
        for (name, h) in &log.hists {
            // Only `*_ns` histograms hold nanoseconds; the rest (e.g.
            // simulated-time latencies) are plain numbers.
            let unit: fn(u64) -> String = if name.ends_with("_ns") {
                fmt_ns
            } else {
                |v| v.to_string()
            };
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            out.push_str(&format!(
                "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                name,
                h.count(),
                h.mean().map_or_else(|| "-".into(), |m| unit(m.round() as u64)),
                quant(h, 0.5, unit),
                quant(h, 0.9, unit),
                quant(h, 0.99, unit),
                h.max().map_or_else(|| "-".into(), unit),
            ));
        }
    }
    if !log.counters.is_empty() {
        out.push_str("\n== counters ==\n");
        for (name, v) in &log.counters {
            out.push_str(&format!("{name:<40} {v}\n"));
        }
    }
    if !log.gauges.is_empty() {
        out.push_str("\n== gauges ==\n");
        for (name, v) in &log.gauges {
            out.push_str(&format!("{name:<40} {v}\n"));
        }
    }
    out
}

fn quant(h: &fcm_obs::Histogram, q: f64, unit: fn(u64) -> String) -> String {
    h.quantile(q).map_or_else(|| "-".into(), unit)
}

/// Parent/child index over a span list.
struct SpanTree<'a> {
    spans: &'a [LoggedSpan],
    /// Indices of root spans (parent 0 or unknown), in file order.
    roots: Vec<usize>,
    /// Direct children (indices) per span index, in file order.
    children: Vec<Vec<usize>>,
}

impl<'a> SpanTree<'a> {
    fn build(spans: &'a [LoggedSpan]) -> SpanTree<'a> {
        let by_id: BTreeMap<u64, usize> =
            spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        let mut roots = Vec::new();
        let mut children = vec![Vec::new(); spans.len()];
        for (i, s) in spans.iter().enumerate() {
            match by_id.get(&s.parent) {
                // A self-parent (corrupt link) still counts as a root.
                Some(&p) if s.parent != 0 && p != i => children[p].push(i),
                _ => roots.push(i),
            }
        }
        SpanTree {
            spans,
            roots,
            children,
        }
    }

    /// Total minus direct children (clamped at 0 for clock skew).
    fn self_ns(&self, i: usize) -> u64 {
        let kids: u64 = self.children[i]
            .iter()
            .map(|&c| self.spans[c].total_ns())
            .sum();
        self.spans[i].total_ns().saturating_sub(kids)
    }

    /// `root;child;leaf -> self_ns` aggregated over equal stacks, in
    /// lexicographic stack order.
    fn collapsed_stacks(&self) -> BTreeMap<String, u64> {
        let mut stacks = BTreeMap::new();
        for &root in &self.roots {
            self.collect_stacks(root, String::new(), 0, &mut stacks);
        }
        stacks
    }

    fn collect_stacks(&self, i: usize, prefix: String, depth: usize, out: &mut BTreeMap<String, u64>) {
        if depth >= MAX_DEPTH {
            return;
        }
        let stack = if prefix.is_empty() {
            self.spans[i].name.clone()
        } else {
            format!("{prefix};{}", self.spans[i].name)
        };
        *out.entry(stack.clone()).or_insert(0) += self.self_ns(i);
        for &c in &self.children[i] {
            self.collect_stacks(c, stack.clone(), depth + 1, out);
        }
    }
}

fn render_subtree(out: &mut String, tree: &SpanTree<'_>, i: usize, depth: usize) {
    if depth >= MAX_DEPTH {
        return;
    }
    let s = &tree.spans[i];
    let label = match s.idx {
        Some(idx) => format!("{}#{idx}", s.name),
        None => s.name.clone(),
    };
    out.push_str(&format!(
        "{:indent$}{label}  total={} self={} (thread {})\n",
        "",
        fmt_ns(s.total_ns()),
        fmt_ns(tree.self_ns(i)),
        s.thread,
        indent = depth * 2,
    ));
    let kids = &tree.children[i];
    for &c in kids.iter().take(MAX_CHILDREN) {
        render_subtree(out, tree, c, depth + 1);
    }
    if kids.len() > MAX_CHILDREN {
        let elided = &kids[MAX_CHILDREN..];
        let total: u64 = elided.iter().map(|&c| tree.spans[c].total_ns()).sum();
        out.push_str(&format!(
            "{:indent$}… {} more siblings  total={}\n",
            "",
            elided.len(),
            fmt_ns(total),
            indent = (depth + 1) * 2,
        ));
    }
}

fn fmt_ns(ns: u64) -> String {
    #[allow(clippy::cast_precision_loss)]
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}
