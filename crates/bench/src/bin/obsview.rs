//! `obsview` — inspector for `fcm-obs` JSONL event logs, offline and
//! live.
//!
//! ```text
//! obsview trace.jsonl                   # one-shot report
//! obsview --follow flight.jsonl        # re-render as the file grows
//! obsview --live 127.0.0.1:7433        # metrics+stats off a daemon
//! obsview diff before.jsonl after.jsonl
//! ```
//!
//! File mode renders, from a log written by `repro --obs-out`, a flight
//! dump, or any [`fcm_obs::export`] producer:
//!
//! * the **span tree** — every root span with its children indented
//!   beneath it, each line showing total wall time and *self* time
//!   (total minus direct children); sibling lists are capped so a
//!   100k-cell sweep stays readable;
//! * a **flamegraph** in collapsed-stack format (`root;child;leaf
//!   <self_ns>`), one line per distinct stack, ready for any external
//!   flamegraph renderer and aggregated across spans with equal stacks;
//! * **flight-recorder events** in seq order (flight dumps), capped;
//! * **histogram summaries** — count/mean/p50/p90/p99/max per recorded
//!   latency distribution;
//! * **counters and gauges** in lexicographic order.
//!
//! `--follow` re-reads the file every `--interval-ms` for `--frames`
//! frames (0 = until interrupted), tolerating a missing file or a
//! mid-write (truncated) tail — it simply waits for the next frame.
//! `--live` connects to an `fcm-serve` daemon (host:port, or a path for
//! a Unix socket) through the `fcm-serve` client helper and renders the
//! wire `metrics` snapshot plus the `stats` SLO block; obsview itself
//! opens no sockets, keeping `srclint`'s net allowlist at the serve
//! crate. `diff` parses two logs and prints per-counter/per-histogram
//! deltas — the quickest answer to "what did this run add".
//!
//! Exit codes follow the repo-wide contract (DESIGN.md): 0 on success
//! (or `--help`), 2 on usage, IO, or parse errors (obsview never
//! panics on malformed input — `EventLog::parse` reports the line, and
//! a file whose final line is cut off mid-write is called out as
//! truncated rather than merely unparseable).

use std::collections::BTreeMap;
use std::path::PathBuf;

use fcm_obs::{EventLog, Histogram, LoggedSpan, MetricsSnapshot};
use fcm_serve::gen::run_script;
use fcm_serve::server::Listen;
use fcm_substrate::Json;

/// Sibling spans rendered per parent before eliding the rest.
const MAX_CHILDREN: usize = 12;
/// Tree depth bound (cycle guard for corrupt parent links).
const MAX_DEPTH: usize = 64;
/// Flight events rendered before eliding the middle.
const MAX_EVENTS: usize = 100;

fn usage(out: &mut dyn std::io::Write) {
    let _ = writeln!(out, "usage: obsview <log.jsonl>");
    let _ = writeln!(out, "       obsview --follow <log.jsonl> [--frames N] [--interval-ms MS]");
    let _ = writeln!(out, "       obsview --live <ADDR> [--frames N] [--interval-ms MS]");
    let _ = writeln!(out, "       obsview diff <a.jsonl> <b.jsonl>");
    let _ = writeln!(out, "  renders the span tree, collapsed-stack flamegraph, flight");
    let _ = writeln!(out, "  events, and histogram summaries of an fcm-obs event log;");
    let _ = writeln!(out, "  --follow tails a file, --live polls a running fcm-serve");
    let _ = writeln!(out, "  daemon (host:port for TCP, a path for a Unix socket), and");
    let _ = writeln!(out, "  diff prints counter/histogram deltas between two logs");
    let _ = writeln!(out, "  (--frames 0 = until interrupted; default 1 frame / 1000 ms)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        usage(&mut std::io::stdout());
        std::process::exit(0);
    }

    let mut live: Option<String> = None;
    let mut follow: Option<String> = None;
    let mut frames: u64 = 1;
    let mut interval_ms: u64 = 1000;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |flag: &str| match it.next() {
            Some(v) => v.clone(),
            None => {
                eprintln!("obsview: {flag} requires a value");
                std::process::exit(2);
            }
        };
        match arg.as_str() {
            "--live" => live = Some(value("--live")),
            "--follow" => follow = Some(value("--follow")),
            "--frames" => {
                frames = value("--frames").parse().unwrap_or_else(|_| {
                    eprintln!("obsview: --frames requires a non-negative integer");
                    std::process::exit(2);
                });
            }
            "--interval-ms" => {
                interval_ms = value("--interval-ms").parse().unwrap_or_else(|_| {
                    eprintln!("obsview: --interval-ms requires a non-negative integer");
                    std::process::exit(2);
                });
            }
            other if other.starts_with("--") => {
                eprintln!("obsview: unknown flag \"{other}\"");
                usage(&mut std::io::stderr());
                std::process::exit(2);
            }
            p => positional.push(p.to_string()),
        }
    }

    match (live, follow, positional.as_slice()) {
        (Some(addr), None, []) => run_live(&addr, frames, interval_ms),
        (None, Some(path), []) => run_follow(&path, frames, interval_ms),
        (None, None, [cmd, a, b]) if cmd == "diff" => run_diff(a, b),
        (None, None, [path]) if path != "diff" => {
            let text = read_or_exit(path);
            let log = parse_or_exit(path, &text);
            print!("{}", render(&log));
        }
        _ => {
            usage(&mut std::io::stderr());
            std::process::exit(2);
        }
    }
}

fn read_or_exit(path: &str) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("obsview: cannot read {path}: {e}");
        std::process::exit(2);
    })
}

/// Parse, distinguishing a *truncated* trailing line — no final
/// newline and a tail that is not valid JSON, the signature of a
/// writer that died mid-line — from ordinary corruption.
fn parse_or_exit(path: &str, text: &str) -> EventLog {
    match EventLog::parse(text) {
        Ok(log) => log,
        Err(e) => {
            if tail_is_truncated(text) {
                let tail = text.lines().last().unwrap_or("");
                let shown: String = tail.chars().take(40).collect();
                eprintln!(
                    "obsview: {path}: trailing line is truncated (writer died mid-line?): \"{shown}…\""
                );
                eprintln!("obsview: drop the final line to inspect the intact prefix");
            } else {
                eprintln!("obsview: {path}: {e}");
            }
            std::process::exit(2);
        }
    }
}

fn tail_is_truncated(text: &str) -> bool {
    !text.is_empty()
        && !text.ends_with('\n')
        && text.lines().last().is_some_and(|l| Json::parse(l.trim()).is_err())
}

fn run_follow(path: &str, frames: u64, interval_ms: u64) {
    let mut frame = 0u64;
    loop {
        frame += 1;
        match std::fs::read_to_string(path) {
            Err(_) => println!("obsview: waiting for {path} (frame {frame})"),
            Ok(text) => match EventLog::parse(&text) {
                Ok(log) => {
                    println!("== frame {frame}: {path} ==");
                    print!("{}", render(&log));
                }
                // A tail mid-write is expected while following; wait.
                Err(_) if tail_is_truncated(&text) => {
                    println!("obsview: {path} mid-write, retrying (frame {frame})");
                }
                Err(e) => {
                    eprintln!("obsview: {path}: {e}");
                    std::process::exit(2);
                }
            },
        }
        if frames > 0 && frame >= frames {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

fn run_live(addr: &str, frames: u64, interval_ms: u64) {
    let target = if addr.contains(':') {
        Listen::Tcp(addr.to_string())
    } else {
        Listen::Unix(PathBuf::from(addr))
    };
    let mut frame = 0u64;
    loop {
        frame += 1;
        match fetch_live(&target) {
            Ok((metrics, stats)) => {
                println!("== frame {frame}: live @ {addr} ==");
                print!("{}", render_live(&metrics, &stats));
            }
            Err(e) => {
                eprintln!("obsview: {addr}: {e}");
                std::process::exit(2);
            }
        }
        if frames > 0 && frame >= frames {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(interval_ms));
    }
}

/// One `metrics` + `stats` round-trip over the serve-crate client (no
/// sockets opened here).
fn fetch_live(target: &Listen) -> Result<(Json, Json), String> {
    let mut buf = Vec::new();
    run_script(target, "{\"op\":\"metrics\"}\n{\"op\":\"stats\"}\n", &mut buf)?;
    let text = String::from_utf8_lossy(&buf);
    let mut lines = text.lines();
    let _hello = lines.next().ok_or("server closed before hello")?;
    let metrics = Json::parse(lines.next().ok_or("no metrics response")?)
        .map_err(|e| format!("metrics response: {e}"))?;
    let stats = Json::parse(lines.next().ok_or("no stats response")?)
        .map_err(|e| format!("stats response: {e}"))?;
    if metrics.get("ok") != Some(&Json::Bool(true)) {
        return Err(format!("metrics rejected: {}", metrics.to_string_compact()));
    }
    Ok((metrics, stats))
}

fn render_live(metrics: &Json, stats: &Json) -> String {
    let mut out = String::new();
    let sget = |k: &str| stats.get(k).map_or_else(|| "-".to_string(), Json::to_string_compact);
    out.push_str(&format!(
        "model {} seq {} fcms {} degraded {} (transitions {}, rearm_attempts {})\n",
        sget("model"),
        sget("seq"),
        sget("fcms"),
        sget("degraded"),
        sget("degraded_transitions"),
        sget("rearm_attempts"),
    ));
    out.push_str(&render_slo(metrics.get("slo")));
    match MetricsSnapshot::from_json(metrics) {
        Err(e) => out.push_str(&format!("metrics snapshot unreadable: {e}\n")),
        Ok(snap) => {
            render_hist_table(&mut out, &snap.hists);
            render_counters(&mut out, &snap.counters);
            render_gauges(&mut out, &snap.gauges);
        }
    }
    out
}

/// The `"slo"` block: per-op p50/p99 over the last completed rolling
/// window, or a placeholder while no window has completed.
fn render_slo(slo: Option<&Json>) -> String {
    let Some(slo) = slo else {
        return String::new();
    };
    if *slo == Json::Null {
        return "slo: no completed window yet\n".to_string();
    }
    let mut out = String::new();
    let window = slo.get("window").and_then(Json::as_f64).unwrap_or(0.0);
    out.push_str(&format!("slo (window {window}):"));
    for op in ["apply", "query"] {
        if let Some(part) = slo.get(op) {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            let ns = |k: &str| part.get(k).and_then(Json::as_f64).unwrap_or(0.0) as u64;
            out.push_str(&format!(
                "  {op} p50={} p99={} (n={})",
                fmt_ns(ns("p50_ns")),
                fmt_ns(ns("p99_ns")),
                ns("count"),
            ));
        }
    }
    out.push('\n');
    out
}

fn run_diff(a_path: &str, b_path: &str) {
    let a = parse_or_exit(a_path, &read_or_exit(a_path));
    let b = parse_or_exit(b_path, &read_or_exit(b_path));
    print!("{}", render_diff(&a, &b));
}

/// `b − a` over the shared numeric surface: counters by value, hists by
/// count/p99, gauges by value; spans and events by cardinality.
fn render_diff(a: &EventLog, b: &EventLog) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "diff: spans {} -> {}, events {} -> {}, spans_dropped {} -> {}\n",
        a.spans.len(),
        b.spans.len(),
        a.events.len(),
        b.events.len(),
        a.spans_dropped,
        b.spans_dropped,
    ));
    let keys = |am: &BTreeMap<String, u64>, bm: &BTreeMap<String, u64>| -> Vec<String> {
        am.keys().chain(bm.keys()).cloned().collect::<std::collections::BTreeSet<_>>().into_iter().collect()
    };
    let counter_keys = keys(&a.counters, &b.counters);
    if !counter_keys.is_empty() {
        out.push_str("\n== counters (a -> b, delta) ==\n");
        for name in counter_keys {
            let av = a.counters.get(&name).copied().unwrap_or(0);
            let bv = b.counters.get(&name).copied().unwrap_or(0);
            #[allow(clippy::cast_possible_wrap)]
            let delta = bv as i64 - av as i64;
            out.push_str(&format!("{name:<40} {av:>12} -> {bv:>12}  ({delta:+})\n"));
        }
    }
    let hist_names: std::collections::BTreeSet<String> =
        a.hists.keys().chain(b.hists.keys()).cloned().collect();
    if !hist_names.is_empty() {
        out.push_str("\n== histograms (count a -> b, p99 a -> b) ==\n");
        for name in hist_names {
            let part = |m: &BTreeMap<String, Histogram>| -> (u64, String) {
                m.get(&name).map_or((0, "-".to_string()), |h| {
                    (h.count(), h.quantile(0.99).map_or_else(|| "-".to_string(), |v| v.to_string()))
                })
            };
            let (ac, ap) = part(&a.hists);
            let (bc, bp) = part(&b.hists);
            out.push_str(&format!("{name:<28} {ac:>10} -> {bc:>10}   p99 {ap} -> {bp}\n"));
        }
    }
    let gauge_names: std::collections::BTreeSet<String> =
        a.gauges.keys().chain(b.gauges.keys()).cloned().collect();
    if !gauge_names.is_empty() {
        out.push_str("\n== gauges (a -> b) ==\n");
        for name in gauge_names {
            let show = |m: &BTreeMap<String, f64>| {
                m.get(&name).map_or_else(|| "-".to_string(), f64::to_string)
            };
            out.push_str(&format!("{name:<40} {} -> {}\n", show(&a.gauges), show(&b.gauges)));
        }
    }
    out
}

/// The full report for one parsed log.
fn render(log: &EventLog) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "event log: schema {}, {} spans, {} events, {} counters, {} gauges, {} histograms\n",
        log.schema,
        log.spans.len(),
        log.events.len(),
        log.counters.len(),
        log.gauges.len(),
        log.hists.len()
    ));
    if let Some(reason) = &log.flight {
        out.push_str(&format!("flight dump: reason \"{reason}\"\n"));
    }
    if log.spans_dropped > 0 {
        out.push_str(&format!(
            "warning: {} spans dropped to ring overflow (raise the ring capacity)\n",
            log.spans_dropped
        ));
        for (thread, n) in &log.dropped_by_thread {
            if *n > 0 {
                out.push_str(&format!("  thread {thread}: {n} dropped\n"));
            }
        }
    }
    if log.events_dropped > 0 {
        out.push_str(&format!(
            "warning: {} flight events dropped to ring overflow\n",
            log.events_dropped
        ));
    }
    let tree = SpanTree::build(&log.spans);
    if !log.spans.is_empty() {
        out.push_str("\n== span tree ==\n");
        for &root in &tree.roots {
            render_subtree(&mut out, &tree, root, 0);
        }
        out.push_str("\n== flamegraph (collapsed stacks) ==\n");
        for (stack, self_ns) in tree.collapsed_stacks() {
            out.push_str(&format!("{stack} {self_ns}\n"));
        }
    }
    if !log.events.is_empty() {
        out.push_str("\n== events ==\n");
        let n = log.events.len();
        for (i, ev) in log.events.iter().enumerate() {
            if n > MAX_EVENTS && i == MAX_EVENTS / 2 {
                out.push_str(&format!("… {} events elided …\n", n - MAX_EVENTS));
            }
            if n > MAX_EVENTS && i >= MAX_EVENTS / 2 && i < n - MAX_EVENTS / 2 {
                continue;
            }
            out.push_str(&format!(
                "#{:<6} {:>12}  {:<12} {}\n",
                ev.seq,
                fmt_ns(ev.ts_ns),
                ev.name,
                ev.detail.to_string_compact()
            ));
        }
    }
    render_hist_table(&mut out, &log.hists);
    render_counters(&mut out, &log.counters);
    render_gauges(&mut out, &log.gauges);
    out
}

fn render_hist_table(out: &mut String, hists: &BTreeMap<String, Histogram>) {
    if hists.is_empty() {
        return;
    }
    out.push_str("\n== histograms ==\n");
    out.push_str(&format!(
        "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
        "name", "count", "mean", "p50", "p90", "p99", "max"
    ));
    for (name, h) in hists {
        // Only `*_ns` histograms hold nanoseconds; the rest (e.g.
        // simulated-time latencies) are plain numbers.
        let unit: fn(u64) -> String = if name.ends_with("_ns") {
            fmt_ns
        } else {
            |v| v.to_string()
        };
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        out.push_str(&format!(
            "{:<28} {:>8} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            name,
            h.count(),
            h.mean().map_or_else(|| "-".into(), |m| unit(m.round() as u64)),
            quant(h, 0.5, unit),
            quant(h, 0.9, unit),
            quant(h, 0.99, unit),
            h.max().map_or_else(|| "-".into(), unit),
        ));
    }
}

fn render_counters(out: &mut String, counters: &BTreeMap<String, u64>) {
    if counters.is_empty() {
        return;
    }
    out.push_str("\n== counters ==\n");
    for (name, v) in counters {
        out.push_str(&format!("{name:<40} {v}\n"));
    }
}

fn render_gauges(out: &mut String, gauges: &BTreeMap<String, f64>) {
    if gauges.is_empty() {
        return;
    }
    out.push_str("\n== gauges ==\n");
    for (name, v) in gauges {
        out.push_str(&format!("{name:<40} {v}\n"));
    }
}

fn quant(h: &Histogram, q: f64, unit: fn(u64) -> String) -> String {
    h.quantile(q).map_or_else(|| "-".into(), unit)
}

/// Parent/child index over a span list.
struct SpanTree<'a> {
    spans: &'a [LoggedSpan],
    /// Indices of root spans (parent 0 or unknown), in file order.
    roots: Vec<usize>,
    /// Direct children (indices) per span index, in file order.
    children: Vec<Vec<usize>>,
}

impl<'a> SpanTree<'a> {
    fn build(spans: &'a [LoggedSpan]) -> SpanTree<'a> {
        let by_id: BTreeMap<u64, usize> =
            spans.iter().enumerate().map(|(i, s)| (s.id, i)).collect();
        let mut roots = Vec::new();
        let mut children = vec![Vec::new(); spans.len()];
        for (i, s) in spans.iter().enumerate() {
            match by_id.get(&s.parent) {
                // A self-parent (corrupt link) still counts as a root.
                Some(&p) if s.parent != 0 && p != i => children[p].push(i),
                _ => roots.push(i),
            }
        }
        SpanTree {
            spans,
            roots,
            children,
        }
    }

    /// Total minus direct children (clamped at 0 for clock skew).
    fn self_ns(&self, i: usize) -> u64 {
        let kids: u64 = self.children[i]
            .iter()
            .map(|&c| self.spans[c].total_ns())
            .sum();
        self.spans[i].total_ns().saturating_sub(kids)
    }

    /// `root;child;leaf -> self_ns` aggregated over equal stacks, in
    /// lexicographic stack order.
    fn collapsed_stacks(&self) -> BTreeMap<String, u64> {
        let mut stacks = BTreeMap::new();
        for &root in &self.roots {
            self.collect_stacks(root, String::new(), 0, &mut stacks);
        }
        stacks
    }

    fn collect_stacks(&self, i: usize, prefix: String, depth: usize, out: &mut BTreeMap<String, u64>) {
        if depth >= MAX_DEPTH {
            return;
        }
        let stack = if prefix.is_empty() {
            self.spans[i].name.clone()
        } else {
            format!("{prefix};{}", self.spans[i].name)
        };
        *out.entry(stack.clone()).or_insert(0) += self.self_ns(i);
        for &c in &self.children[i] {
            self.collect_stacks(c, stack.clone(), depth + 1, out);
        }
    }
}

fn render_subtree(out: &mut String, tree: &SpanTree<'_>, i: usize, depth: usize) {
    if depth >= MAX_DEPTH {
        return;
    }
    let s = &tree.spans[i];
    let label = match s.idx {
        Some(idx) => format!("{}#{idx}", s.name),
        None => s.name.clone(),
    };
    out.push_str(&format!(
        "{:indent$}{label}  total={} self={} (thread {})\n",
        "",
        fmt_ns(s.total_ns()),
        fmt_ns(tree.self_ns(i)),
        s.thread,
        indent = depth * 2,
    ));
    let kids = &tree.children[i];
    for &c in kids.iter().take(MAX_CHILDREN) {
        render_subtree(out, tree, c, depth + 1);
    }
    if kids.len() > MAX_CHILDREN {
        let elided = &kids[MAX_CHILDREN..];
        let total: u64 = elided.iter().map(|&c| tree.spans[c].total_ns()).sum();
        out.push_str(&format!(
            "{:indent$}… {} more siblings  total={}\n",
            "",
            elided.len(),
            fmt_ns(total),
            indent = (depth + 1) * 2,
        ));
    }
}

fn fmt_ns(ns: u64) -> String {
    #[allow(clippy::cast_precision_loss)]
    let ns = ns as f64;
    if ns >= 1e9 {
        format!("{:.3}s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3}ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3}µs", ns / 1e3)
    } else {
        format!("{ns:.0}ns")
    }
}
