//! Emits the perf baseline artefact `BENCH_substrate.json`: E1
//! clustering-heuristic and E2 separation-series timings measured with
//! the in-tree micro-bench harness.
//!
//! ```text
//! cargo run --release -p fcm-bench --bin baseline
//! FCM_BENCH_QUICK=1 cargo run --release -p fcm-bench --bin baseline
//! ```
//!
//! The artefact lands in the current directory (or `$FCM_BENCH_DIR`);
//! committing it from the repo root starts the benchmark trajectory each
//! future perf PR appends to.

use std::hint::black_box;

use fcm_alloc::heuristics::{h1, h1_pair_all, h2, h3};
use fcm_core::separation::SeparationAnalysis;
use fcm_core::ImportanceWeights;
use fcm_graph::algo::BisectPolicy;
use fcm_substrate::bench::Suite;
use fcm_workloads::random::RandomWorkload;

fn main() {
    let mut suite = Suite::new("substrate");
    suite.sample_size(20);

    // E1: the four clustering heuristics across graph sizes.
    for &n in &[16usize, 32, 64] {
        let g = RandomWorkload {
            processes: n,
            density: 0.25,
            replicated_fraction: 0.0,
            seed: 42,
            ..RandomWorkload::default()
        }
        .generate();
        let target = n / 3;
        let weights = ImportanceWeights::default();
        suite.bench(&format!("e1/H1/{n}"), || {
            h1(black_box(&g), target).expect("feasible")
        });
        suite.bench(&format!("e1/H1_pair_all/{n}"), || {
            h1_pair_all(black_box(&g), target).expect("feasible")
        });
        suite.bench(&format!("e1/H2/{n}"), || {
            h2(black_box(&g), target, BisectPolicy::LargestPart).expect("feasible")
        });
        suite.bench(&format!("e1/H3/{n}"), || {
            h3(black_box(&g), target, &weights).expect("feasible")
        });
    }

    // E2: the Eq. 3 separation walk series vs matrix size.
    for &n in &[8usize, 16, 32, 64] {
        let m = RandomWorkload {
            processes: n,
            density: 0.2,
            influence_range: (0.02, 0.3),
            seed: 9,
            ..RandomWorkload::default()
        }
        .generate_matrix();
        let analysis = SeparationAnalysis::new(m).expect("valid entries");
        suite.bench(&format!("e2/pairwise_order4/{n}"), || {
            analysis.pairwise(black_box(4))
        });
    }

    suite.finish();
}
