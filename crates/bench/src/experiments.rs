//! The experiments: paper items T1, F3–F8 and extensions E1–E15.
//!
//! See `DESIGN.md` §4 for the experiment index and `EXPERIMENTS.md` for
//! recorded paper-vs-measured outcomes.

use fcm_alloc::heuristics::{h1, h1_pair_all, h2, h2_source_target, h3};
use fcm_alloc::mapping::{approach_a, approach_b, criticality_pairing, timing_refinement};
use fcm_alloc::Clustering;
use fcm_core::separation::SeparationAnalysis;
use fcm_core::{
    AttributeSet, FactorKind, FaultFactor, FcmHierarchy, HierarchyLevel, ImportanceWeights,
    Influence, IsolationTechnique,
};
use fcm_eval::{Comparison, ReliabilityModel, SweepDriver};
use fcm_graph::algo::BisectPolicy;
use fcm_graph::NodeIdx;
use fcm_sched::{edf, nonpreemptive, Job, JobSet};
use fcm_sim::fault::FaultKind;
use fcm_sim::model::{SchedulingPolicy, SystemSpecBuilder};
use fcm_sim::InfluenceCampaign;
use fcm_workloads::{avionics, paper, random::RandomWorkload};
use fcm_substrate::rng::Rng;

use crate::report::Table;

/// Experiment scale: `QUICK` keeps CI fast, `FULL` is the repro default.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Monte-Carlo trials per injection campaign.
    pub trials: u64,
    /// Random seeds (repetitions) per configuration.
    pub seeds: u64,
    /// Monte-Carlo missions per reliability estimate.
    pub reliability_trials: u64,
    /// Base seed offsetting every internal PRNG stream. Two runs with
    /// the same base seed produce byte-identical tables.
    pub base_seed: u64,
}

impl Scale {
    /// Full scale for the `repro` binary.
    pub const FULL: Scale = Scale {
        trials: 3000,
        seeds: 8,
        reliability_trials: 30_000,
        base_seed: 0,
    };
    /// Reduced scale for tests and timing benches.
    pub const QUICK: Scale = Scale {
        trials: 300,
        seeds: 2,
        reliability_trials: 2_000,
        base_seed: 0,
    };

    /// The same scale with a different base seed.
    #[must_use]
    pub const fn with_seed(mut self, base_seed: u64) -> Scale {
        self.base_seed = base_seed;
        self
    }
}

// ---------------------------------------------------------------- T1, F3–F8

/// Table 1: the example processes and their attributes.
pub fn t1() -> String {
    paper::render_table1()
}

/// Fig. 3: the initial SW influence graph, plus the mutual-influence
/// ranking H1 consumes.
pub fn f3() -> String {
    let g = paper::fig3_graph();
    let mut s = g.to_edge_list();
    s.push('\n');
    let mut pairs: Vec<(f64, usize, usize)> = Vec::new();
    for i in 0..g.node_count() {
        for j in (i + 1)..g.node_count() {
            let m = g.mutual_weight(NodeIdx(i), NodeIdx(j));
            if m > 0.0 {
                pairs.push((m, i, j));
            }
        }
    }
    pairs.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite"));
    s.push_str("mutual influence ranking:\n");
    for (m, i, j) in pairs {
        s.push_str(&format!("  p{} - p{}: {:.1}\n", i + 1, j + 1, m));
    }
    s
}

/// Fig. 3 rendered as Graphviz DOT (`dot -Tsvg` recreates the figure).
pub fn f3_dot() -> String {
    let g = paper::fig3_graph();
    fcm_graph::dot::render(
        &g.map(|_, n| n.name.clone(), |_, e| e.weight),
        &fcm_graph::dot::DotOptions {
            name: "fig3".into(),
            ..fcm_graph::dot::DotOptions::default()
        },
    )
}

/// Fig. 4 rendered as Graphviz DOT (replica links dashed).
pub fn f4_dot() -> String {
    let ex = paper::fig4_expansion();
    fcm_graph::dot::render(
        &ex.graph.map(|_, n| n.name.clone(), |_, e| e.weight),
        &fcm_graph::dot::DotOptions {
            name: "fig4".into(),
            ..fcm_graph::dot::DotOptions::default()
        },
    )
}

/// Fig. 4: the replica-expanded 12-node graph.
pub fn f4() -> String {
    let ex = paper::fig4_expansion();
    let mut s = format!(
        "{} nodes: {}\n",
        ex.graph.node_count(),
        ex.graph
            .nodes()
            .map(|(_, n)| n.name.clone())
            .collect::<Vec<_>>()
            .join(", ")
    );
    let replica_links = ex
        .graph
        .edges()
        .filter(|(_, e)| matches!(e.weight, fcm_alloc::sw::SwEdge::ReplicaLink))
        .count();
    s.push_str(&format!(
        "{} replica links (0-weight), {} influence edges\n",
        replica_links,
        ex.graph.edge_count() - replica_links
    ));
    s
}

/// Fig. 5: Eq. 4 cluster-influence values as clusters grow.
pub fn f5() -> Table {
    let g = paper::fig3_graph();
    let mut t = Table::new(["cluster", "target", "member influences", "Eq.4 combined"]);
    // {p1,p2} on p4, then {p1,p2,p3} on p4 — the 0.76 of the paper.
    for members in [vec![0usize, 1], vec![0, 1, 2]] {
        let mut groups = vec![members.iter().map(|&i| NodeIdx(i)).collect::<Vec<_>>()];
        for i in 0..8 {
            if !members.contains(&i) {
                groups.push(vec![NodeIdx(i)]);
            }
        }
        let c = Clustering::new(&g, groups).expect("valid partition");
        let cond = c.condensed(&g);
        let w: f64 = cond
            .graph
            .edge_weight_between(
                cond.group_of(NodeIdx(0)).expect("clustered"),
                cond.group_of(NodeIdx(3)).expect("clustered"),
            )
            .copied()
            .unwrap_or(0.0);
        let parts: Vec<String> = members
            .iter()
            .filter_map(|&i| {
                g.edge_weight_between(NodeIdx(i), NodeIdx(3))
                    .map(|e| format!("{}", e.influence()))
            })
            .collect();
        t.push([
            format!(
                "{{{}}}",
                members
                    .iter()
                    .map(|&i| format!("p{}", i + 1))
                    .collect::<Vec<_>>()
                    .join(",")
            ),
            "p4".into(),
            parts.join(", "),
            format!("{w:.4}"),
        ]);
    }
    t
}

/// Fig. 6: H1 reduction of the expanded graph to the 6-node platform,
/// with the Approach-A placement.
pub fn f6() -> String {
    let ex = paper::fig4_expansion();
    let hw = paper::hw_platform();
    let c = h1(&ex.graph, hw.len()).expect("feasible reduction");
    let m = approach_a(&ex.graph, &c, &hw, &ImportanceWeights::default()).expect("mapping");
    let mut s = String::from("H1 clusters and placement:\n");
    for (cluster, node) in m.iter() {
        s.push_str(&format!(
            "  {} <- {{{}}}\n",
            hw.node(node).expect("mapped").name,
            c.cluster_name(&ex.graph, cluster)
        ));
    }
    s.push_str(&format!(
        "residual cross-node influence: {:.4}\n",
        c.cross_influence(&ex.graph)
    ));
    s
}

/// Fig. 7: the criticality most-with-least pairing (Approach B).
pub fn f7() -> String {
    let ex = paper::fig4_expansion();
    let c = criticality_pairing(&ex.graph, 6).expect("feasible pairing");
    let mut s = String::from("criticality pairing (most critical with least):\n");
    for i in 0..c.len() {
        let attrs = c.combined_attributes(&ex.graph, i);
        s.push_str(&format!(
            "  {{{}}}  summary criticality {}\n",
            c.cluster_name(&ex.graph, i),
            attrs.criticality
        ));
    }
    let max_crit = (0..c.len())
        .map(|i| {
            c.clusters()[i]
                .iter()
                .map(|&n| ex.graph.node(n).expect("member").attributes.criticality.0)
                .sum::<u32>()
        })
        .max()
        .unwrap_or(0);
    s.push_str(&format!("max summed criticality on one node: {max_crit}\n"));
    s
}

/// Fig. 8: the timing-ordered first-fit refinement.
pub fn f8() -> String {
    let ex = paper::fig4_expansion();
    let c = timing_refinement(&ex.graph, 5).expect("feasible refinement");
    let mut s = format!(
        "timing-ordered first-fit into ≤5 nodes ({} used):\n",
        c.len()
    );
    for i in 0..c.len() {
        let attrs = c.combined_attributes(&ex.graph, i);
        let timing = attrs
            .timing
            .map(|t| t.to_string())
            .unwrap_or_else(|| "-".into());
        s.push_str(&format!(
            "  {{{}}}  envelope {timing}\n",
            c.cluster_name(&ex.graph, i)
        ));
    }
    s
}

// ------------------------------------------------------------------ E1–E7

/// E1: heuristic ablation — residual cross-node influence (normalised by
/// total influence) for H1 / H1′ / H2 / H2′ / H3 over random graphs.
///
/// Each (size, seed) configuration is an independent sweep cell fanned
/// out by [`SweepDriver`]; aggregation happens afterwards in cell order,
/// so the table is byte-identical for any thread count.
pub fn e1(scale: Scale) -> Table {
    let mut t = Table::new(["n", "strategy", "norm residual influence", "failures"]);
    let sizes = [8usize, 16, 32, 64];
    let cells: Vec<(usize, u64)> = sizes
        .iter()
        .flat_map(|&n| (0..scale.seeds).map(move |seed| (n, seed)))
        .collect();
    let per_cell = SweepDriver::new(scale.base_seed).run(&cells, |&(n, seed), _| {
        let g = RandomWorkload {
            processes: n,
            density: 0.25,
            replicated_fraction: 0.15,
            seed: scale.base_seed.wrapping_add(seed.wrapping_mul(7919)).wrapping_add(n as u64),
            ..RandomWorkload::default()
        }
        .generate();
        let g = fcm_alloc::replication::expand_replicas(&g).graph;
        let total: f64 = g
            .edges()
            .map(|(_, e)| e.weight.influence())
            .sum::<f64>()
            .max(1e-9);
        let target = (g.node_count() / 3).max(min_clusters(&g));
        let weights = ImportanceWeights::default();
        [
            h1(&g, target),
            h1_pair_all(&g, target),
            h2(&g, target, BisectPolicy::LargestPart),
            h2(&g, target, BisectPolicy::HeaviestPart),
            h2_source_target(&g, target, &weights),
            h3(&g, target, &weights),
        ]
        .map(|r| r.ok().map(|c| c.cross_influence(&g) / total))
    });
    for &n in &sizes {
        let mut sums = [0.0f64; 6];
        let mut counts = [0u32; 6];
        let mut failures = [0u32; 6];
        for (cell, outcomes) in cells.iter().zip(&per_cell) {
            if cell.0 != n {
                continue;
            }
            for (k, outcome) in outcomes.iter().enumerate() {
                match outcome {
                    Some(norm) => {
                        sums[k] += norm;
                        counts[k] += 1;
                    }
                    None => failures[k] += 1,
                }
            }
        }
        for (k, name) in [
            "H1",
            "H1' pair-all",
            "H2 largest",
            "H2 heaviest",
            "H2 s-t",
            "H3",
        ]
        .iter()
        .enumerate()
        {
            let mean = if counts[k] > 0 {
                sums[k] / counts[k] as f64
            } else {
                f64::NAN
            };
            t.push([
                n.to_string(),
                (*name).into(),
                format!("{mean:.4}"),
                failures[k].to_string(),
            ]);
        }
    }
    t
}

/// E2: separation-series convergence — max truncation error vs order.
pub fn e2() -> Table {
    let mut t = Table::new(["order", "max error", "mean error"]);
    let reference_order = 16;
    // Draw graphs until six land in the convergent regime the paper's
    // truncation argument assumes (row sums < 1); divergent draws are
    // skipped rather than silently clamped.
    let analyses: Vec<SeparationAnalysis> = (0..)
        .map(|seed| {
            let m = RandomWorkload {
                processes: 12,
                density: 0.2,
                influence_range: (0.02, 0.3),
                seed,
                ..RandomWorkload::default()
            }
            .generate_matrix();
            SeparationAnalysis::new(m).expect("generated entries are valid")
        })
        .filter(SeparationAnalysis::series_converges)
        .take(6)
        .collect();
    // Each truncation order is an independent sweep cell (the analyses
    // above are shared read-only state); the experiment is deterministic,
    // so the driver's RNG streams go unused.
    let orders: Vec<usize> = (1..=8).collect();
    let rows = SweepDriver::new(0).run(&orders, |&order, _| {
        let mut max_err = 0.0f64;
        let mut sum_err = 0.0f64;
        let mut count = 0u32;
        for a in &analyses {
            let truncated = a.pairwise(order);
            let reference = a.pairwise(reference_order);
            for i in 0..truncated.rows() {
                for j in 0..truncated.cols() {
                    let err = (truncated.get(i, j).expect("in range")
                        - reference.get(i, j).expect("in range"))
                    .abs();
                    max_err = max_err.max(err);
                    sum_err += err;
                    count += 1;
                }
            }
        }
        [
            order.to_string(),
            format!("{max_err:.6}"),
            format!("{:.6}", sum_err / count as f64),
        ]
    });
    for row in rows {
        t.push(row);
    }
    t
}

/// E3: measured vs analytic influence over a (p₂, p₃) grid.
pub fn e3(scale: Scale) -> Table {
    let mut t = Table::new(["p2", "p3", "analytic", "measured", "abs err"]);
    for &p2 in &[0.2, 0.5, 0.8] {
        for &p3 in &[0.3, 0.6, 0.9] {
            let mut b = SystemSpecBuilder::new(1);
            let m = b
                .add_medium("gv", FactorKind::GlobalVariable, p2)
                .expect("valid probability");
            b.task("w", 0)
                .one_shot(0, 10, 1)
                .writes(m)
                .build()
                .expect("valid task");
            b.task("r", 0)
                .one_shot(5, 10, 1)
                .reads(m)
                .vulnerability(p3)
                .build()
                .expect("valid task");
            let campaign =
                InfluenceCampaign::new(
                b.build().expect("valid system"),
                20,
                scale.trials,
                scale.base_seed.wrapping_add(11),
            );
            let measured = campaign
                .measure_influence(0, 1)
                .expect("valid tasks")
                .estimate;
            let analytic = Influence::from_factors(&[FaultFactor::new(
                FactorKind::GlobalVariable,
                1.0,
                p2,
                p3,
            )
            .expect("valid factor")])
            .value();
            t.push([
                format!("{p2:.1}"),
                format!("{p3:.1}"),
                format!("{analytic:.3}"),
                format!("{measured:.3}"),
                format!("{:.3}", (measured - analytic).abs()),
            ]);
        }
    }
    t
}

/// E4: end-to-end mission reliability of competing strategies on the
/// avionics suite, swept over the HW fault rate.
pub fn e4(scale: Scale) -> Table {
    let (ex, _) = avionics::expanded_suite();
    let g = &ex.graph;
    let hw = avionics::platform();
    let weights = ImportanceWeights::default();
    let mut t = Table::new([
        "p_hw",
        "strategy",
        "mission failure",
        "cross infl",
        "crit coloc",
    ]);
    // Each fault rate runs its full strategy comparison as one sweep
    // cell; the Monte-Carlo seed lives in the model, so rows are
    // identical for any thread count.
    let rates = [0.01, 0.05, 0.10];
    let rows_per_rate = SweepDriver::new(scale.base_seed).run(&rates, |&p_hw, _| {
        let model = ReliabilityModel {
            p_hw,
            p_sw: 0.05,
            cross_node_attenuation: 0.2,
            critical_at: 7,
            trials: scale.reliability_trials,
            seed: scale.base_seed.wrapping_add(404),
        };
        let mut cmp = Comparison::new();
        cmp.run_strategy("H1+A", g, &hw, &model, || {
            let c = h1(g, hw.len())?;
            let m = approach_a(g, &c, &hw, &weights)?;
            Ok((c, m))
        });
        cmp.run_strategy("H2+A", g, &hw, &model, || {
            let c = h2(g, hw.len(), BisectPolicy::LargestPart)?;
            let m = approach_a(g, &c, &hw, &weights)?;
            Ok((c, m))
        });
        cmp.run_strategy("H3+A", g, &hw, &model, || {
            let c = h3(g, hw.len(), &weights)?;
            let m = approach_a(g, &c, &hw, &weights)?;
            Ok((c, m))
        });
        cmp.run_strategy("B", g, &hw, &model, || approach_b(g, &hw, &weights));
        let mut rows: Vec<[String; 5]> = Vec::new();
        for o in cmp.outcomes() {
            rows.push([
                format!("{p_hw:.2}"),
                o.name.clone(),
                format!("{:.4}", o.reliability.mission_failure),
                format!("{:.3}", o.quality.cross_influence),
                o.quality.critical_colocations.to_string(),
            ]);
        }
        for (name, err) in cmp.failures() {
            rows.push([
                format!("{p_hw:.2}"),
                name.clone(),
                format!("FAILED: {err}"),
                String::new(),
                String::new(),
            ]);
        }
        rows
    });
    for row in rows_per_rate.into_iter().flatten() {
        t.push(row);
    }
    t
}

/// E5: feasibility of condensed nodes vs utilisation — preemptive EDF vs
/// exact non-preemptive, over random 8-job sets.
pub fn e5(scale: Scale) -> Table {
    let mut t = Table::new(["U", "EDF feasible %", "non-preemptive feasible %"]);
    let seeds = (scale.seeds * 16).max(16);
    for step in 0..7 {
        let u = 0.4 + 0.2 * step as f64;
        let mut edf_ok = 0u32;
        let mut np_ok = 0u32;
        for seed in 0..seeds {
            let set = random_job_set(8, u, scale.base_seed.wrapping_add(seed));
            if edf::feasible(&set) {
                edf_ok += 1;
            }
            if nonpreemptive::feasible(&set).unwrap_or(false) {
                np_ok += 1;
            }
        }
        t.push([
            format!("{u:.1}"),
            format!("{:.1}", 100.0 * f64::from(edf_ok) / seeds as f64),
            format!("{:.1}", 100.0 * f64::from(np_ok) / seeds as f64),
        ]);
    }
    t
}

/// E6: R5 retest-set size vs naive full recertification, over random
/// three-level hierarchies.
pub fn e6() -> Table {
    let mut t = Table::new(["fanout", "tree size", "R5 mean", "naive mean", "savings ×"]);
    for &fanout in &[2usize, 4, 8] {
        let mut h = FcmHierarchy::new();
        let root = h
            .add_root("sys", HierarchyLevel::Process, AttributeSet::default())
            .expect("root");
        let mut procedures = Vec::new();
        for ti in 0..fanout {
            let task = h
                .add_child(root, format!("t{ti}"), AttributeSet::default())
                .expect("task");
            for pi in 0..fanout {
                procedures.push(
                    h.add_child(task, format!("t{ti}_p{pi}"), AttributeSet::default())
                        .expect("procedure"),
                );
            }
        }
        let tree_size = h.len();
        let mut r5_sum = 0usize;
        let mut naive_sum = 0usize;
        for &p in &procedures {
            r5_sum += h.retest_set(p).expect("known fcm").size();
            naive_sum += h.naive_retest_set(p).expect("known fcm").len();
        }
        let r5_mean = r5_sum as f64 / procedures.len() as f64;
        let naive_mean = naive_sum as f64 / procedures.len() as f64;
        t.push([
            fanout.to_string(),
            tree_size.to_string(),
            format!("{r5_mean:.1}"),
            format!("{naive_mean:.1}"),
            format!("{:.1}", naive_mean / r5_mean),
        ]);
    }
    t
}

/// E7: isolation-technique ablation — measured influence with and
/// without each technique (paper §3–§4.2).
pub fn e7(scale: Scale) -> Table {
    let mut t = Table::new(["path", "isolation", "measured influence"]);
    // Value path: sensors → autopilot via shared memory, ± hiding.
    for (label, isolate) in [("none", false), ("information hiding", true)] {
        let mut b = SystemSpecBuilder::new(1);
        let m = b
            .add_medium("shm", FactorKind::SharedMemory, 0.8)
            .expect("valid probability");
        if isolate {
            b.isolate_medium(m, IsolationTechnique::InformationHiding)
                .expect("medium exists");
        }
        b.task("w", 0)
            .one_shot(0, 10, 1)
            .writes(m)
            .build()
            .expect("task");
        b.task("r", 0)
            .one_shot(5, 10, 1)
            .reads(m)
            .build()
            .expect("task");
        let campaign = InfluenceCampaign::new(
            b.build().expect("system"),
            20,
            scale.trials,
            scale.base_seed.wrapping_add(5),
        );
        let infl = campaign.measure_influence(0, 1).expect("tasks").estimate;
        t.push([
            "value (shm)".to_string(),
            label.into(),
            format!("{infl:.3}"),
        ]);
    }
    // Value path with recovery blocks (task-level isolation, §3.2).
    for (label, recovery) in [("recovery blocks 0.6", 0.6), ("recovery blocks 0.9", 0.9)] {
        let mut b = SystemSpecBuilder::new(1);
        let m = b
            .add_medium("shm", FactorKind::SharedMemory, 0.8)
            .expect("valid probability");
        b.task("w", 0)
            .one_shot(0, 10, 1)
            .writes(m)
            .build()
            .expect("task");
        b.task("r", 0)
            .one_shot(5, 10, 1)
            .reads(m)
            .recovery(recovery)
            .build()
            .expect("task");
        let campaign = InfluenceCampaign::new(
            b.build().expect("system"),
            20,
            scale.trials,
            scale.base_seed.wrapping_add(5),
        );
        let infl = campaign.measure_influence(0, 1).expect("tasks").estimate;
        t.push([
            "value (shm)".to_string(),
            label.into(),
            format!("{infl:.3}"),
        ]);
    }
    // Timing path: overrun under FIFO vs preemptive EDF.
    for (label, policy) in [
        ("none (FIFO)", SchedulingPolicy::NonPreemptiveFifo),
        ("preemptive scheduling", SchedulingPolicy::PreemptiveEdf),
    ] {
        let (spec, roles) = avionics::control_loop_system(policy).expect("static system");
        let campaign = InfluenceCampaign::new(spec, 400, scale.trials.min(500), scale.base_seed.wrapping_add(5));
        let infl = campaign
            .measure_influence_with(
                roles.maintenance,
                roles.autopilot,
                FaultKind::TimingOverrun { factor: 8 },
            )
            .expect("tasks")
            .estimate;
        t.push([
            "timing (overrun)".to_string(),
            label.into(),
            format!("{infl:.3}"),
        ]);
    }
    t
}

/// E8: the integration-depth tradeoff the paper defers — sweep the
/// cluster count on the avionics suite and locate the knee.
///
/// The sweep also exposes a second integration limit the paper only
/// hints at ("need for a resource present on only one processor"):
/// depths 3–5 are infeasible not for timing or anti-affinity but because
/// deep clustering packs the display and radio functions into one
/// cluster while no processor carries both resources.
///
/// The depth sweep itself fans out across the [`SweepDriver`] pool
/// inside [`integration_sweep`](fcm_eval::tradeoff::integration_sweep).
pub fn e8(scale: Scale) -> Table {
    use fcm_eval::tradeoff::integration_sweep;
    let (ex, _) = avionics::expanded_suite();
    let g = &ex.graph;
    let model = ReliabilityModel {
        p_hw: 0.05,
        p_sw: 0.05,
        cross_node_attenuation: 0.2,
        critical_at: 7,
        trials: scale.reliability_trials,
        seed: scale.base_seed.wrapping_add(505),
    };
    let curve = integration_sweep(
        g,
        1..=g.node_count(),
        platform_with_resources,
        &model,
        &ImportanceWeights::default(),
    );
    let mut t = Table::new([
        "clusters",
        "cross infl",
        "crit coloc",
        "mission failure",
        "note",
    ]);
    let knee = curve.knee(0.01).map(|p| p.clusters);
    let best = curve.best().map(|p| p.clusters);
    for p in curve.points() {
        let note = match (Some(p.clusters) == knee, Some(p.clusters) == best) {
            (true, true) => "knee+best",
            (true, false) => "knee",
            (false, true) => "best",
            _ => "",
        };
        t.push([
            p.clusters.to_string(),
            format!("{:.3}", p.quality.cross_influence),
            p.quality.critical_colocations.to_string(),
            format!("{:.4}", p.reliability.mission_failure),
            note.to_string(),
        ]);
    }
    for (k, reason) in curve.infeasible() {
        t.push([
            k.to_string(),
            String::new(),
            String::new(),
            String::new(),
            format!("infeasible: {reason}"),
        ]);
    }
    t
}

/// E9: HW platform selection under a reliability target (the paper's
/// HW/SW codesign future work).
pub fn e9(scale: Scale) -> String {
    use fcm_eval::platform::{select_platform, PlatformOption};
    let (ex, _) = avionics::expanded_suite();
    let g = &ex.graph;
    let model = ReliabilityModel {
        p_hw: 0.05,
        p_sw: 0.05,
        cross_node_attenuation: 0.2,
        critical_at: 7,
        trials: scale.reliability_trials,
        seed: scale.base_seed.wrapping_add(606),
    };
    let options = vec![
        PlatformOption::new("4-node bare", fcm_alloc::HwGraph::complete(4), 4.0),
        PlatformOption::new("5-node equipped", platform_with_resources(5), 5.5),
        PlatformOption::new("6-node equipped", platform_with_resources(6), 6.5),
        PlatformOption::new("8-node equipped", platform_with_resources(8), 8.5),
        PlatformOption::new("12-node equipped", platform_with_resources(12), 12.5),
    ];
    let target = 0.16;
    let sel = select_platform(g, &options, &model, &ImportanceWeights::default(), target);
    format!(
        "mission-failure target: {target}
{sel}"
    )
}

/// E10: heuristic × interaction structure — normalised residual
/// cross-node influence of each heuristic on each canonical topology.
pub fn e10() -> Table {
    use fcm_workloads::topologies;
    let mut t = Table::new(["topology", "n", "H1", "H1'", "H2", "H3"]);
    let cases: Vec<(&str, fcm_alloc::SwGraph, usize)> = vec![
        ("chain", topologies::chain(24, 0.5), 6),
        ("star", topologies::star(24, 0.4), 6),
        (
            "ring-of-cliques",
            topologies::ring_of_cliques(6, 4, 0.6, 0.05),
            6,
        ),
        ("layered", topologies::layered(4, 6, 0.3), 6),
    ];
    let weights = ImportanceWeights::default();
    for (name, g, target) in cases {
        let total: f64 = g
            .edges()
            .map(|(_, e)| e.weight.influence())
            .sum::<f64>()
            .max(1e-9);
        let norm = |r: Result<Clustering, fcm_alloc::AllocError>| match r {
            Ok(c) => format!("{:.3}", c.cross_influence(&g) / total),
            Err(_) => "fail".into(),
        };
        t.push([
            name.to_string(),
            g.node_count().to_string(),
            norm(h1(&g, target)),
            norm(h1_pair_all(&g, target)),
            norm(h2(&g, target, BisectPolicy::LargestPart)),
            norm(h3(&g, target, &weights)),
        ]);
    }
    t
}

/// E11: closing the loop — the integrated avionics system is
/// *materialised* into the discrete-event simulator and a fault is
/// injected into the least critical function (`cabin`); the measured
/// probability that the fault reaches any flight-critical function
/// (criticality ≥ 7) is compared across mappings and HW-boundary
/// strengths. This validates the reliability model's propagation story
/// with an independent mechanism (actual message/shared-memory traffic
/// instead of the analytic Monte-Carlo).
pub fn e11(scale: Scale) -> Table {
    use fcm_workloads::materialize::system_from_mapping;
    let (ex, _) = avionics::expanded_suite();
    let g = &ex.graph;
    let hw = avionics::platform();
    let weights = ImportanceWeights::default();
    let mut t = Table::new(["mapping", "attenuation", "critical exposure"]);
    let strategies: Vec<(&str, (Clustering, fcm_alloc::Mapping))> = vec![
        ("H1+A", {
            let c = h1(g, hw.len()).expect("feasible");
            let m = approach_a(g, &c, &hw, &weights).expect("mapping");
            (c, m)
        }),
        ("B", approach_b(g, &hw, &weights).expect("mapping")),
    ];
    let critical: Vec<usize> = g
        .nodes()
        .filter(|(_, n)| n.attributes.criticality.0 >= 7)
        .map(|(i, _)| i.index())
        .collect();
    let source = g
        .nodes()
        .find(|(_, n)| n.name == "cabin")
        .map(|(i, _)| i)
        .expect("cabin exists");
    for (name, (clustering, mapping)) in &strategies {
        for attenuation in [1.0, 0.2] {
            let mat = system_from_mapping(
                g,
                clustering,
                mapping,
                SchedulingPolicy::PreemptiveEdf,
                attenuation,
            )
            .expect("materialisation succeeds");
            let src_task = mat.task(source);
            let critical_tasks: Vec<usize> = critical.iter().map(|&n| mat.task_of[n]).collect();
            let campaign = InfluenceCampaign::new(
                mat.spec,
                600,
                scale.trials,
                scale.base_seed.wrapping_add(808),
            );
            // Exposure: P(any critical task faulty | cabin fault).
            let mut any = 0u64;
            let trials = scale.trials.min(800);
            for trial in 0..trials {
                let trace = fcm_sim::engine::run(
                    campaign.spec(),
                    &[fcm_sim::Injection::value(0, src_task)],
                    scale.base_seed.wrapping_add(808 + trial),
                    600,
                );
                if critical_tasks.iter().any(|&ct| trace.value_faulty(ct)) {
                    any += 1;
                }
            }
            t.push([
                name.to_string(),
                format!("{attenuation:.1}"),
                format!("{:.3}", any as f64 / trials as f64),
            ]);
        }
    }
    t
}

/// E13: TMR voting end to end — the avionics suite materialised with and
/// without synthesised majority voters; a value fault is injected into
/// one (then two) autopilot replicas and the probability that the fault
/// reaches the display manager is measured.
pub fn e13(scale: Scale) -> Table {
    use fcm_workloads::materialize::{system_from_mapping, system_from_mapping_voted};
    let (ex, _) = avionics::expanded_suite();
    let g = &ex.graph;
    let hw = avionics::platform();
    let weights = ImportanceWeights::default();
    let c = h1(g, hw.len()).expect("feasible clustering");
    let m = approach_a(g, &c, &hw, &weights).expect("mapping");
    let find = |name: &str| {
        g.nodes()
            .find(|(_, n)| n.name == name)
            .map(|(i, _)| i)
            .expect("named node exists")
    };
    let ap_a = find("autopilota");
    let ap_b = find("autopilotb");
    let display = find("display");
    let mut t = Table::new(["materialisation", "corrupt replicas", "P(display faulty)"]);
    for (label, voted) in [("unvoted", false), ("voted", true)] {
        let mat = if voted {
            system_from_mapping_voted(g, &c, &m, SchedulingPolicy::PreemptiveEdf, 1.0)
        } else {
            system_from_mapping(g, &c, &m, SchedulingPolicy::PreemptiveEdf, 1.0)
        }
        .expect("materialisation succeeds");
        for (count, sources) in [(1usize, vec![ap_a]), (2, vec![ap_a, ap_b])] {
            let injections: Vec<fcm_sim::Injection> = sources
                .iter()
                .map(|&sw| fcm_sim::Injection::value(0, mat.task(sw)))
                .collect();
            let trials = scale.trials.min(600);
            let mut hits = 0u64;
            for trial in 0..trials {
                let trace = fcm_sim::engine::run(
                    &mat.spec,
                    &injections,
                    scale.base_seed.wrapping_add(900 + trial),
                    200,
                );
                if trace.value_faulty(mat.task(display)) {
                    hits += 1;
                }
            }
            t.push([
                label.to_string(),
                count.to_string(),
                format!("{:.3}", hits as f64 / trials as f64),
            ]);
        }
    }
    t
}

/// E12: the paper's workflow end to end from measurements — run an
/// injection campaign over the executable control loop, turn the
/// measured influence matrix into an SW graph, and integrate it with H1.
/// No influence value is hand-assigned anywhere in the chain.
pub fn e12(scale: Scale) -> String {
    use fcm_workloads::measured::sw_graph_from_measurements;
    let (spec, roles) =
        avionics::control_loop_system(SchedulingPolicy::PreemptiveEdf).expect("static system");
    let campaign = InfluenceCampaign::new(spec, 400, scale.trials, scale.base_seed.wrapping_add(4242));
    let g = sw_graph_from_measurements(&campaign, &[], 0.05).expect("attribute vector empty");
    let mut out = String::from(
        "measured influence edges (threshold 0.05):
",
    );
    for (_, e) in g.edges() {
        out.push_str(&format!(
            "  {} -> {}: {}
",
            g.node(e.from).expect("endpoint").name,
            g.node(e.to).expect("endpoint").name,
            e.weight
        ));
    }
    match h1(&g, 3) {
        Ok(c) => {
            out.push_str(
                "H1 integration of the measured graph (3 nodes):
",
            );
            for i in 0..c.len() {
                out.push_str(&format!(
                    "  {{{}}}
",
                    c.cluster_name(&g, i)
                ));
            }
            let sensors_with_autopilot = c.clusters().iter().any(|grp| {
                grp.contains(&NodeIdx(roles.sensors)) && grp.contains(&NodeIdx(roles.autopilot))
            });
            out.push_str(&format!(
                "sensors co-located with autopilot: {sensors_with_autopilot}
"
            ));
        }
        Err(e) => out.push_str(&format!(
            "integration failed: {e}
"
        )),
    }
    out
}

/// E14: node-failure recovery policy sweep. The expanded avionics suite
/// on its 6-cabinet platform, swept over the HW fault rate × the four
/// [`RecoveryPolicy`] levels of the repairable reliability model. The
/// policies share each trial's fault world (common random numbers), so
/// mission failure is monotone non-increasing down the policy column at
/// every fault rate — exactly, not just in expectation.
pub fn e14(scale: Scale) -> Table {
    use fcm_eval::{RecoveryPolicy, RepairableModel};
    let (ex, _) = avionics::expanded_suite();
    let g = &ex.graph;
    let hw = avionics::platform();
    let weights = ImportanceWeights::default();
    let c = h1(g, hw.len()).expect("avionics suite clusters");
    let m = approach_a(g, &c, &hw, &weights).expect("avionics suite maps");
    let mut t = Table::new([
        "p_hw",
        "policy",
        "mission failure",
        "mean shed",
        "mean recoveries",
        "mttr",
    ]);
    // Every (rate, policy) pair is an independent sweep cell — the
    // repairable model replays the same seeded fault worlds per cell, so
    // the common-random-numbers policy ordering survives the fan-out.
    let cells: Vec<(f64, RecoveryPolicy)> = [0.02, 0.05, 0.10, 0.20]
        .iter()
        .flat_map(|&p_hw| RecoveryPolicy::ALL.into_iter().map(move |p| (p_hw, p)))
        .collect();
    let rows = SweepDriver::new(scale.base_seed).run(&cells, |&(p_hw, policy), _| {
        let model = RepairableModel {
            base: ReliabilityModel {
                p_hw,
                p_sw: 0.05,
                cross_node_attenuation: 0.2,
                critical_at: 7,
                trials: scale.reliability_trials,
                seed: scale.base_seed.wrapping_add(1414),
            },
            ..RepairableModel::default()
        };
        let est = model.evaluate(g, &c, &m, &hw, policy);
        [
            format!("{p_hw:.2}"),
            policy.label().to_string(),
            format!("{:.4}", est.mission_failure),
            format!("{:.3}", est.mean_shed_processes),
            format!("{:.3}", est.mean_recoveries),
            est.mttr.map_or_else(|| "-".to_string(), |v| format!("{v:.2}")),
        ]
    });
    for row in rows {
        t.push(row);
    }
    t
}

/// E15: the sparse large-n analysis engine. Sweeps fleet sizes through
/// the CSR walk-series kernel (Eq. 3) and the top-k influence query; at
/// oracle sizes (n ≤ 512) the dense blocked kernel is recomputed and
/// compared **bitwise** before the row is emitted — any divergence
/// panics the run. Timings live in `BENCH_sparse_kernel.json`; this
/// table records only deterministic quantities, so `verify.sh` can
/// byte-compare sequential vs parallel sweeps.
pub fn e15(scale: Scale) -> Table {
    use fcm_graph::InfluenceMatrix;
    use fcm_workloads::fleet::SparseFleet;
    const ORDER: usize = 8;
    const EPSILON: f64 = 1e-12;
    let ns: Vec<usize> = if scale.trials >= Scale::FULL.trials {
        vec![128, 512, 1_000, 10_000, 50_000]
    } else {
        vec![128, 512, 1_000]
    };
    let mut t = Table::new([
        "n",
        "repr",
        "nnz",
        "density",
        "series nnz",
        "top-1 from p0",
        "oracle",
    ]);
    let rows = SweepDriver::new(scale.base_seed).run(&ns, |&n, _| {
        let fleet = SparseFleet {
            processes: n,
            seed: scale.base_seed.wrapping_add(n as u64),
            ..SparseFleet::default()
        };
        let m = fleet.matrix();
        let series = m.walk_series(ORDER, EPSILON);
        let oracle = if n <= 512 {
            let want = m.to_dense().walk_series(ORDER, EPSILON);
            for i in 0..n {
                for j in 0..n {
                    let sv = series.get(i, j).unwrap_or(0.0);
                    let dv = want.get(i, j).expect("in bounds");
                    assert_eq!(
                        sv.to_bits(),
                        dv.to_bits(),
                        "sparse/dense divergence at n={n} entry ({i},{j})"
                    );
                }
            }
            "bitwise-equal"
        } else {
            "skipped"
        };
        let mut im = InfluenceMatrix::Sparse(m);
        im.rebalance();
        let top1 = im
            .top_k_influence(0, 1, ORDER)
            .first()
            .map_or_else(|| "-".to_string(), |&(j, v)| format!("p{j} {v:.6}"));
        [
            n.to_string(),
            im.repr().to_string(),
            im.nnz().to_string(),
            format!("{:.5}", im.density()),
            series.nnz().to_string(),
            top1,
            oracle.to_string(),
        ]
    });
    for row in rows {
        t.push(row);
    }
    t
}

/// A complete platform of `k` nodes with the avionics resources on the
/// first two nodes (the display head and the radio).
fn platform_with_resources(k: usize) -> fcm_alloc::HwGraph {
    let mut hw = fcm_alloc::HwGraph::complete(k);
    if k >= 1 {
        hw.node_mut(NodeIdx(0))
            .expect("node 0 exists")
            .resources
            .insert("display".into());
    }
    if k >= 2 {
        hw.node_mut(NodeIdx(1))
            .expect("node 1 exists")
            .resources
            .insert("radio".into());
    }
    hw
}

// ----------------------------------------------------------------- helpers

/// Minimum cluster count imposed by the largest replica group.
fn min_clusters(g: &fcm_alloc::SwGraph) -> usize {
    use std::collections::BTreeMap;
    let mut sizes: BTreeMap<u32, usize> = BTreeMap::new();
    for (_, n) in g.nodes() {
        if let Some(rg) = n.replica_group {
            *sizes.entry(rg).or_default() += 1;
        }
    }
    sizes.values().copied().max().unwrap_or(1)
}

/// A random job set of `n` jobs with total utilisation ≈ `u` over a
/// 100-tick window.
fn random_job_set(n: usize, u: f64, seed: u64) -> JobSet {
    let mut rng = Rng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9).wrapping_add(1));
    let horizon = 100u64;
    let total_work = (u * horizon as f64) as u64;
    let mut jobs = Vec::with_capacity(n);
    let mut remaining = total_work.max(n as u64);
    for i in 0..n {
        let ct = if i == n - 1 {
            remaining.max(1)
        } else {
            let share = (remaining / (n - i) as u64).max(1);
            rng.gen_range(1..=share * 2)
                .min(remaining.saturating_sub((n - i - 1) as u64))
                .max(1)
        };
        remaining = remaining.saturating_sub(ct);
        let est = rng.gen_range(0..horizon / 2);
        let window = rng.gen_range(ct..=ct + horizon / 2);
        jobs.push(Job::new(i as u64, est, est + window, ct));
    }
    JobSet::new(jobs).expect("generated jobs are well-formed")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t1_and_figures_render() {
        assert!(t1().contains("p1"));
        assert!(f3().contains("p1 -> p2 [0.5]"));
        assert!(f3().contains("p1 - p2: 1.2"));
        assert!(f4().starts_with("12 nodes"));
        let f5t = f5();
        assert_eq!(f5t.len(), 2);
        // The famous 0.76 appears in the {p1,p2,p3} row.
        assert!(f5t.rows()[1].iter().any(|c| c == "0.7600"));
        assert!(f6().contains("hw"));
        assert!(f7().contains("summary criticality"));
        assert!(f8().contains("envelope"));
    }

    #[test]
    fn dot_figures_render() {
        let d3 = f3_dot();
        assert!(d3.contains("digraph fig3"));
        assert!(d3.contains("\"p1\" -> \"p2\" [label=\"0.5\"]"));
        let d4 = f4_dot();
        assert!(d4.contains("digraph fig4"));
        assert!(d4.contains("style=dashed"));
        assert!(d4.contains("p1c"));
    }

    #[test]
    fn e1_covers_all_strategies_and_sizes() {
        let t = e1(Scale::QUICK);
        assert_eq!(t.len(), 4 * 6);
        // No strategy fails on every seed for small graphs.
        for row in t.rows().iter().take(5) {
            assert_ne!(row[2], "NaN", "{row:?}");
        }
    }

    #[test]
    fn e2_error_decreases_with_order() {
        let t = e2();
        assert_eq!(t.len(), 8);
        let errs: Vec<f64> = t.rows().iter().map(|r| r[1].parse().unwrap()).collect();
        for w in errs.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "{errs:?}");
        }
        // Order 4 is already tight (the DEFAULT_ORDER rationale).
        assert!(errs[3] < 0.05, "{errs:?}");
    }

    #[test]
    fn e3_measured_tracks_analytic() {
        let t = e3(Scale::QUICK);
        assert_eq!(t.len(), 9);
        for row in t.rows() {
            let err: f64 = row[4].parse().unwrap();
            assert!(err < 0.12, "{row:?}");
        }
    }

    #[test]
    fn e4_reports_all_strategies_per_fault_rate() {
        let t = e4(Scale::QUICK);
        assert_eq!(t.len(), 3 * 4);
        // Mission failure grows with the HW fault rate for each strategy.
        let fail = |row: &Vec<String>| row[2].parse::<f64>().unwrap();
        let h1_rows: Vec<&Vec<String>> = t.rows().iter().filter(|r| r[1] == "H1+A").collect();
        assert!(fail(h1_rows[0]) <= fail(h1_rows[2]) + 0.02);
    }

    #[test]
    fn e14_recovery_policies_are_ordered_at_every_rate() {
        let t = e14(Scale::QUICK);
        // 4 fault rates × 4 policies.
        assert_eq!(t.len(), 4 * 4);
        let fail = |row: &Vec<String>| row[2].parse::<f64>().unwrap();
        for rate_rows in t.rows().chunks(4) {
            // none ≥ retry-only ≥ failover ≥ failover+shedding.
            for pair in rate_rows.windows(2) {
                assert!(
                    fail(&pair[0]) >= fail(&pair[1]),
                    "ordering violated: {rate_rows:?}"
                );
            }
            // Policy labels in sweep order.
            assert_eq!(rate_rows[0][1], "none");
            assert_eq!(rate_rows[3][1], "failover+shedding");
            // No recovery ⇒ no recoveries and no MTTR.
            assert_eq!(rate_rows[0][4], "0.000");
            assert_eq!(rate_rows[0][5], "-");
        }
        // Recovery actually happens at the higher fault rates.
        let last = &t.rows()[15];
        assert!(last[4].parse::<f64>().unwrap() > 0.0, "{last:?}");
    }

    #[test]
    fn e15_sparse_sweep_is_oracle_checked_and_deterministic() {
        let t = e15(Scale::QUICK);
        assert_eq!(t.len(), 3);
        for row in t.rows() {
            assert_eq!(row[1], "csr", "{row:?}");
            let density: f64 = row[3].parse().unwrap();
            assert!(density > 0.0 && density <= 0.05, "{row:?}");
            let nnz: usize = row[2].parse().unwrap();
            let series_nnz: usize = row[4].parse().unwrap();
            assert!(series_nnz > nnz, "the walk extends direct edges: {row:?}");
        }
        // Oracle runs at every n ≤ 512 cell, is skipped above.
        assert_eq!(t.rows()[0][6], "bitwise-equal");
        assert_eq!(t.rows()[1][6], "bitwise-equal");
        assert_eq!(t.rows()[2][6], "skipped");
        // Byte-identical across repeated runs (the verify.sh contract).
        assert_eq!(t.to_string(), e15(Scale::QUICK).to_string());
    }

    #[test]
    fn e5_edf_dominates_nonpreemptive() {
        let t = e5(Scale::QUICK);
        assert_eq!(t.len(), 7);
        for row in t.rows() {
            let edf: f64 = row[1].parse().unwrap();
            let np: f64 = row[2].parse().unwrap();
            assert!(edf >= np - 1e-9, "{row:?}");
        }
        // Feasibility collapses as U crosses 1.
        let first: f64 = t.rows()[0][1].parse().unwrap();
        let last: f64 = t.rows()[6][1].parse().unwrap();
        assert!(first > last);
    }

    #[test]
    fn e6_savings_grow_with_fanout() {
        let t = e6();
        assert_eq!(t.len(), 3);
        let savings: Vec<f64> = t.rows().iter().map(|r| r[4].parse().unwrap()).collect();
        assert!(savings[2] > savings[0], "{savings:?}");
        assert!(savings.iter().all(|&s| s >= 1.0));
    }

    #[test]
    fn e7_isolation_reduces_both_paths() {
        let t = e7(Scale::QUICK);
        assert_eq!(t.len(), 6);
        let infl = |i: usize| t.rows()[i][2].parse::<f64>().unwrap();
        // Hiding reduces the value path; stronger recovery reduces it
        // further; preemption kills the timing path.
        assert!(infl(1) < infl(0), "{:?}", t.rows());
        assert!(infl(2) < infl(0), "{:?}", t.rows());
        assert!(infl(3) < infl(2), "{:?}", t.rows());
        assert!(infl(5) < infl(4), "{:?}", t.rows());
    }

    #[test]
    fn e8_curve_has_a_knee_no_deeper_than_best() {
        let t = e8(Scale::QUICK);
        assert!(t.len() >= 8, "{:?}", t.rows());
        let knee = t.rows().iter().find(|r| r[4].contains("knee"));
        let best = t.rows().iter().find(|r| r[4].contains("best"));
        let (knee, best) = (knee.expect("knee exists"), best.expect("best exists"));
        let k_knee: usize = knee[0].parse().unwrap();
        let k_best: usize = best[0].parse().unwrap();
        assert!(k_knee <= k_best);
        // k = 1, 2 fail on replica anti-affinity (TMR autopilot); k = 3..5
        // fail because deep clustering packs the display and radio
        // functions together while no processor carries both resources.
        let infeasible: Vec<usize> = t
            .rows()
            .iter()
            .filter(|r| r[4].contains("infeasible"))
            .map(|r| r[0].parse().unwrap())
            .collect();
        assert_eq!(infeasible, vec![1, 2, 3, 4, 5], "{:?}", t.rows());
        let feasible_min: usize = t
            .rows()
            .iter()
            .filter(|r| !r[4].contains("infeasible"))
            .map(|r| r[0].parse().unwrap())
            .min()
            .unwrap();
        assert_eq!(feasible_min, 6);
    }

    #[test]
    fn e10_h2_wins_on_ring_of_cliques() {
        let t = e10();
        assert_eq!(t.len(), 4);
        let roc = t
            .rows()
            .iter()
            .find(|r| r[0] == "ring-of-cliques")
            .expect("topology present");
        let h2_score: f64 = roc[4].parse().unwrap();
        let h3_score: f64 = roc[5].parse().unwrap();
        // Min-cut recovers the clique structure exactly (only the thin
        // bridges cross); importance spheres do worse here.
        assert!(h2_score <= h3_score + 1e-9, "{:?}", roc);
        // Every cell is a number or an explicit "fail".
        for row in t.rows() {
            for cell in &row[2..] {
                assert!(cell == "fail" || cell.parse::<f64>().is_ok(), "{cell}");
            }
        }
    }

    #[test]
    fn e11_boundaries_contain_the_materialised_fault() {
        let t = e11(Scale::QUICK);
        assert_eq!(t.len(), 4);
        // For each mapping, strong HW boundaries (attenuation 0.2) leak
        // no more than leaky ones (1.0).
        for pair in t.rows().chunks(2) {
            let leaky: f64 = pair[0][2].parse().unwrap();
            let tight: f64 = pair[1][2].parse().unwrap();
            assert!(tight <= leaky + 0.05, "{pair:?}");
        }
    }

    #[test]
    fn e13_voting_masks_single_replica_faults() {
        let t = e13(Scale::QUICK);
        assert_eq!(t.len(), 4);
        let p = |i: usize| t.rows()[i][2].parse::<f64>().unwrap();
        // Unvoted, one corrupt replica: the fault leaks substantially.
        assert!(p(0) > 0.3, "{:?}", t.rows());
        // Voted, one corrupt replica: fully masked.
        assert!(p(2) < 0.02, "{:?}", t.rows());
        // Voted, two corrupt replicas: the vote can be defeated, but only
        // when two lossy channels (p = 0.2 each) deliver corruption in the
        // same frame — analytically ≈ 0.104 per frame, far above the
        // masked single-replica case yet far below the unvoted leak.
        assert!(p(3) > 0.04, "{:?}", t.rows());
        assert!(p(3) < p(0), "{:?}", t.rows());
    }

    #[test]
    fn e12_measured_workflow_runs_end_to_end() {
        let s = e12(Scale::QUICK);
        assert!(s.contains("sensors -> autopilot"), "{s}");
        assert!(s.contains("sensors co-located with autopilot: true"), "{s}");
    }

    #[test]
    fn e9_selects_an_equipped_platform() {
        let s = e9(Scale::QUICK);
        assert!(s.contains("=> "), "{s}");
        // The bare platform can never host the display/radio functions.
        assert!(s.contains("4-node bare"));
        let bare_line = s.lines().find(|l| l.contains("4-node bare")).unwrap();
        assert!(bare_line.contains("infeasible"), "{bare_line}");
    }
}
