//! Pins the repo-wide exit-code contract (DESIGN.md): every fallible
//! binary agrees on 0 = success / clean, 1 = findings, 2 = usage or IO
//! error, and `--help` always succeeds.

use std::process::{Command, Output};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin)
        .args(args)
        .env_remove("FCM_OBS_OUT")
        .output()
        .unwrap_or_else(|e| panic!("cannot spawn {bin}: {e}"))
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("binary exited without a signal")
}

#[test]
fn help_exits_zero_everywhere() {
    for bin in [
        env!("CARGO_BIN_EXE_repro"),
        env!("CARGO_BIN_EXE_obsview"),
        env!("CARGO_BIN_EXE_check_bench_schema"),
        env!("CARGO_BIN_EXE_checktool"),
        env!("CARGO_BIN_EXE_srclint"),
    ] {
        let out = run(bin, &["--help"]);
        assert_eq!(code(&out), 0, "{bin} --help must exit 0");
    }
}

#[test]
fn usage_errors_exit_two() {
    let cases: [(&str, &[&str]); 9] = [
        (env!("CARGO_BIN_EXE_repro"), &["--no-such-flag"]),
        (env!("CARGO_BIN_EXE_repro"), &["nonsense-id"]),
        (env!("CARGO_BIN_EXE_obsview"), &[]),
        (env!("CARGO_BIN_EXE_check_bench_schema"), &[]),
        (env!("CARGO_BIN_EXE_checktool"), &["no-such-model"]),
        (env!("CARGO_BIN_EXE_checktool"), &["--contracts"]),
        (env!("CARGO_BIN_EXE_checktool"), &["--contracts", "/no/such/contracts.json"]),
        (env!("CARGO_BIN_EXE_checktool"), &["--emit-contracts"]),
        (env!("CARGO_BIN_EXE_checktool"), &["--emit-contracts", "--contracts", "x.json", "paper"]),
    ];
    for (bin, args) in cases {
        let out = run(bin, args);
        assert_eq!(code(&out), 2, "{bin} {args:?} must exit 2");
    }
}

#[test]
fn io_errors_exit_two() {
    let out = run(env!("CARGO_BIN_EXE_obsview"), &["/no/such/log.jsonl"]);
    assert_eq!(code(&out), 2, "obsview on a missing file must exit 2");
}

#[test]
fn checktool_clean_models_exit_zero() {
    let out = run(env!("CARGO_BIN_EXE_checktool"), &[]);
    assert_eq!(code(&out), 0, "committed workloads must be clean of errors");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("paper:"), "report summary for the paper model:\n{text}");
    assert!(text.contains("avionics:"), "report summary for the avionics model:\n{text}");
}

#[test]
fn checktool_findings_exit_one_and_json_carries_schema() {
    let out = run(env!("CARGO_BIN_EXE_checktool"), &["--json", "--broken-e14"]);
    assert_eq!(code(&out), 1, "the broken model must produce error findings");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"schema\": \"fcm-check/v1\""), "JSON schema tag missing:\n{text}");
    for expected in ["C008", "C012", "C016"] {
        assert!(text.contains(expected), "missing {expected} in:\n{text}");
    }
}

#[test]
fn checktool_contract_round_trip_is_clean_and_violations_exit_one() {
    // Emit → re-check: the synthesized set is the tightest *passing*
    // one, so the round trip is clean (exit 0; C022 may warn).
    let out = run(env!("CARGO_BIN_EXE_checktool"), &["avionics", "--emit-contracts"]);
    assert_eq!(code(&out), 0, "emit must succeed");
    let doc = String::from_utf8_lossy(&out.stdout).to_string();
    assert!(doc.contains("fcm-contracts/v1"), "{doc}");
    let dir = std::env::temp_dir().join(format!("fcm-exitcodes-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let clean = dir.join("avionics.contracts.json");
    std::fs::write(&clean, &doc).unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_checktool"),
        &["avionics", "--contracts", clean.to_str().unwrap()],
    );
    assert_eq!(code(&out), 0, "round trip must be clean:\n{}", String::from_utf8_lossy(&out.stdout));

    // Tighten one guarantee below its actual row sum: C017 → exit 1.
    let mut set =
        fcm_check::ContractSet::from_json(&fcm_substrate::Json::parse(&doc).unwrap()).unwrap();
    let mut first = set.iter().next().unwrap().clone();
    first.guarantee = 0.0;
    set.insert(first);
    let broken = dir.join("broken.contracts.json");
    std::fs::write(&broken, set.to_json().to_string_pretty()).unwrap();
    let out = run(
        env!("CARGO_BIN_EXE_checktool"),
        &["avionics", "--contracts", broken.to_str().unwrap()],
    );
    assert_eq!(code(&out), 1, "violated guarantee is findings-class");
    assert!(String::from_utf8_lossy(&out.stdout).contains("C017"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repro_check_gate_passes_on_committed_workloads() {
    let out = run(env!("CARGO_BIN_EXE_repro"), &["--check", "e1", "e14"]);
    assert_eq!(code(&out), 0, "pre-flight over committed workloads must pass");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("paper:"), "{text}");
    assert!(text.contains("avionics:"), "{text}");
}

/// Path to a sibling crate's binary in the same target profile dir, or
/// `None` when it has not been built (CARGO_BIN_EXE_* only covers this
/// crate's own bins; `scripts/verify.sh` builds everything first, so
/// the serve coverage always runs there).
fn workspace_bin(name: &str) -> Option<std::path::PathBuf> {
    let me = std::env::current_exe().ok()?;
    // target/<profile>/deps/<test-bin> → target/<profile>/<name>
    let profile_dir = me.parent()?.parent()?;
    let candidate = profile_dir.join(name);
    candidate.is_file().then_some(candidate)
}

#[test]
fn serve_binaries_follow_the_contract() {
    let Some(serve) = workspace_bin("fcm-serve") else {
        eprintln!("skipping: fcm-serve not built in this profile");
        return;
    };
    let Some(gen) = workspace_bin("servegen") else {
        eprintln!("skipping: servegen not built in this profile");
        return;
    };
    let serve = serve.to_str().unwrap().to_string();
    let gen = gen.to_str().unwrap().to_string();

    for bin in [&serve, &gen] {
        assert_eq!(code(&run(bin, &["--help"])), 0, "{bin} --help must exit 0");
        assert_eq!(
            code(&run(bin, &["--no-such-flag"])),
            2,
            "{bin} rejects unknown flags with 2"
        );
    }
    // Unwritable snapshot path: environment failure → 2.
    let out = run(
        &serve,
        &[
            "--model",
            "paper",
            "--tcp",
            "127.0.0.1:0",
            "--state-dir",
            "/proc/fcm-serve-cannot-write-here",
        ],
    );
    assert_eq!(code(&out), 2, "unwritable state dir must exit 2");
    // Unknown model: findings → 1.
    let out = run(&serve, &["--model", "bogus", "--tcp", "127.0.0.1:0"]);
    assert_eq!(code(&out), 1, "unknown model is findings-class");
}

#[test]
fn srclint_is_clean_on_this_repo() {
    // The test binary runs from the crate directory; point srclint at
    // the workspace root two levels up.
    let root = concat!(env!("CARGO_MANIFEST_DIR"), "/../..");
    let out = run(env!("CARGO_BIN_EXE_srclint"), &[root]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(code(&out), 0, "srclint findings:\n{text}");
    assert!(text.contains("0 finding(s)"), "{text}");
}
