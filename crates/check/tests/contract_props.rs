//! Property and mutation tests for the contract layer (C017–C022) and
//! the incremental [`Certifier`].
//!
//! Four pillars, mirroring DESIGN.md §13:
//!
//! * **conservatism** — the contract-derived system bound dominates the
//!   exact Eq. 3 walk series on every generated model, in both the
//!   dense and the CSR representation;
//! * **sensitivity** — each contract code has a minimal mutation that
//!   makes exactly that code fire, plus a negative witness (the
//!   unmutated model is clean of it);
//! * **incrementality** — after any random sequence of row / criticality
//!   / contract edits, a dirty-rows pass over a warm certifier is
//!   bitwise identical to a from-scratch full pass;
//! * **determinism** — contract-bearing reports are byte-identical
//!   across `FCM_SWEEP_THREADS` settings (explicit 1- vs 4-thread runs).

use fcm_alloc::sw::SwGraphBuilder;
use fcm_check::contract::{certified_bound, synthesize};
use fcm_check::{
    run_checks_with_threads, CertView, Certifier, Contract, Dirty, Severity, SystemModel,
};
use fcm_core::separation::DEFAULT_ORDER;
use fcm_core::AttributeSet;
use fcm_graph::sparse::SparseMatrix;
use fcm_graph::{InfluenceMatrix, Matrix};
use fcm_substrate::prop;
use fcm_substrate::rng::Rng;
use fcm_substrate::ToJson;

/// A random influence matrix with off-diagonal entries; roughly half
/// the cases keep every row sum < 1 (a certifiable system), the rest
/// are allowed to diverge so the `∞`-bound path is exercised too.
fn random_matrix(rng: &mut Rng, n: usize) -> Matrix {
    let mut m = Matrix::zeros(n, n);
    let certifiable = rng.gen_bool(0.5);
    for i in 0..n {
        let mut budget: f64 =
            if certifiable { rng.gen_range(0.3f64..0.95) } else { rng.gen_range(0.5f64..2.0) };
        for j in 0..n {
            if i != j && rng.gen_bool(0.4) {
                let w = (budget * rng.gen_range(0.1f64..0.6)).min(1.0);
                m[(i, j)] = w;
                budget -= w;
                if budget <= 0.0 {
                    break;
                }
            }
        }
    }
    m
}

fn columns(n: usize, rng: &mut Rng) -> (Vec<String>, Vec<u32>) {
    (
        (0..n).map(|i| format!("f{i}")).collect(),
        (0..n).map(|_| rng.gen_range(0..8u32)).collect(),
    )
}

#[test]
fn certified_bound_dominates_the_exact_series_dense_and_csr() {
    let gen = |rng: &mut Rng, size: usize| {
        let n = 2 + size % 9;
        (random_matrix(rng, n), columns(n, rng))
    };
    prop::check(
        "certified-bound-conservative",
        prop::Config::with_cases(64),
        gen,
        |(dense, (names, crits))| {
            let reprs = [
                InfluenceMatrix::Dense(dense.clone()),
                InfluenceMatrix::Sparse(SparseMatrix::from_dense(dense)),
            ];
            for mat in &reprs {
                let set = synthesize(names, crits, mat);
                let bound = certified_bound(&set, DEFAULT_ORDER);
                for i in 0..names.len() {
                    for j in 0..names.len() {
                        // The certified bound covers the truncated series
                        // at the default order AND any deeper truncation
                        // (the closed-form tail absorbs every dropped
                        // term), so check both.
                        for order in [DEFAULT_ORDER, 2 * DEFAULT_ORDER] {
                            let exact = mat.transitive_influence(i, j, order);
                            if exact > bound.influence_bound + 1e-12 {
                                return Err(format!(
                                    "{} entry ({i},{j}) order {order}: exact {exact} > certified {}",
                                    mat.repr(),
                                    bound.influence_bound
                                ));
                            }
                        }
                    }
                }
                // And the separation floor is the bound's complement.
                if bound.converges {
                    let floor = 1.0 - bound.influence_bound.min(1.0);
                    if (bound.separation_floor - floor).abs() > 1e-15 {
                        return Err("separation floor drifted from the bound".to_string());
                    }
                }
            }
            Ok(())
        },
    );
}

/// A fixed contract-bearing base model: four processes in a ring with
/// row sums well under 1, contracts synthesized (tightest passing), so
/// every contract rule holds and C022 certifies.
fn contract_base() -> SystemModel {
    let mut b = SwGraphBuilder::new();
    let attrs = |c: u32| {
        AttributeSet::default()
            .with_criticality(c)
            .with_timing(0, 20, 2)
            .with_throughput(0.1)
    };
    let nodes: Vec<_> = (0..4)
        .map(|i| b.add_process(format!("f{i}"), attrs(3 + i as u32)))
        .collect();
    for i in 0..4 {
        b.add_influence(nodes[i], nodes[(i + 1) % 4], 0.2 + 0.05 * i as f64)
            .expect("valid influence");
    }
    let g = b.build();
    let dense = Matrix::from_graph(&g);
    let influence = InfluenceMatrix::Dense(dense.clone());
    let names: Vec<String> = (0..4).map(|i| format!("f{i}")).collect();
    let crits: Vec<u32> = (0..4).map(|i| 3 + i as u32).collect();
    let set = synthesize(&names, &crits, &influence);
    SystemModel::new("contract-base")
        .with_sw(g)
        .with_influence(dense)
        .with_contracts(set)
}

fn codes_of(m: &SystemModel) -> Vec<u16> {
    run_checks_with_threads(m, 1)
        .diagnostics
        .iter()
        .map(|d| d.code.0)
        .collect()
}

/// Asserts the contract base is clean of `code` and `mutated` fires it.
fn assert_contract_mutation_fires(code: u16, mutated: &SystemModel) {
    let before = codes_of(&contract_base());
    assert!(
        !before.contains(&code),
        "contract base already carries C{code:03}: {before:?}"
    );
    let after = codes_of(mutated);
    assert!(
        after.contains(&code),
        "mutation failed to fire C{code:03}: {after:?}"
    );
}

fn edit_contract(m: &mut SystemModel, fcm: &str, edit: impl FnOnce(&mut Contract)) {
    let set = m.contracts.as_mut().expect("base model has contracts");
    let mut c = set.get(fcm).expect("contract exists").clone();
    edit(&mut c);
    set.insert(c);
}

#[test]
fn c017_broken_guarantee_fires() {
    let mut m = contract_base();
    edit_contract(&mut m, "f0", |c| c.guarantee = 0.01);
    assert_contract_mutation_fires(17, &m);
}

#[test]
fn c018_broken_edge_cap_fires() {
    let mut m = contract_base();
    // f0 → f1 carries 0.2; cap it at 0.05.
    edit_contract(&mut m, "f0", |c| *c = c.clone().with_cap("f1", 0.05));
    assert_contract_mutation_fires(18, &m);
    // A cap at the actual weight is a negative witness for C018 (and
    // tightens f1's entailed interference rather than breaking it).
    let mut ok = contract_base();
    edit_contract(&mut ok, "f0", |c| *c = c.clone().with_cap("f1", 0.2));
    assert!(!codes_of(&ok).contains(&18));
}

#[test]
fn c019_undischarged_rely_fires() {
    let mut m = contract_base();
    edit_contract(&mut m, "f2", |c| c.rely = 0.0);
    assert_contract_mutation_fires(19, &m);
}

#[test]
fn c020_floor_above_criticality_fires() {
    let mut m = contract_base();
    edit_contract(&mut m, "f1", |c| c.floor = 99);
    assert_contract_mutation_fires(20, &m);
}

#[test]
fn c021_missing_and_dangling_contracts_fire() {
    // Missing: drop one contract → warn (partial adoption never errors).
    let mut m = contract_base();
    m.contracts.as_mut().unwrap().remove("f3");
    assert_contract_mutation_fires(21, &m);
    let r = run_checks_with_threads(&m, 1);
    assert!(
        r.diagnostics.iter().all(|d| d.code.0 != 21 || d.severity == Severity::Warn),
        "a missing contract is advisory:\n{}",
        r.render()
    );
    // Dangling: a contract naming an absent FCM → error.
    let mut m = contract_base();
    m.contracts.as_mut().unwrap().insert(Contract::new("ghost", 0.1, 1.0, 0));
    let r = run_checks_with_threads(&m, 1);
    assert!(
        r.diagnostics.iter().any(|d| d.code.0 == 21 && d.severity == Severity::Error),
        "a dangling contract is an error:\n{}",
        r.render()
    );
}

#[test]
fn c022_divergent_guarantees_fire() {
    let mut m = contract_base();
    // Every guarantee still ≥ its actual row sum (no C017) and every
    // rely raised to what the others now permit (no C019) — but a max
    // guarantee of 1 kills geometric convergence.
    for name in ["f0", "f1", "f2", "f3"] {
        edit_contract(&mut m, name, |c| {
            c.guarantee = 1.0;
            c.rely = 3.0;
        });
    }
    assert_contract_mutation_fires(22, &m);
    let r = run_checks_with_threads(&m, 1);
    assert_eq!(r.count(Severity::Error), 0, "C022 is advisory:\n{}", r.render());
}

#[test]
fn incremental_certifier_is_bitwise_identical_to_from_scratch() {
    let mut rng = Rng::seed_from_u64(0xC017);
    for case in 0..8 {
        let n0 = 4 + case % 5;
        let mut influence = InfluenceMatrix::Dense(random_matrix(&mut rng, n0));
        let (mut names, mut crits) = columns(n0, &mut rng);
        let mut contracts = synthesize(&names, &crits, &influence);
        let mut warm = Certifier::new();
        warm.certify(
            &CertView {
                model: "inc",
                names: &names,
                crits: &crits,
                influence: &influence,
                contracts: &contracts,
            },
            Dirty::Full,
            1,
        );
        for _step in 0..24 {
            let n = names.len();
            let i = rng.gen_range(0..n);
            let mut dirty_rows = vec![i];
            match rng.gen_range(0..4u32) {
                0 => {
                    // Rewrite row i (column i untouched: only row i dirties).
                    let col: Vec<f64> = (0..n).map(|j| influence.get(j, i).unwrap_or(0.0)).collect();
                    let mut row: Vec<f64> = (0..n).map(|j| influence.get(i, j).unwrap_or(0.0)).collect();
                    let j = (i + 1 + rng.gen_range(0..n - 1)) % n;
                    row[j] = if rng.gen_bool(0.3) { 0.0 } else { rng.gen_range(0.0..0.8) };
                    influence.set_row_col(i, &row, &col);
                }
                1 => crits[i] = rng.gen_range(0..8u32),
                2 => {
                    let mut c = contracts.get(&names[i]).expect("covered").clone();
                    c.guarantee = rng.gen_range(0.0..1.5);
                    c.rely = rng.gen_range(0.0..8.0);
                    c.floor = rng.gen_range(0..8u32);
                    contracts.insert(c);
                }
                _ => {
                    // Structural: a new FCM joins (the certifier must
                    // detect the shape change and fall back to full).
                    let name = format!("g{}", names.len());
                    influence = influence.grow_row_col();
                    contracts.insert(Contract::new(name.clone(), 0.5, 9.0, 0));
                    names.push(name);
                    crits.push(rng.gen_range(0..8u32));
                    dirty_rows = vec![names.len() - 1];
                }
            }
            let view = CertView {
                model: "inc",
                names: &names,
                crits: &crits,
                influence: &influence,
                contracts: &contracts,
            };
            let inc = warm.certify(&view, Dirty::Rows(&dirty_rows), 1);
            let scratch = Certifier::new().certify(&view, Dirty::Full, 4);
            assert_eq!(
                inc.report.render(),
                scratch.report.render(),
                "incremental report drifted from from-scratch"
            );
            assert_eq!(
                inc.report.to_json().to_string_pretty(),
                scratch.report.to_json().to_string_pretty()
            );
            assert_eq!(inc.certified, scratch.certified);
            assert_eq!(
                inc.bound.influence_bound.to_bits(),
                scratch.bound.influence_bound.to_bits(),
                "bound must be bitwise identical"
            );
            assert_eq!(
                inc.bound.separation_floor.to_bits(),
                scratch.bound.separation_floor.to_bits()
            );
        }
    }
}

#[test]
fn single_row_edits_recertify_in_o_degree() {
    let mut rng = Rng::seed_from_u64(7);
    let n = 64;
    let influence = InfluenceMatrix::Dense(random_matrix(&mut rng, n));
    let (names, mut crits) = columns(n, &mut rng);
    let contracts = synthesize(&names, &crits, &influence);
    let mut warm = Certifier::new();
    let first = warm.certify(
        &CertView { model: "deg", names: &names, crits: &crits, influence: &influence, contracts: &contracts },
        Dirty::Full,
        1,
    );
    assert_eq!((first.verified, first.reused), (n, 0));
    crits[9] = (crits[9] + 1) % 8;
    let inc = warm.certify(
        &CertView { model: "deg", names: &names, crits: &crits, influence: &influence, contracts: &contracts },
        Dirty::Rows(&[9]),
        1,
    );
    assert_eq!((inc.verified, inc.reused), (1, n - 1), "one dirty row re-verifies alone");
}

#[test]
fn contract_reports_are_identical_across_thread_counts() {
    let mut models = vec![contract_base()];
    // A findings-heavy variant: broken guarantee, floor, rely, dangling.
    let mut broken = contract_base();
    edit_contract(&mut broken, "f0", |c| c.guarantee = 0.01);
    edit_contract(&mut broken, "f1", |c| c.floor = 99);
    edit_contract(&mut broken, "f2", |c| c.rely = 0.0);
    broken.contracts.as_mut().unwrap().insert(Contract::new("ghost", 0.2, 1.0, 0));
    models.push(broken);
    for m in &models {
        let seq = run_checks_with_threads(m, 1);
        let par = run_checks_with_threads(m, 4);
        assert_eq!(seq.render(), par.render(), "render differs across thread counts");
        assert_eq!(
            seq.to_json().to_string_pretty(),
            par.to_json().to_string_pretty(),
            "json differs across thread counts"
        );
    }
}
