//! Property and mutation tests for the static-analysis catalog.
//!
//! Three pillars, as DESIGN.md §8 promises:
//!
//! * **soundness on valid models** — a randomly generated well-formed
//!   system model yields zero `Error` diagnostics;
//! * **sensitivity to seeded mutations** — each rule has a minimal
//!   mutation that makes exactly that code fire (and a negative
//!   witness: the unmutated base model is clean of it);
//! * **determinism** — reports are byte-identical whatever
//!   `FCM_SWEEP_THREADS` says, pinned by comparing explicit 1- and
//!   4-thread runs of the same models.

use fcm_alloc::sw::SwGraphBuilder;
use fcm_alloc::{Clustering, HwGraph, Mapping, ShedPolicy};
use fcm_check::{
    run_checks_with_threads, FactorView, FcmNodeView, RecoveryView, Severity, SystemModel,
};
use fcm_core::{AttributeSet, FcmHierarchy, HierarchyLevel};
use fcm_graph::{InfluenceMatrix, Matrix, NodeIdx};
use fcm_substrate::prop;
use fcm_substrate::rng::Rng;
use fcm_substrate::ToJson;

fn attrs(criticality: u32) -> AttributeSet {
    AttributeSet::default().with_criticality(criticality)
}

/// Generates a random well-formed model: a criticality-monotone FCM
/// forest, in-domain factors, a small SW graph with satisfiable
/// timings, its own derived influence matrix, singleton clusters mapped
/// one-per-node onto a complete platform, and sane recovery parameters.
fn valid_model(rng: &mut Rng, size: usize) -> SystemModel {
    let mut h = FcmHierarchy::new();
    let n_proc = 1 + size % 4;
    for p in 0..n_proc {
        let crit = rng.gen_range(2..11u32);
        let pid = h
            .add_root(format!("proc{p}"), HierarchyLevel::Process, attrs(crit))
            .expect("root");
        // The first process always gets two tasks and two procedures so
        // mutation tests find siblings and every rank in the base model.
        let n_tasks = if p == 0 { 2 } else { rng.gen_range(0..3usize) };
        for t in 0..n_tasks {
            let tcrit = rng.gen_range(1..=crit);
            let tid = h
                .add_child(pid, format!("proc{p}.t{t}"), attrs(tcrit))
                .expect("task");
            let n_sub = if p == 0 && t == 0 { 2 } else { rng.gen_range(0..3usize) };
            for q in 0..n_sub {
                let qcrit = rng.gen_range(1..=tcrit);
                h.add_child(tid, format!("proc{p}.t{t}.q{q}"), attrs(qcrit))
                    .expect("procedure");
            }
        }
    }

    let factors = (0..size % 5)
        .map(|i| FactorView {
            from: format!("proc{}", i % n_proc),
            to: format!("proc{}", (i + 1) % n_proc),
            occurrence: rng.gen_range(0.0..1.0),
            transmission: rng.gen_range(0.0..1.0),
            manifestation: rng.gen_range(0.0..1.0),
        })
        .collect();

    let k = 2 + size % 4;
    let mut b = SwGraphBuilder::new();
    let mut nodes = Vec::new();
    for i in 0..k {
        let est = rng.gen_range(0..5u64);
        let ct = rng.gen_range(1..4u64);
        let tcd = est + ct + rng.gen_range(0..5u64);
        let a = attrs(rng.gen_range(1..11u32))
            .with_timing(est, tcd, ct)
            .with_throughput(0.1);
        nodes.push(b.add_process(format!("sw{i}"), a));
    }
    for i in 0..k {
        for j in 0..k {
            if i != j && rng.gen_range(0..3u32) == 0 {
                b.add_influence(nodes[i], nodes[j], rng.gen_range(0.05..0.2))
                    .expect("valid influence");
            }
        }
    }
    let g = b.build();
    let influence = Matrix::from_graph(&g);
    let clustering = Clustering::singletons(&g);
    let hw = HwGraph::complete(k);
    let mapping = Mapping::from_assignment((0..k).map(NodeIdx).collect());

    SystemModel::new("generated")
        .with_hierarchy(&h)
        .with_retest_from_view()
        .with_factors(factors)
        .with_influence(influence)
        .with_sw(g)
        .with_clustering(clustering)
        .with_mapping(mapping, hw)
        .with_recovery(RecoveryView {
            heartbeat_period: rng.gen_range(2..10u64),
            detection_latency: 1,
            max_retries: rng.gen_range(0..4u32),
            backoff_base: rng.gen_range(1..4u64),
            checkpoint_every: rng.gen_range(1..6u64),
        })
        .with_shed(ShedPolicy::ShedBelow { critical_at: 3 })
}

/// The fixed base model every mutation test starts from; its shape is
/// deterministic (seeded) and rich enough for every mutation.
fn base_model() -> SystemModel {
    valid_model(&mut Rng::seed_from_u64(42), 11)
}

fn codes_of(m: &SystemModel) -> Vec<u16> {
    run_checks_with_threads(m, 1)
        .diagnostics
        .iter()
        .map(|d| d.code.0)
        .collect()
}

/// Asserts the base model is clean of `code`, and `mutated` fires it.
fn assert_mutation_fires(code: u16, mutated: &SystemModel) {
    let before = codes_of(&base_model());
    assert!(
        !before.contains(&code),
        "base model already carries C{code:03}: {before:?}"
    );
    let after = codes_of(mutated);
    assert!(
        after.contains(&code),
        "mutation failed to fire C{code:03}: {after:?}"
    );
}

#[test]
fn valid_models_have_zero_errors() {
    prop::check("valid-model-clean", prop::Config::with_cases(48), valid_model, |m| {
        let r = run_checks_with_threads(m, 1);
        if r.count(Severity::Error) == 0 {
            Ok(())
        } else {
            Err(format!("errors on a valid model:\n{}", r.render()))
        }
    });
}

#[test]
fn reports_are_identical_across_thread_counts() {
    let mut rng = Rng::seed_from_u64(7);
    let mut models: Vec<SystemModel> = (0..6).map(|s| valid_model(&mut rng, 3 + s)).collect();
    // Include a findings-heavy model so non-empty reports are compared.
    let mut broken = base_model();
    broken.factors.push(bad_factor());
    if let Some(r) = &mut broken.recovery {
        r.heartbeat_period = 0;
    }
    models.push(broken);
    for m in &models {
        let seq = run_checks_with_threads(m, 1);
        let par = run_checks_with_threads(m, 4);
        assert_eq!(seq.render(), par.render(), "render differs across thread counts");
        assert_eq!(
            seq.to_json().to_string_pretty(),
            par.to_json().to_string_pretty(),
            "json differs across thread counts"
        );
    }
}

fn bad_factor() -> FactorView {
    FactorView {
        from: "x".into(),
        to: "y".into(),
        occurrence: 1.5,
        transmission: 1.0,
        manifestation: 1.0,
    }
}

/// First hierarchy node that has a parent, by view index.
fn child_index(m: &SystemModel) -> usize {
    m.hierarchy
        .as_ref()
        .expect("base model has a hierarchy")
        .nodes
        .iter()
        .position(|n| n.parent.is_some())
        .expect("base model has a non-root FCM")
}

#[test]
fn c001_broken_backlink_fires() {
    let mut m = base_model();
    let i = child_index(&m);
    m.hierarchy.as_mut().unwrap().nodes[i].parent = None;
    assert_mutation_fires(1, &m);
}

#[test]
fn c002_level_skip_fires() {
    let mut m = base_model();
    let v = m.hierarchy.as_mut().unwrap();
    let i = v
        .nodes
        .iter()
        .position(|n| n.parent.is_some() && n.rank == 1)
        .expect("base model has a task");
    v.nodes[i].rank = 0; // a procedure directly under a process skips a rank
    assert_mutation_fires(2, &m);
}

#[test]
fn c003_parent_cycle_fires() {
    let mut m = base_model();
    let i = child_index(&m);
    let v = m.hierarchy.as_mut().unwrap();
    let (child_id, parent_id) = (v.nodes[i].id, v.nodes[i].parent.expect("has parent"));
    // Point the parent's own parent link back down at the child.
    let pi = v.nodes.iter().position(|n| n.id == parent_id).unwrap();
    v.nodes[pi].parent = Some(child_id);
    assert_mutation_fires(3, &m);
}

#[test]
fn c004_shared_child_fires() {
    let mut m = base_model();
    let i = child_index(&m);
    let v = m.hierarchy.as_mut().unwrap();
    let child_id = v.nodes[i].id;
    let other = v
        .nodes
        .iter()
        .position(|n| n.id != child_id && n.parent != Some(child_id))
        .expect("another node exists");
    v.nodes[other].children.push(child_id);
    assert_mutation_fires(4, &m);
}

#[test]
fn c005_stray_root_fires() {
    let mut m = base_model();
    m.hierarchy.as_mut().unwrap().nodes.push(FcmNodeView {
        id: 999,
        name: "stray".into(),
        rank: 1,
        parent: None,
        children: Vec::new(),
        criticality: 1,
    });
    assert_mutation_fires(5, &m);
}

#[test]
fn c006_criticality_inversion_fires() {
    let mut m = base_model();
    let i = child_index(&m);
    let v = m.hierarchy.as_mut().unwrap();
    v.nodes[i].criticality = 100;
    assert_mutation_fires(6, &m);
    let r = run_checks_with_threads(&m, 1);
    assert!(
        r.diagnostics
            .iter()
            .all(|d| d.code.0 != 6 || d.severity == Severity::Warn),
        "criticality inversion is advisory, not an error"
    );
}

#[test]
fn c007_retest_drift_fires() {
    let mut m = base_model();
    let plan = m
        .retest
        .iter_mut()
        .find(|r| !r.siblings.is_empty())
        .expect("base model has a multi-child parent");
    plan.siblings.clear();
    assert_mutation_fires(7, &m);
}

#[test]
fn c008_inflated_probability_fires() {
    let mut m = base_model();
    m.factors.push(bad_factor());
    assert_mutation_fires(8, &m);
}

#[test]
fn c009_out_of_domain_entry_fires() {
    let mut m = base_model();
    m.sw = None; // isolate from C011's graph comparison
    m.clustering = None;
    m.mapping = None;
    m.influence = Some(InfluenceMatrix::Dense(Matrix::from_rows(2, 2, &[0.1, 1.5, 0.0, 0.2])));
    assert_mutation_fires(9, &m);
}

#[test]
fn c010_divergent_row_warns() {
    let mut m = base_model();
    m.sw = None;
    m.clustering = None;
    m.mapping = None;
    m.influence = Some(InfluenceMatrix::Dense(Matrix::from_rows(2, 2, &[0.6, 0.6, 0.1, 0.1])));
    let r = run_checks_with_threads(&m, 1);
    // The base model may carry the (milder) truncation-bound advisory,
    // so assert the row-sum divergence finding specifically.
    assert!(
        r.diagnostics
            .iter()
            .any(|d| d.code.0 == 10 && d.message.contains("row sum")),
        "divergent row must warn:\n{}",
        r.render()
    );
    assert_eq!(r.count(Severity::Error), 0, "divergence is a warning:\n{}", r.render());
}

#[test]
fn c011_stated_matrix_drift_fires() {
    let mut m = base_model();
    let g = m.sw.as_ref().expect("base model has a graph");
    let derived = Matrix::from_graph(g);
    let n = derived.rows();
    let mut data: Vec<f64> = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            data.push(derived.get(i, j).expect("in range"));
        }
    }
    data[1] = (data[1] + 0.5).min(1.0); // perturb entry (0,1), stay in [0,1]
    m.influence = Some(InfluenceMatrix::Dense(Matrix::from_rows(n, n, &data)));
    assert_mutation_fires(11, &m);
}

/// A dedicated two-replica model: `a0`/`a1` are replicas of one module,
/// each its own singleton cluster. Anti-affinity holds on distinct
/// nodes; the mutation co-hosts them.
fn replica_model(same_node: bool) -> SystemModel {
    let mut b = SwGraphBuilder::new();
    let a0 = b.add_process("a0", attrs(9).with_timing(0, 20, 2));
    let a1 = b.add_process("a1", attrs(9).with_timing(0, 20, 2));
    b.mark_replicas(&[a0, a1]).expect("replica marking");
    let g = b.build();
    let clustering = Clustering::singletons(&g);
    let hw = HwGraph::complete(2);
    let assignment = if same_node {
        vec![NodeIdx(0), NodeIdx(0)]
    } else {
        vec![NodeIdx(0), NodeIdx(1)]
    };
    SystemModel::new("replicas")
        .with_sw(g)
        .with_clustering(clustering)
        .with_mapping(Mapping::from_assignment(assignment), hw)
}

#[test]
fn c012_cohosted_replicas_fire() {
    assert!(!codes_of(&replica_model(false)).contains(&12));
    let codes = codes_of(&replica_model(true));
    assert!(codes.contains(&12), "co-hosted replicas must fire C012: {codes:?}");
    // Co-hosting per se is legal (degraded states): no other error fires.
    assert_eq!(codes, vec![12], "C012 must fire alone: {codes:?}");
}

#[test]
fn c013_missing_resource_and_capacity_fire() {
    // One process demanding a resource the platform lacks and more
    // throughput than its node's capacity.
    let mut b = SwGraphBuilder::new();
    b.add_process("gpuuser", attrs(5).with_timing(0, 20, 2).with_throughput(2.0));
    let mut g = b.build();
    g.node_mut(NodeIdx(0))
        .expect("node exists")
        .required_resources
        .insert("gpu".into());
    let clustering = Clustering::singletons(&g);
    let hw = HwGraph::new(vec![fcm_alloc::hw::HwNode::new("hw0").with_capacity(1.0)], &[]);
    let m = SystemModel::new("resources")
        .with_sw(g)
        .with_clustering(clustering)
        .with_mapping(Mapping::from_assignment(vec![NodeIdx(0)]), hw);
    let codes = codes_of(&m);
    assert!(codes.contains(&13), "expected C013: {codes:?}");
    let r = run_checks_with_threads(&m, 1);
    let messages: Vec<&str> = r.diagnostics.iter().map(|d| d.message.as_str()).collect();
    assert!(messages.iter().any(|t| t.contains("resource")), "{messages:?}");
    assert!(messages.iter().any(|t| t.contains("capacity")), "{messages:?}");
}

#[test]
fn c014_overloaded_node_fires() {
    let mut b = SwGraphBuilder::new();
    b.add_process("j1", attrs(5).with_timing(0, 4, 3));
    b.add_process("j2", attrs(5).with_timing(0, 4, 3));
    let g = b.build();
    let clustering = Clustering::singletons(&g);
    let hw = HwGraph::complete(2);
    let ok = SystemModel::new("edf")
        .with_sw(g.clone())
        .with_clustering(clustering.clone())
        .with_mapping(
            Mapping::from_assignment(vec![NodeIdx(0), NodeIdx(1)]),
            hw.clone(),
        );
    assert!(!codes_of(&ok).contains(&14), "spread placement is admissible");
    let overloaded = SystemModel::new("edf")
        .with_sw(g)
        .with_clustering(clustering)
        .with_mapping(Mapping::from_assignment(vec![NodeIdx(0), NodeIdx(0)]), hw);
    let codes = codes_of(&overloaded);
    assert_eq!(codes, vec![14], "co-hosted deadline conflict fires C014 alone: {codes:?}");
}

#[test]
fn c015_sheddable_protected_fcm_fires() {
    let mut b = SwGraphBuilder::new();
    let n = b.add_process("lowpin", attrs(1).with_timing(0, 20, 2));
    b.pin_to_hw(n, "hw0").expect("pin");
    let g = b.build();
    let m = SystemModel::new("shed")
        .with_sw(g)
        .with_shed(ShedPolicy::ShedBelow { critical_at: 3 });
    let codes = codes_of(&m);
    assert!(codes.contains(&15), "pinned low-criticality FCM must fire C015: {codes:?}");
    // The same node above the threshold is sound.
    let mut b = SwGraphBuilder::new();
    let n = b.add_process("highpin", attrs(5).with_timing(0, 20, 2));
    b.pin_to_hw(n, "hw0").expect("pin");
    let m = SystemModel::new("shed")
        .with_sw(b.build())
        .with_shed(ShedPolicy::ShedBelow { critical_at: 3 });
    assert!(!codes_of(&m).contains(&15));
}

#[test]
fn c016_zero_heartbeat_fires() {
    let mut m = base_model();
    if let Some(r) = &mut m.recovery {
        r.heartbeat_period = 0;
    }
    assert_mutation_fires(16, &m);
}

#[test]
fn c016_busy_loop_retry_fires() {
    let mut m = base_model();
    if let Some(r) = &mut m.recovery {
        r.max_retries = 3;
        r.backoff_base = 0;
    }
    assert_mutation_fires(16, &m);
}
