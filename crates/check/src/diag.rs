//! The diagnostics framework: stable codes, severities, model paths.
//!
//! Every finding the analyzer emits is a [`Diagnostic`]: a stable
//! [`Code`] (`C001`, `C002`, …— never renumbered once published), a
//! [`Severity`], a *model path* locating the finding inside the system
//! model (`hierarchy/task[7]`, `mapping/node[2]`, `influence/entry[3,4]`)
//! and a human-readable message. A [`Report`] collects the diagnostics
//! for one model, renders them for humans, and serialises to the
//! `fcm-check/v1` JSON schema for machines.
//!
//! Determinism contract: a report's diagnostics are sorted by
//! `(code, path, message)` before rendering or export, and every rule
//! generates its findings in a deterministic model order, so the byte
//! output is identical whatever thread count the engine fanned out to.

use std::fmt;

use fcm_substrate::{Json, ToJson};

/// A stable diagnostic code, rendered `C001`, `C002`, …
///
/// Codes identify *rules*, not occurrences: one run may emit many
/// diagnostics with the same code. Codes are never reused or renumbered
/// once published (the `srclint` source gate checks the catalog for
/// duplicates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Code(pub u16);

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "C{:03}", self.0)
    }
}

/// How severe a finding is.
///
/// `Error` findings make a model invalid: gates reject it and
/// `checktool` exits non-zero. `Warn` flags risky-but-legal designs
/// (e.g. a separation series close to its convergence bound). `Info` is
/// purely advisory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The model violates a hard rule; executing it is unsound.
    Error,
    /// Legal but suspicious; worth a human look.
    Warn,
    /// Advisory only.
    Info,
}

impl Severity {
    /// Lowercase name, as rendered and exported.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warn => "warn",
            Severity::Info => "info",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: code, severity, model path, message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The rule that fired.
    pub code: Code,
    /// How bad it is.
    pub severity: Severity,
    /// Where in the model, e.g. `hierarchy/task[7]` or `mapping/node[2]`.
    pub path: String,
    /// What is wrong, human-readable.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic.
    pub fn new(
        code: Code,
        severity: Severity,
        path: impl Into<String>,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            severity,
            path: path.into(),
            message: message.into(),
        }
    }

    /// An `Error`-severity diagnostic.
    pub fn error(code: Code, path: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(code, Severity::Error, path, message)
    }

    /// A `Warn`-severity diagnostic.
    pub fn warn(code: Code, path: impl Into<String>, message: impl Into<String>) -> Diagnostic {
        Diagnostic::new(code, Severity::Warn, path, message)
    }

    /// One rendered line: `error[C001] hierarchy/task[7]: message`.
    pub fn render(&self) -> String {
        format!("{}[{}] {}: {}", self.severity, self.code, self.path, self.message)
    }
}

impl ToJson for Diagnostic {
    fn to_json(&self) -> Json {
        Json::object()
            .set("code", self.code.to_string())
            .set("severity", self.severity.as_str())
            .set("path", self.path.as_str())
            .set("message", self.message.as_str())
    }
}

/// All diagnostics for one analysed model.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Report {
    /// Name of the analysed model.
    pub model: String,
    /// The findings, sorted by `(code, path, message)`.
    pub diagnostics: Vec<Diagnostic>,
}

impl Report {
    /// An empty report for `model`.
    pub fn new(model: impl Into<String>) -> Report {
        Report {
            model: model.into(),
            diagnostics: Vec::new(),
        }
    }

    /// Number of findings at `severity`.
    #[must_use]
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    /// Whether any `Error`-severity finding is present (= model invalid).
    #[must_use]
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// Restores the canonical `(code, path, message)` order.
    pub fn sort(&mut self) {
        self.diagnostics
            .sort_by(|a, b| (a.code, &a.path, &a.message).cmp(&(b.code, &b.path, &b.message)));
    }

    /// Renders the report for humans: one line per finding plus a
    /// summary line (`<model>: clean` when nothing fired).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        for d in &self.diagnostics {
            out.push_str(&d.render());
            out.push('\n');
        }
        let (e, w, i) = (
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info),
        );
        if self.diagnostics.is_empty() {
            out.push_str(&format!("{}: clean\n", self.model));
        } else {
            out.push_str(&format!(
                "{}: {e} error(s), {w} warning(s), {i} info\n",
                self.model
            ));
        }
        out
    }

    /// Just the `Error` lines, newline-joined — the payload pre-flight
    /// gates attach to their `PreflightFailed` errors.
    #[must_use]
    pub fn error_lines(&self) -> String {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == Severity::Error)
            .map(Diagnostic::render)
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl ToJson for Report {
    fn to_json(&self) -> Json {
        let counts = Json::object()
            .set("error", self.count(Severity::Error) as f64)
            .set("warn", self.count(Severity::Warn) as f64)
            .set("info", self.count(Severity::Info) as f64);
        Json::object()
            .set("schema", "fcm-check/v1")
            .set("model", self.model.as_str())
            .set("counts", counts)
            .set(
                "diagnostics",
                Json::Arr(self.diagnostics.iter().map(ToJson::to_json).collect()),
            )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_render_zero_padded() {
        assert_eq!(Code(1).to_string(), "C001");
        assert_eq!(Code(16).to_string(), "C016");
        assert_eq!(Code(123).to_string(), "C123");
    }

    #[test]
    fn report_sorts_by_code_then_path_then_message() {
        let mut r = Report::new("m");
        r.diagnostics.push(Diagnostic::error(Code(9), "b", "z"));
        r.diagnostics.push(Diagnostic::warn(Code(2), "c", "y"));
        r.diagnostics.push(Diagnostic::error(Code(9), "a", "x"));
        r.sort();
        let codes: Vec<_> = r.diagnostics.iter().map(|d| (d.code.0, d.path.as_str())).collect();
        assert_eq!(codes, vec![(2, "c"), (9, "a"), (9, "b")]);
    }

    #[test]
    fn render_reports_clean_models() {
        let r = Report::new("empty");
        assert_eq!(r.render(), "empty: clean\n");
        assert!(!r.has_errors());
    }

    #[test]
    fn json_export_carries_schema_counts_and_findings() {
        let mut r = Report::new("m");
        r.diagnostics.push(Diagnostic::error(Code(8), "factors[0]", "p > 1"));
        let j = r.to_json();
        assert_eq!(j.get("schema").and_then(Json::as_str), Some("fcm-check/v1"));
        assert_eq!(
            j.get("counts").and_then(|c| c.get("error")).and_then(Json::as_f64),
            Some(1.0)
        );
        let diags = j.get("diagnostics").and_then(Json::as_array).unwrap();
        assert_eq!(diags[0].get("code").and_then(Json::as_str), Some("C008"));
        assert_eq!(diags[0].get("severity").and_then(Json::as_str), Some("error"));
    }
}
