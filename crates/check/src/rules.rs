//! The rule catalog and the parallel check engine.
//!
//! Twenty-two rules, `C001`–`C022`, each a pure function over a
//! [`SystemModel`] that emits [`Diagnostic`]s for what it can see and
//! silently skips model parts that are absent. The catalog entry carries
//! the code, a short rule statement, the paper section it re-verifies
//! and the primary severity — DESIGN.md §8 renders this table verbatim
//! (the compositional `C017`–`C022` family is specified in §13).
//!
//! # Engine determinism
//!
//! [`run_checks`] fans the catalog across the substrate pool
//! ([`par_map_threads`] preserves input order) and then sorts the
//! flattened findings by `(code, path, message)`. Each rule iterates the
//! model in a fixed order, so the final report is byte-identical for
//! any `FCM_SWEEP_THREADS` value — the same contract the experiment
//! sweeps honour, and `crates/check/tests/check_props.rs` pins it.
//!
//! Per-rule spans (`check.c001`…) and the `check.diagnostics` /
//! `check.errors` counters flow through `fcm-obs` when observability is
//! enabled; like everywhere else, observations are never inputs.

use std::collections::{BTreeMap, BTreeSet};

use fcm_alloc::ShedPolicy;
use fcm_core::separation::DEFAULT_ORDER;
use fcm_graph::{InfluenceMatrix, Matrix, SparseMatrix};
use fcm_sched::{Admission, Job};
use fcm_substrate::pool::{par_map_threads, worker_count};

use crate::contract::{self, ContractSet};
use crate::diag::{Code, Diagnostic, Report, Severity};
use crate::model::{level_name, SystemModel};

/// One catalog entry: a rule with its stable code and provenance.
#[derive(Debug, Clone, Copy)]
pub struct CheckDef {
    /// Stable code (`C001`…). Never renumbered.
    pub code: Code,
    /// Short kebab-case rule name.
    pub name: &'static str,
    /// Span name used when observability is on.
    pub span: &'static str,
    /// One-line rule statement.
    pub rule: &'static str,
    /// Paper provenance (section / rule / equation).
    pub paper: &'static str,
    /// Primary severity of the rule's findings.
    pub severity: Severity,
    /// The rule body.
    pub run: fn(&SystemModel) -> Vec<Diagnostic>,
}

/// The full rule catalog, in code order.
pub const CATALOG: [CheckDef; 22] = [
    CheckDef {
        code: Code(1),
        name: "hierarchy-backlinks",
        span: "check.c001",
        rule: "parent and child links must agree in both directions",
        paper: "§2.2 R2",
        severity: Severity::Error,
        run: c001_backlinks,
    },
    CheckDef {
        code: Code(2),
        name: "level-step",
        span: "check.c002",
        rule: "every child sits exactly one ladder rank below its parent",
        paper: "§2.1 R1",
        severity: Severity::Error,
        run: c002_level_step,
    },
    CheckDef {
        code: Code(3),
        name: "tree-cycles",
        span: "check.c003",
        rule: "parent chains terminate at a root (the hierarchy is a forest)",
        paper: "§2.2 R2",
        severity: Severity::Error,
        run: c003_cycles,
    },
    CheckDef {
        code: Code(4),
        name: "shared-child",
        span: "check.c004",
        rule: "no FCM is listed as a child of two parents (or twice by one)",
        paper: "§2.2 R2",
        severity: Severity::Error,
        run: c004_shared_child,
    },
    CheckDef {
        code: Code(5),
        name: "orphan-fcm",
        span: "check.c005",
        rule: "every FCM is reachable from a top-rank root",
        paper: "§2.2",
        severity: Severity::Warn,
        run: c005_orphans,
    },
    CheckDef {
        code: Code(6),
        name: "criticality-monotonic",
        span: "check.c006",
        rule: "a parent's criticality is at least its most critical child's",
        paper: "§4.1 (attribute combination)",
        severity: Severity::Warn,
        run: c006_criticality,
    },
    CheckDef {
        code: Code(7),
        name: "retest-consistency",
        span: "check.c007",
        rule: "declared retest plans match the tree: parent + all siblings",
        paper: "§2.3 R5",
        severity: Severity::Error,
        run: c007_retest,
    },
    CheckDef {
        code: Code(8),
        name: "factor-domain",
        span: "check.c008",
        rule: "every p_k1·p_k2·p_k3 factor and SW edge influence lies in [0,1]",
        paper: "§3 Eq. 1",
        severity: Severity::Error,
        run: c008_factors,
    },
    CheckDef {
        code: Code(9),
        name: "influence-domain",
        span: "check.c009",
        rule: "the influence matrix is square with finite entries in [0,1]",
        paper: "§3",
        severity: Severity::Error,
        run: c009_matrix_domain,
    },
    CheckDef {
        code: Code(10),
        name: "series-truncation",
        span: "check.c010",
        rule: "the Eq. 3 separation series converges with bounded truncation error",
        paper: "§3.2 Eq. 3",
        severity: Severity::Warn,
        run: c010_truncation,
    },
    CheckDef {
        code: Code(11),
        name: "influence-consistency",
        span: "check.c011",
        rule: "the stated influence matrix equals the graph-derived one",
        paper: "§3 Eq. 2 / §4.2 Eq. 4",
        severity: Severity::Error,
        run: c011_consistency,
    },
    CheckDef {
        code: Code(12),
        name: "replica-anti-affinity",
        span: "check.c012",
        rule: "clusters hosting replicas of one module never share a HW node",
        paper: "§4.1 (0-weight edges)",
        severity: Severity::Error,
        run: c012_anti_affinity,
    },
    CheckDef {
        code: Code(13),
        name: "mapping-feasibility",
        span: "check.c013",
        rule: "mappings respect resources, pins and per-node capacity",
        paper: "§4.2–4.3",
        severity: Severity::Error,
        run: c013_feasibility,
    },
    CheckDef {
        code: Code(14),
        name: "edf-admission",
        span: "check.c014",
        rule: "timing triples are satisfiable and each node's job set is EDF-admissible",
        paper: "§4.2 Table 2",
        severity: Severity::Error,
        run: c014_admission,
    },
    CheckDef {
        code: Code(15),
        name: "shed-soundness",
        span: "check.c015",
        rule: "no protected FCM (replica, pinned, resource-bound) is sheddable",
        paper: "degraded mode (E14)",
        severity: Severity::Error,
        run: c015_shed,
    },
    CheckDef {
        code: Code(16),
        name: "recovery-sanity",
        span: "check.c016",
        rule: "watchdog, retry and checkpoint parameters are usable",
        paper: "recovery subsystem (E14)",
        severity: Severity::Error,
        run: c016_recovery,
    },
    CheckDef {
        code: Code(17),
        name: "contract-guarantee",
        span: "check.c017",
        rule: "every FCM's outgoing influence row sum is within its contracted guarantee",
        paper: "§6 R5 (rely-guarantee)",
        severity: Severity::Error,
        run: c017_guarantee,
    },
    CheckDef {
        code: Code(18),
        name: "contract-edge-cap",
        span: "check.c018",
        rule: "declared per-edge influence caps hold on the actual matrix entries",
        paper: "§3 Eq. 2",
        severity: Severity::Error,
        run: c018_edge_caps,
    },
    CheckDef {
        code: Code(19),
        name: "contract-rely",
        span: "check.c019",
        rule: "every rely is entailed by the other FCMs' guarantees and caps",
        paper: "§6 R5 (compositional discharge)",
        severity: Severity::Error,
        run: c019_relies,
    },
    CheckDef {
        code: Code(20),
        name: "contract-criticality-floor",
        span: "check.c020",
        rule: "an FCM's declared criticality reaches its contract floor",
        paper: "§4.1 (criticality attribute)",
        severity: Severity::Error,
        run: c020_floor,
    },
    CheckDef {
        code: Code(21),
        name: "contract-coverage",
        span: "check.c021",
        rule: "contracts cover exactly the model's FCMs: no gaps, no dangling names",
        paper: "§6 R5",
        severity: Severity::Warn,
        run: c021_coverage,
    },
    CheckDef {
        code: Code(22),
        name: "contract-certification",
        span: "check.c022",
        rule: "covering contracts certify a convergent Eq. 3 series (max guarantee < 1)",
        paper: "§3 Eq. 3",
        severity: Severity::Warn,
        run: c022_certification,
    },
];

/// Runs the whole catalog over `model`, fanning out across
/// `FCM_SWEEP_THREADS` threads (default: the pool worker count).
#[must_use]
pub fn run_checks(model: &SystemModel) -> Report {
    run_checks_with_threads(model, threads_from_env())
}

/// [`run_checks`] with an explicit thread count — what tests use to
/// compare fan-outs without racing on the environment.
#[must_use]
pub fn run_checks_with_threads(model: &SystemModel, threads: usize) -> Report {
    let _root = fcm_obs::span("check.run");
    let parent = fcm_obs::current_span();
    let idx: Vec<usize> = (0..CATALOG.len()).collect();
    let per_check = par_map_threads(&idx, threads, |&i| {
        let def = &CATALOG[i];
        let _s = fcm_obs::span_under(def.span, parent, Some(i as u64));
        (def.run)(model)
    });
    let mut report = Report::new(model.name.clone());
    for diags in per_check {
        report.diagnostics.extend(diags);
    }
    report.sort();
    fcm_obs::counter_add("check.diagnostics", report.diagnostics.len() as u64);
    fcm_obs::counter_add("check.errors", report.count(Severity::Error) as u64);
    report
}

/// `FCM_SWEEP_THREADS` (the sweep driver's variable governs the check
/// fan-out too); invalid, missing or zero values fall back to the pool
/// default.
fn threads_from_env() -> usize {
    match std::env::var("FCM_SWEEP_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => worker_count(),
    }
}

fn fmt_parent(p: Option<u64>) -> String {
    match p {
        Some(id) => format!("f{id}"),
        None => "none".to_string(),
    }
}

// C001 — bidirectional link consistency (R2).
fn c001_backlinks(m: &SystemModel) -> Vec<Diagnostic> {
    let Some(v) = &m.hierarchy else { return Vec::new() };
    let mut out = Vec::new();
    for n in &v.nodes {
        for &c in &n.children {
            match v.find(c) {
                None => out.push(Diagnostic::error(
                    Code(1),
                    v.path_of(n.id),
                    format!("{} lists missing child f{c}", n.name),
                )),
                Some(ch) if ch.parent != Some(n.id) => out.push(Diagnostic::error(
                    Code(1),
                    v.path_of(c),
                    format!(
                        "{} is listed as a child of {} but its parent link is {}",
                        ch.name,
                        n.name,
                        fmt_parent(ch.parent)
                    ),
                )),
                _ => {}
            }
        }
        if let Some(p) = n.parent {
            match v.find(p) {
                None => out.push(Diagnostic::error(
                    Code(1),
                    v.path_of(n.id),
                    format!("{} names missing parent f{p}", n.name),
                )),
                Some(pv) if !pv.children.contains(&n.id) => out.push(Diagnostic::error(
                    Code(1),
                    v.path_of(n.id),
                    format!("{} names parent {} which does not list it", n.name, pv.name),
                )),
                _ => {}
            }
        }
    }
    out
}

// C002 — single-rank level steps (R1).
fn c002_level_step(m: &SystemModel) -> Vec<Diagnostic> {
    let Some(v) = &m.hierarchy else { return Vec::new() };
    let mut out = Vec::new();
    for n in &v.nodes {
        for &c in &n.children {
            if let Some(ch) = v.find(c) {
                if ch.rank + 1 != n.rank {
                    out.push(Diagnostic::error(
                        Code(2),
                        v.path_of(c),
                        format!(
                            "{} ({}) sits under {} ({}): levels must step by exactly one",
                            ch.name,
                            level_name(ch.rank),
                            n.name,
                            level_name(n.rank)
                        ),
                    ));
                }
            }
        }
    }
    out
}

// C003 — parent chains terminate (no cycles).
fn c003_cycles(m: &SystemModel) -> Vec<Diagnostic> {
    let Some(v) = &m.hierarchy else { return Vec::new() };
    let mut reps: BTreeSet<u64> = BTreeSet::new();
    for start in &v.nodes {
        let mut walk = vec![start.id];
        let mut cur = start.parent;
        while let Some(p) = cur {
            if let Some(at) = walk.iter().position(|&x| x == p) {
                reps.insert(*walk[at..].iter().min().expect("non-empty cycle"));
                break;
            }
            walk.push(p);
            cur = v.find(p).and_then(|n| n.parent);
        }
    }
    reps.into_iter()
        .map(|id| {
            Diagnostic::error(
                Code(3),
                v.path_of(id),
                "parent chain forms a cycle instead of reaching a root".to_string(),
            )
        })
        .collect()
}

// C004 — a child belongs to exactly one parent.
fn c004_shared_child(m: &SystemModel) -> Vec<Diagnostic> {
    let Some(v) = &m.hierarchy else { return Vec::new() };
    let mut listings: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
    for n in &v.nodes {
        for &c in &n.children {
            listings.entry(c).or_default().push(n.id);
        }
    }
    listings
        .into_iter()
        .filter(|(_, parents)| parents.len() > 1)
        .map(|(c, parents)| {
            let names: Vec<String> = parents.iter().map(|&p| fmt_parent(Some(p))).collect();
            Diagnostic::error(
                Code(4),
                v.path_of(c),
                format!("listed as a child {} times (by {})", names.len(), names.join(", ")),
            )
        })
        .collect()
}

// C005 — unreachable FCMs and stray low-rank roots.
fn c005_orphans(m: &SystemModel) -> Vec<Diagnostic> {
    let Some(v) = &m.hierarchy else { return Vec::new() };
    if v.nodes.is_empty() {
        return Vec::new();
    }
    let top = v.top_rank();
    let mut out = Vec::new();
    let mut reachable: BTreeSet<u64> = BTreeSet::new();
    let mut queue: Vec<u64> = Vec::new();
    for n in &v.nodes {
        if n.parent.is_none() {
            reachable.insert(n.id);
            queue.push(n.id);
            if n.rank < top {
                out.push(Diagnostic::warn(
                    Code(5),
                    v.path_of(n.id),
                    format!(
                        "{} is a stray {}-level root (expected {} roots)",
                        n.name,
                        level_name(n.rank),
                        level_name(top)
                    ),
                ));
            }
        }
    }
    while let Some(id) = queue.pop() {
        if let Some(n) = v.find(id) {
            for &c in &n.children {
                if v.find(c).is_some() && reachable.insert(c) {
                    queue.push(c);
                }
            }
        }
    }
    for n in &v.nodes {
        if !reachable.contains(&n.id) {
            out.push(Diagnostic::warn(
                Code(5),
                v.path_of(n.id),
                format!("{} is unreachable from any root", n.name),
            ));
        }
    }
    out
}

// C006 — criticality combines upward by max; a parent below its most
// critical child under-declares the subtree.
fn c006_criticality(m: &SystemModel) -> Vec<Diagnostic> {
    let Some(v) = &m.hierarchy else { return Vec::new() };
    let mut out = Vec::new();
    for n in &v.nodes {
        let max_child = n
            .children
            .iter()
            .filter_map(|&c| v.find(c))
            .map(|c| c.criticality)
            .max();
        if let Some(mc) = max_child {
            if n.criticality < mc {
                out.push(Diagnostic::warn(
                    Code(6),
                    v.path_of(n.id),
                    format!(
                        "{} declares criticality {} below its most critical child ({mc})",
                        n.name, n.criticality
                    ),
                ));
            }
        }
    }
    out
}

// C007 — declared retest plans agree with the tree (R5).
fn c007_retest(m: &SystemModel) -> Vec<Diagnostic> {
    let Some(v) = &m.hierarchy else { return Vec::new() };
    let mut out = Vec::new();
    for r in &m.retest {
        let Some(n) = v.find(r.modified) else {
            out.push(Diagnostic::error(
                Code(7),
                format!("retest[{}]", r.modified),
                format!("retest plan refers to missing FCM f{}", r.modified),
            ));
            continue;
        };
        if r.parent != n.parent {
            out.push(Diagnostic::error(
                Code(7),
                v.path_of(n.id),
                format!(
                    "retest plan names parent {} but the tree says {}",
                    fmt_parent(r.parent),
                    fmt_parent(n.parent)
                ),
            ));
        }
        // Sibling comparison only makes sense on an intact link (broken
        // links are C001's finding, not a retest drift).
        let Some(pv) = n.parent.and_then(|p| v.find(p)) else { continue };
        if !pv.children.contains(&n.id) {
            continue;
        }
        let expected: BTreeSet<u64> =
            pv.children.iter().copied().filter(|&c| c != n.id).collect();
        let declared: BTreeSet<u64> = r.siblings.iter().copied().collect();
        for &missing in expected.difference(&declared) {
            out.push(Diagnostic::error(
                Code(7),
                v.path_of(n.id),
                format!(
                    "retest plan for {} omits sibling interface {}",
                    n.name,
                    fmt_parent(Some(missing))
                ),
            ));
        }
        for &extra in declared.difference(&expected) {
            out.push(Diagnostic::error(
                Code(7),
                v.path_of(n.id),
                format!(
                    "retest plan for {} lists {} which is not a sibling",
                    n.name,
                    fmt_parent(Some(extra))
                ),
            ));
        }
    }
    out
}

fn in_unit(v: f64) -> bool {
    v.is_finite() && (0.0..=1.0).contains(&v)
}

// C008 — Eq. 1 factor domain, plus SW edge influence domain.
fn c008_factors(m: &SystemModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, f) in m.factors.iter().enumerate() {
        let parts = [
            ("occurrence", f.occurrence),
            ("transmission", f.transmission),
            ("manifestation", f.manifestation),
        ];
        let mut parts_ok = true;
        for (label, v) in parts {
            if !in_unit(v) {
                parts_ok = false;
                out.push(Diagnostic::error(
                    Code(8),
                    format!("factors[{i}]"),
                    format!("{}→{}: {label} probability {v} outside [0,1]", f.from, f.to),
                ));
            }
        }
        if parts_ok && !in_unit(f.probability()) {
            out.push(Diagnostic::error(
                Code(8),
                format!("factors[{i}]"),
                format!("{}→{}: p_k = {} outside [0,1]", f.from, f.to, f.probability()),
            ));
        }
    }
    if let Some(g) = &m.sw {
        for (ei, e) in g.edges() {
            let w = e.weight.influence();
            let ok = match e.weight {
                fcm_alloc::sw::SwEdge::ReplicaLink => true,
                fcm_alloc::sw::SwEdge::Influence(_) => w.is_finite() && w > 0.0 && w <= 1.0,
            };
            if !ok {
                out.push(Diagnostic::error(
                    Code(8),
                    format!("sw/edge[{}]", ei.index()),
                    format!("influence {w} outside (0,1]"),
                ));
            }
        }
    }
    out
}

// C009 — stated influence matrix domain.
fn c009_matrix_domain(m: &SystemModel) -> Vec<Diagnostic> {
    let Some(mat) = &m.influence else { return Vec::new() };
    let mut out = Vec::new();
    if mat.rows() != mat.cols() {
        out.push(Diagnostic::error(
            Code(9),
            "influence".to_string(),
            format!("matrix is {}×{}, not square", mat.rows(), mat.cols()),
        ));
        return out;
    }
    match mat {
        InfluenceMatrix::Dense(d) => {
            for i in 0..d.rows() {
                for j in 0..d.cols() {
                    let v = d.get(i, j).expect("in range");
                    if !in_unit(v) {
                        out.push(Diagnostic::error(
                            Code(9),
                            format!("influence/entry[{i},{j}]"),
                            format!("entry {v} outside [0,1]"),
                        ));
                    }
                }
            }
        }
        // Stored entries row-major: unstored zeros are in-domain, so
        // the finding set (and its order) matches the dense scan.
        InfluenceMatrix::Sparse(s) => {
            for (i, j, v) in s.entries() {
                if !in_unit(v) {
                    out.push(Diagnostic::error(
                        Code(9),
                        format!("influence/entry[{i},{j}]"),
                        format!("entry {v} outside [0,1]"),
                    ));
                }
            }
        }
    }
    out
}

/// Threshold for the Eq. 3 truncation-error warning: the bound
/// `r^(order+1) / (1 − r)` on the dropped tail at `DEFAULT_ORDER`.
pub const TRUNCATION_BOUND: f64 = 1e-3;

// C010 — Eq. 3 convergence and truncation-error bound.
fn c010_truncation(m: &SystemModel) -> Vec<Diagnostic> {
    let Some(mat) = &m.influence else { return Vec::new() };
    if mat.rows() != mat.cols() || mat.rows() == 0 {
        return Vec::new(); // shape/domain problems are C009's findings
    }
    let mut out = Vec::new();
    let mut r_max = 0.0f64;
    let mut domain_ok = true;
    for i in 0..mat.rows() {
        // Per-row fold in ascending-column order for both
        // representations; a sparse row skips only exact zeros, which
        // add nothing to the sum and are always in-domain.
        let mut sum = 0.0;
        match mat {
            InfluenceMatrix::Dense(d) => {
                for j in 0..d.cols() {
                    let v = d.get(i, j).expect("in range");
                    if !in_unit(v) {
                        domain_ok = false;
                    }
                    sum += v;
                }
            }
            InfluenceMatrix::Sparse(s) => {
                let (_, vals) = s.row(i);
                for &v in vals {
                    if !in_unit(v) {
                        domain_ok = false;
                    }
                    sum += v;
                }
            }
        }
        if sum >= 1.0 {
            out.push(Diagnostic::warn(
                Code(10),
                format!("influence/row[{i}]"),
                format!(
                    "row sum {sum:.4} ≥ 1: the Eq. 3 separation series is not guaranteed to converge"
                ),
            ));
        }
        r_max = r_max.max(sum);
    }
    if domain_ok && out.is_empty() && r_max > 0.0 {
        let tail = r_max.powi(DEFAULT_ORDER as i32 + 1) / (1.0 - r_max);
        if tail > TRUNCATION_BOUND {
            out.push(Diagnostic::warn(
                Code(10),
                "influence".to_string(),
                format!(
                    "truncation error bound {tail:.2e} at order {DEFAULT_ORDER} exceeds {TRUNCATION_BOUND:.0e}"
                ),
            ));
        }
    }
    out
}

// C011 — the stated matrix must equal the Eq. 2 graph derivation.
fn c011_consistency(m: &SystemModel) -> Vec<Diagnostic> {
    let (Some(mat), Some(g)) = (&m.influence, &m.sw) else { return Vec::new() };
    let mut out = Vec::new();
    let n = g.node_count();
    if mat.rows() != n || mat.cols() != n {
        out.push(Diagnostic::error(
            Code(11),
            "influence".to_string(),
            format!("matrix is {}×{} but the SW graph has {n} nodes", mat.rows(), mat.cols()),
        ));
        return out;
    }
    let mismatch = |i: usize, j: usize, stated: f64, want: f64, out: &mut Vec<Diagnostic>| {
        if (stated - want).abs() > 1e-12 {
            out.push(Diagnostic::error(
                Code(11),
                format!("influence/entry[{i},{j}]"),
                format!("stated influence {stated} differs from graph-derived {want} (Eq. 2)"),
            ));
        }
    };
    match mat {
        InfluenceMatrix::Dense(d) => {
            let derived = Matrix::from_graph(g);
            for i in 0..n {
                for j in 0..n {
                    let stated = d.get(i, j).expect("in range");
                    let want = derived.get(i, j).expect("in range");
                    mismatch(i, j, stated, want, &mut out);
                }
            }
        }
        // O(nnz) union walk over the two sorted rows — a 50k-node
        // sparse model never materialises a dense n×n here. Columns in
        // neither row agree at 0 = 0, so the finding set (row-major,
        // ascending column) matches the dense scan exactly.
        InfluenceMatrix::Sparse(s) => {
            let derived = SparseMatrix::from_graph(g);
            for i in 0..n {
                let (sc, sv) = s.row(i);
                let (dc, dv) = derived.row(i);
                let (mut a, mut b) = (0, 0);
                while a < sc.len() || b < dc.len() {
                    let ja = sc.get(a).copied().unwrap_or(usize::MAX);
                    let jb = dc.get(b).copied().unwrap_or(usize::MAX);
                    if ja < jb {
                        mismatch(i, ja, sv[a], 0.0, &mut out);
                        a += 1;
                    } else if jb < ja {
                        mismatch(i, jb, 0.0, dv[b], &mut out);
                        b += 1;
                    } else {
                        mismatch(i, ja, sv[a], dv[b], &mut out);
                        a += 1;
                        b += 1;
                    }
                }
            }
        }
    }
    out
}

// C012 — replica anti-affinity of the mapping.
fn c012_anti_affinity(m: &SystemModel) -> Vec<Diagnostic> {
    let (Some(g), Some(c), Some(map)) = (&m.sw, &m.clustering, &m.mapping) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    for (a, b) in c.conflicting_pairs(g) {
        if let (Some(ha), Some(hb)) = (map.hw_of(a), map.hw_of(b)) {
            if ha == hb {
                out.push(Diagnostic::error(
                    Code(12),
                    format!("mapping/cluster[{a}]"),
                    format!(
                        "clusters {} and {} host replicas of one module but share hw{}",
                        c.cluster_name(g, a),
                        c.cluster_name(g, b),
                        ha.index()
                    ),
                ));
            }
        }
    }
    out
}

// C013 — resource, pin and capacity feasibility of the mapping.
//
// Deliberately no flat double-occupancy rule: co-hosting clusters is a
// legal degraded state (failover re-places victims onto survivors), so
// the binding constraints are capacity here, admission in C014 and
// anti-affinity in C012.
fn c013_feasibility(m: &SystemModel) -> Vec<Diagnostic> {
    let (Some(c), Some(map), Some(hw)) = (&m.clustering, &m.mapping, &m.hw) else {
        return Vec::new();
    };
    let mut out = Vec::new();
    if map.len() != c.len() {
        out.push(Diagnostic::error(
            Code(13),
            "mapping".to_string(),
            format!("mapping places {} clusters but the clustering has {}", map.len(), c.len()),
        ));
    }
    let mut demand: BTreeMap<usize, f64> = BTreeMap::new();
    for (ci, h) in map.iter() {
        let Some(node) = hw.node(h) else {
            out.push(Diagnostic::error(
                Code(13),
                format!("mapping/cluster[{ci}]"),
                format!("assigned to unknown hw node {}", h.index()),
            ));
            continue;
        };
        let Some(members) = c.clusters().get(ci) else { continue };
        if let Some(g) = &m.sw {
            for &sw in members {
                let Some(swn) = g.node(sw) else { continue };
                for req in &swn.required_resources {
                    if !node.resources.contains(req) {
                        out.push(Diagnostic::error(
                            Code(13),
                            format!("mapping/cluster[{ci}]"),
                            format!(
                                "{} requires resource '{req}' absent on {}",
                                swn.name, node.name
                            ),
                        ));
                    }
                }
                if let Some(pin) = &swn.pinned_to {
                    if pin != &node.name {
                        out.push(Diagnostic::error(
                            Code(13),
                            format!("mapping/cluster[{ci}]"),
                            format!("{} is pinned to {pin} but placed on {}", swn.name, node.name),
                        ));
                    }
                }
                *demand.entry(h.index()).or_insert(0.0) += swn.attributes.throughput.0;
            }
        }
    }
    for (h, d) in demand {
        if let Some(node) = hw.node(fcm_graph::NodeIdx(h)) {
            if d > node.capacity {
                out.push(Diagnostic::error(
                    Code(13),
                    format!("mapping/node[{h}]"),
                    format!(
                        "throughput demand {d:.2} exceeds capacity {:.2} of {}",
                        node.capacity, node.name
                    ),
                ));
            }
        }
    }
    out
}

// C014 — timing satisfiability and per-node EDF admission, reusing
// fcm-sched's exact incremental admission test.
fn c014_admission(m: &SystemModel) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut timing_ok = true;
    if let Some(g) = &m.sw {
        for (ni, n) in g.nodes() {
            if let Some(t) = n.attributes.timing {
                if !t.is_well_formed() {
                    timing_ok = false;
                    out.push(Diagnostic::error(
                        Code(14),
                        format!("sw/node[{}]", ni.index()),
                        format!(
                            "{}: timing ⟨{},{},{}⟩ is unsatisfiable in isolation",
                            n.name, t.est, t.tcd, t.ct
                        ),
                    ));
                }
            }
        }
    }
    let (Some(g), Some(c), Some(map)) = (&m.sw, &m.clustering, &m.mapping) else { return out };
    if !timing_ok {
        return out; // admission over broken triples would double-report
    }
    let mut per_node: BTreeMap<usize, Vec<Job>> = BTreeMap::new();
    for (ci, h) in map.iter() {
        let Some(members) = c.clusters().get(ci) else { continue };
        for &sw in members {
            let Some(swn) = g.node(sw) else { continue };
            if let Some(t) = swn.attributes.timing {
                per_node.entry(h.index()).or_default().push(t.to_job(sw.index() as u64));
            }
        }
    }
    for (h, jobs) in per_node {
        if !jobs.is_empty() && Admission::with_baseline(&jobs).is_none() {
            out.push(Diagnostic::error(
                Code(14),
                format!("mapping/node[{h}]"),
                format!("combined job set ({} jobs) is not EDF-admissible", jobs.len()),
            ));
        }
    }
    out
}

// C015 — degraded-mode shed soundness: a protected FCM must never fall
// below the shed threshold.
fn c015_shed(m: &SystemModel) -> Vec<Diagnostic> {
    let (Some(g), Some(policy)) = (&m.sw, &m.shed) else { return Vec::new() };
    let ShedPolicy::ShedBelow { critical_at } = *policy else { return Vec::new() };
    let mut out = Vec::new();
    for (ni, n) in g.nodes() {
        let mut protections = Vec::new();
        if n.replica_group.is_some() {
            protections.push("replicated");
        }
        if n.pinned_to.is_some() {
            protections.push("pinned");
        }
        if !n.required_resources.is_empty() {
            protections.push("resource-bound");
        }
        if !protections.is_empty() && n.attributes.criticality.0 < critical_at {
            out.push(Diagnostic::error(
                Code(15),
                format!("sw/node[{}]", ni.index()),
                format!(
                    "{} is {} yet sheddable (criticality {} < threshold {critical_at})",
                    n.name,
                    protections.join("+"),
                    n.attributes.criticality.0
                ),
            ));
        }
    }
    out
}

// C016 — recovery parameter sanity.
fn c016_recovery(m: &SystemModel) -> Vec<Diagnostic> {
    let Some(r) = &m.recovery else { return Vec::new() };
    let mut out = Vec::new();
    if r.heartbeat_period == 0 {
        out.push(Diagnostic::error(
            Code(16),
            "recovery/watchdog".to_string(),
            "heartbeat period 0: node failures are never detected".to_string(),
        ));
    } else if r.detection_latency >= r.heartbeat_period {
        out.push(Diagnostic::warn(
            Code(16),
            "recovery/watchdog".to_string(),
            format!(
                "detection latency {} is not below the heartbeat period {}",
                r.detection_latency, r.heartbeat_period
            ),
        ));
    }
    if r.max_retries > 0 && r.backoff_base == 0 {
        out.push(Diagnostic::error(
            Code(16),
            "recovery/retry".to_string(),
            format!("backoff base 0 with {} retries: restarts busy-loop", r.max_retries),
        ));
    }
    if r.checkpoint_every == 0 {
        out.push(Diagnostic::warn(
            Code(16),
            "recovery/checkpoint".to_string(),
            "checkpointing disabled: every restart loses all progress".to_string(),
        ));
    }
    out
}

// The C017–C022 compositional family: thin wrappers around the shared
// arithmetic in `crate::contract`, which the incremental `Certifier`
// also calls — so a cached serve-side verdict and a from-scratch rule
// run are bitwise-identical. None of these ever rebuilds a global walk
// series (srclint enforces the ban mechanically on the contract path).

/// The name/criticality/matrix view the contract rules share. `None`
/// when contracts, SW graph or matrix are absent, or when the matrix
/// shape disagrees with the graph — shape problems are C009/C011
/// findings, not ours.
fn contract_view(m: &SystemModel) -> Option<(Vec<String>, Vec<u32>, &InfluenceMatrix, &ContractSet)> {
    let (Some(g), Some(mat), Some(set)) = (&m.sw, &m.influence, &m.contracts) else {
        return None;
    };
    let n = g.node_count();
    if mat.rows() != n || mat.cols() != n {
        return None;
    }
    let names = g.nodes().map(|(_, node)| node.name.clone()).collect();
    let crits = g.nodes().map(|(_, node)| node.attributes.criticality.0).collect();
    Some((names, crits, mat, set))
}

// C017 — contracted guarantee vs the actual matrix row, O(degree) each.
fn c017_guarantee(m: &SystemModel) -> Vec<Diagnostic> {
    let Some((names, _, mat, set)) = contract_view(m) else { return Vec::new() };
    let mut out = Vec::new();
    for (i, name) in names.iter().enumerate() {
        if let Some(c) = set.get(name) {
            out.extend(contract::guarantee_diag(name, contract::row_sum(mat, i), c));
        }
    }
    out
}

// C018 — per-edge caps vs the actual matrix entries.
fn c018_edge_caps(m: &SystemModel) -> Vec<Diagnostic> {
    let Some((names, _, mat, set)) = contract_view(m) else { return Vec::new() };
    let index: BTreeMap<String, usize> =
        names.iter().enumerate().map(|(i, s)| (s.clone(), i)).collect();
    let mut out = Vec::new();
    for (i, name) in names.iter().enumerate() {
        if let Some(c) = set.get(name) {
            out.extend(contract::cap_diags(name, i, mat, &index, c));
        }
    }
    out
}

// C019 — relies entailed by the others' guarantees: pure contract
// arithmetic, meaningful only once the set covers the model.
fn c019_relies(m: &SystemModel) -> Vec<Diagnostic> {
    let Some((names, _, _, set)) = contract_view(m) else { return Vec::new() };
    if !contract::covers(&names, set) {
        return Vec::new(); // coverage gaps are C021's findings
    }
    contract::rely_diags(set)
}

// C020 — criticality floors.
fn c020_floor(m: &SystemModel) -> Vec<Diagnostic> {
    let Some((names, crits, _, set)) = contract_view(m) else { return Vec::new() };
    let mut out = Vec::new();
    for (i, name) in names.iter().enumerate() {
        if let Some(c) = set.get(name) {
            out.extend(contract::floor_diag(name, crits[i], c));
        }
    }
    out
}

// C021 — coverage: FCMs without contracts (warn) and contracts or caps
// naming absent FCMs (error).
fn c021_coverage(m: &SystemModel) -> Vec<Diagnostic> {
    let Some((names, _, _, set)) = contract_view(m) else { return Vec::new() };
    let index: BTreeMap<String, usize> =
        names.iter().enumerate().map(|(i, s)| (s.clone(), i)).collect();
    let mut out: Vec<Diagnostic> = names
        .iter()
        .filter(|n| set.get(n).is_none())
        .map(|n| contract::missing_diag(n))
        .collect();
    out.extend(contract::dangling_diags(&index, set));
    out
}

// C022 — the certified system bound from contracts alone.
fn c022_certification(m: &SystemModel) -> Vec<Diagnostic> {
    let Some((names, _, _, set)) = contract_view(m) else { return Vec::new() };
    if !contract::covers(&names, set) {
        return Vec::new();
    }
    let bound = contract::certified_bound(set, DEFAULT_ORDER);
    contract::convergence_diag(&bound).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_codes_are_unique_and_ordered() {
        let codes: Vec<u16> = CATALOG.iter().map(|d| d.code.0).collect();
        let mut sorted = codes.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(codes.len(), sorted.len(), "duplicate code in catalog");
        assert_eq!(codes, sorted, "catalog must be in code order");
        assert!(CATALOG.len() >= 12, "the issue demands at least 12 checks");
    }

    #[test]
    fn every_rule_has_a_matching_obs_span() {
        // The engine opens `def.span` around every rule body, so per-rule
        // timing coverage (including C017–C022) is exactly this naming
        // contract: one span per code, `check.cNNN`.
        for def in &CATALOG {
            assert_eq!(def.span, format!("check.c{:03}", def.code.0), "{}", def.name);
        }
    }

    #[test]
    fn empty_model_is_clean() {
        let m = SystemModel::new("empty");
        let r = run_checks_with_threads(&m, 1);
        assert!(r.diagnostics.is_empty(), "{}", r.render());
    }

    #[test]
    fn matrix_rules_agree_across_representations() {
        use fcm_graph::SparseMatrix;
        // Out-of-domain entry (C009) + row sum ≥ 1 (C010) in one matrix.
        let bad = Matrix::from_rows(2, 2, &[0.0, 1.5, 0.2, 0.0]);
        let dense = SystemModel::new("d").with_influence(bad.clone());
        let sparse = SystemModel::new("s")
            .with_influence_matrix(InfluenceMatrix::Sparse(SparseMatrix::from_dense(&bad)));
        for rule in [c009_matrix_domain, c010_truncation] {
            let (d, s) = (rule(&dense), rule(&sparse));
            assert_eq!(d.len(), s.len());
            for (x, y) in d.iter().zip(&s) {
                assert_eq!(x.path, y.path);
                assert_eq!(x.message, y.message);
            }
        }
        assert!(!c009_matrix_domain(&dense).is_empty());
        assert!(!c010_truncation(&dense).is_empty());
    }

    #[test]
    fn c011_sparse_union_walk_finds_all_mismatch_kinds() {
        use fcm_alloc::sw::SwGraphBuilder;
        use fcm_graph::SparseMatrix;
        let mut b = SwGraphBuilder::new();
        let x = b.add_process("x", Default::default());
        let y = b.add_process("y", Default::default());
        b.add_influence(x, y, 0.4).unwrap();
        let g = b.build();
        // Stated has an extra entry (1,0), a wrong entry (0,1), and is
        // missing nothing — the union walk must flag both.
        let stated = Matrix::from_rows(2, 2, &[0.0, 0.9, 0.3, 0.0]);
        let m = SystemModel::new("s")
            .with_influence_matrix(InfluenceMatrix::Sparse(SparseMatrix::from_dense(&stated)))
            .with_sw(g.clone());
        let diags = c011_consistency(&m);
        let sites: Vec<&str> = diags.iter().map(|d| d.path.as_str()).collect();
        assert_eq!(sites, ["influence/entry[0,1]", "influence/entry[1,0]"]);
        // The dense scan of the same model agrees.
        let dm = SystemModel::new("d").with_influence(stated).with_sw(g);
        let dense_sites: Vec<String> =
            c011_consistency(&dm).iter().map(|d| d.path.clone()).collect();
        assert_eq!(dense_sites, sites);
        // A derived-only entry (stated row empty) is also caught.
        let empty = SystemModel::new("e")
            .with_influence_matrix(InfluenceMatrix::Sparse(SparseMatrix::empty(2, 2)))
            .with_sw(dm.sw.clone().unwrap());
        let d2 = c011_consistency(&empty);
        assert_eq!(d2.len(), 1);
        assert_eq!(d2[0].path, "influence/entry[0,1]");
    }
}
