//! `fcm-check` — design-time static analyzer for DDSI system models.
//!
//! The paper is a *design-time* framework: composition rules R1–R5, the
//! Eq. 1–4 interaction metrics and the allocation constraints are all
//! meant to be checked before anything runs. The construction APIs in
//! `fcm-core`/`fcm-alloc` enforce many of these invariants locally, but
//! a whole model assembled from parts (hierarchy + influence matrix +
//! mapping + recovery spec) can still be inconsistent — and imported or
//! hand-edited models can be arbitrarily broken. This crate analyses a
//! complete [`model::SystemModel`] **without executing anything** and
//! emits structured [`diag::Diagnostic`]s.
//!
//! * [`diag`] — codes (`C001`…), severities, model paths, `ToJson`
//!   machine output and a human renderer;
//! * [`model`] — plain-data views able to represent broken models;
//! * [`rules`] — the 22-rule catalog and the deterministic parallel
//!   engine ([`rules::run_checks`]);
//! * [`contract`] — per-FCM rely-guarantee contracts and the
//!   compositional C017–C022 rule family's shared arithmetic;
//! * [`certify`] — the incremental [`certify::Certifier`] with its
//!   (row-hash, contract-hash)-keyed verdict cache;
//! * [`gates`] — pre-flight hooks into `fcm-alloc::pipeline` and
//!   `fcm-sim` setup ([`gates::install`]).
//!
//! The check catalog is documented as a table in DESIGN.md §8 (contracts
//! in §13); the `checktool` and `repro --check` binaries in
//! `crates/bench` run it over every committed experiment workload.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod certify;
pub mod contract;
pub mod diag;
pub mod gates;
pub mod model;
pub mod rules;

pub use certify::{CertView, Certification, Certifier, Dirty};
pub use contract::{CertifiedBound, Contract, ContractSet, CONTRACTS_SCHEMA};
pub use diag::{Code, Diagnostic, Report, Severity};
pub use model::{FactorView, FcmNodeView, HierarchyView, RecoveryView, RetestView, SystemModel};
pub use rules::{run_checks, run_checks_with_threads, CheckDef, CATALOG};
