//! The incremental [`Certifier`]: cached compositional certification.
//!
//! A full certification pass verifies every FCM's contract against its
//! matrix row (C017/C018/C020, O(degree) each, sharded over the
//! substrate pool) and then discharges the global obligations
//! (C019/C021/C022) from the per-FCM summaries. The certifier caches
//! each per-FCM verdict keyed by **(state hash, contract hash)** — the
//! state hash folds [`InfluenceMatrix::row_hash`], the FCM's name and
//! its criticality; the contract hash is [`Contract::fingerprint`] — so
//! after a single-FCM edit only the dirty rows are re-verified and the
//! global phase re-runs in O(n) float arithmetic: O(degree), not O(n²).
//!
//! # Determinism
//!
//! A cached verdict is only ever the bitwise-identical output of the
//! same pure per-FCM function, and the global phase is one fixed fold
//! over the verdict table, so an incremental pass produces a report and
//! bound bitwise-equal to a from-scratch pass
//! (`crates/check/tests/contract_props.rs` pins this over random
//! mutation sequences). The hidden-recompute ban is mechanical: srclint
//! rejects any call that rebuilds a global series on this path.

use std::collections::BTreeMap;

use fcm_core::separation::DEFAULT_ORDER;
use fcm_graph::{fnv, InfluenceMatrix};
use fcm_substrate::pool::{par_map_threads, worker_count};

use crate::contract::{
    cap_diags, certified_bound, convergence_diag, covers, floor_diag, guarantee_diag,
    missing_diag, rely_diags, row_sum, CertifiedBound, ContractSet,
};
use crate::diag::{Diagnostic, Report, Severity};

/// Everything a certification pass reads, borrowed from the caller.
/// `names[i]` and `crits[i]` describe the FCM behind matrix row `i`.
#[derive(Debug, Clone, Copy)]
pub struct CertView<'a> {
    /// Report/model name.
    pub model: &'a str,
    /// FCM names in matrix row order.
    pub names: &'a [String],
    /// Declared criticalities in matrix row order.
    pub crits: &'a [u32],
    /// The influence matrix (either representation).
    pub influence: &'a InfluenceMatrix,
    /// The contract set to certify against.
    pub contracts: &'a ContractSet,
}

/// Which FCMs may have changed since the previous pass.
#[derive(Debug, Clone, Copy)]
pub enum Dirty<'a> {
    /// Hash every row; reuse whatever verdicts still match. Required
    /// after any structural change (FCM added/removed/renamed).
    Full,
    /// Only these rows are re-hashed and re-verified; every other
    /// cached verdict is trusted as-is. The caller must list every FCM
    /// whose row, criticality or contract changed.
    Rows(&'a [usize]),
}

/// One cached per-FCM verdict.
#[derive(Debug, Clone, PartialEq)]
struct Verdict {
    state_hash: u64,
    contract_hash: u64,
    row_sum: f64,
    diags: Vec<Diagnostic>,
}

/// Fingerprint of "no contract" — distinct from every real fingerprint
/// because [`Contract::fingerprint`] always folds a name.
///
/// [`Contract::fingerprint`]: crate::contract::Contract::fingerprint
const NO_CONTRACT: u64 = 0;

/// The result of one certification pass.
#[derive(Debug, Clone)]
pub struct Certification {
    /// Every finding, `(code, path, message)`-sorted like any report.
    pub report: Report,
    /// The contract-derived system bound (meaningful when `certified`).
    pub bound: CertifiedBound,
    /// Whether the set covers the model, converges, and nothing fails:
    /// the bound then holds on the real system.
    pub certified: bool,
    /// Per-FCM verdicts recomputed this pass (the dirty set size).
    pub verified: usize,
    /// Per-FCM verdicts served from cache.
    pub reused: usize,
}

/// The incremental certifier. Holds the verdict cache between passes;
/// everything in it is derived state, rebuildable from any
/// [`CertView`] — it is never serialized.
#[derive(Debug, Clone, Default)]
pub struct Certifier {
    verdicts: Vec<Verdict>,
    /// Name → row index, cached across passes (rebuilding it is the
    /// dominant O(n) cost at fleet scale) and invalidated by a
    /// fingerprint of the full name list — the index is a pure function
    /// of `view.names`, so reusing it preserves bitwise equivalence
    /// with a from-scratch pass.
    index: BTreeMap<String, usize>,
    names_fp: Option<u64>,
}

fn state_hash(name: &str, crit: u32, row: u64) -> u64 {
    fnv::word(fnv::word(fnv::text(fnv::OFFSET, name), u64::from(crit)), row)
}

/// Order-sensitive fingerprint of the FCM name list (length markers
/// keep `["ab","c"]` distinct from `["a","bc"]`).
fn names_fingerprint(names: &[String]) -> u64 {
    names
        .iter()
        .fold(fnv::OFFSET, |h, s| fnv::word(fnv::text(h, s), s.len() as u64))
}

/// Computes one per-FCM verdict: C017 + C018 + C020 (+ the C021
/// missing-contract warning) for row `i`. O(degree of i).
fn verify_one(view: &CertView, index: &BTreeMap<String, usize>, i: usize, hashes: (u64, u64)) -> Verdict {
    let name = &view.names[i];
    let sum = row_sum(view.influence, i);
    let mut diags = Vec::new();
    match view.contracts.get(name) {
        Some(c) => {
            diags.extend(guarantee_diag(name, sum, c));
            diags.extend(cap_diags(name, i, view.influence, index, c));
            diags.extend(floor_diag(name, view.crits[i], c));
        }
        None => diags.push(missing_diag(name)),
    }
    Verdict { state_hash: hashes.0, contract_hash: hashes.1, row_sum: sum, diags }
}

impl Certifier {
    /// A certifier with an empty cache.
    #[must_use]
    pub fn new() -> Certifier {
        Certifier::default()
    }

    /// Drops every cached verdict and the name index (the next pass
    /// re-verifies all FCMs).
    pub fn invalidate(&mut self) {
        self.verdicts.clear();
        self.index.clear();
        self.names_fp = None;
    }

    /// Runs one certification pass over `view`, re-verifying the FCMs
    /// `dirty` names (or all of them) and reusing cached verdicts for
    /// the rest, sharded over `threads` pool workers on the full path.
    ///
    /// Skipping the contracts entirely (an empty set on an empty name
    /// list) yields an empty, certified-by-vacuity report — the serve
    /// layer relies on this for models without contracts.
    pub fn certify(&mut self, view: &CertView, dirty: Dirty, threads: usize) -> Certification {
        let n = view.names.len();
        assert_eq!(view.crits.len(), n, "one criticality per FCM");
        let fp = names_fingerprint(view.names);
        if self.names_fp != Some(fp) {
            self.index = view.names.iter().enumerate().map(|(i, s)| (s.clone(), i)).collect();
            self.names_fp = Some(fp);
        }

        let structural = self.verdicts.len() != n;
        let rows: Vec<usize> = match dirty {
            Dirty::Full => (0..n).collect(),
            Dirty::Rows(_) if structural => (0..n).collect(),
            Dirty::Rows(r) => r.iter().copied().filter(|&i| i < n).collect(),
        };
        if structural {
            self.verdicts.clear();
        }

        let mut verified = 0;
        let (index, verdicts) = (&self.index, &self.verdicts);
        let fresh: Vec<(usize, Option<Verdict>)> = par_map_threads(&rows, threads, |&i| {
            let sh = state_hash(&view.names[i], view.crits[i], view.influence.row_hash(i));
            let ch = view.contracts.get(&view.names[i]).map_or(NO_CONTRACT, |c| c.fingerprint());
            let hit = verdicts
                .get(i)
                .is_some_and(|v| v.state_hash == sh && v.contract_hash == ch);
            (i, (!hit).then(|| verify_one(view, index, i, (sh, ch))))
        });
        for (i, verdict) in fresh {
            if let Some(v) = verdict {
                verified += 1;
                if i < self.verdicts.len() {
                    self.verdicts[i] = v;
                } else {
                    debug_assert_eq!(i, self.verdicts.len(), "rows fill in order on a full pass");
                    self.verdicts.push(v);
                }
            }
        }
        let reused = n - verified;

        // Global phase: one fixed fold over the verdict table and the
        // contract set — recomputed every pass, so incremental and
        // from-scratch certifications agree bitwise by construction.
        let mut report = Report::new(view.model);
        for v in &self.verdicts {
            report.diagnostics.extend(v.diags.iter().cloned());
        }
        let (dangling, names_resolved) = crate::contract::dangling_scan(index, view.contracts);
        report.diagnostics.extend(dangling);
        // Length-matched injection into the name set ⇒ bijection ⇒
        // exactly `covers(view.names, view.contracts)`, in O(n).
        let covered = view.contracts.len() == n && names_resolved;
        debug_assert_eq!(covered, covers(view.names, view.contracts));
        let bound = certified_bound(view.contracts, DEFAULT_ORDER);
        if covered {
            report.diagnostics.extend(rely_diags(view.contracts));
            report.diagnostics.extend(convergence_diag(&bound));
        }
        report.sort();
        let clean = !report.diagnostics.iter().any(|d| d.severity == Severity::Error);
        Certification {
            certified: covered && bound.converges && clean,
            report,
            bound,
            verified,
            reused,
        }
    }

    /// [`Certifier::certify`] with the default pool width — what the
    /// offline tools use; the serve layer passes 1 (it certifies inside
    /// its own writer thread).
    pub fn certify_pooled(&mut self, view: &CertView, dirty: Dirty) -> Certification {
        self.certify(view, dirty, worker_count())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::contract::{synthesize, Contract};
    use fcm_graph::Matrix;

    fn fixture() -> (Vec<String>, Vec<u32>, InfluenceMatrix) {
        let mut m = Matrix::zeros(3, 3);
        m[(0, 1)] = 0.3;
        m[(1, 2)] = 0.2;
        m[(2, 0)] = 0.1;
        let names = ["a", "b", "c"].map(String::from).to_vec();
        (names, vec![5, 4, 3], InfluenceMatrix::Dense(m))
    }

    #[test]
    fn synthesized_contracts_certify_and_cache_hits_accumulate() {
        let (names, crits, influence) = fixture();
        let contracts = synthesize(&names, &crits, &influence);
        let view = CertView {
            model: "t",
            names: &names,
            crits: &crits,
            influence: &influence,
            contracts: &contracts,
        };
        let mut cert = Certifier::new();
        let first = cert.certify(&view, Dirty::Full, 1);
        assert!(first.certified, "{}", first.report.render());
        assert_eq!((first.verified, first.reused), (3, 0));
        let second = cert.certify(&view, Dirty::Full, 1);
        assert_eq!((second.verified, second.reused), (0, 3));
        assert_eq!(second.report.render(), first.report.render());
        let third = cert.certify(&view, Dirty::Rows(&[1]), 1);
        assert_eq!((third.verified, third.reused), (0, 3));
    }

    #[test]
    fn dirty_row_reverifies_and_matches_from_scratch() {
        let (names, crits, mut influence) = fixture();
        let contracts = synthesize(&names, &crits, &influence);
        let mut warm = Certifier::new();
        warm.certify(
            &CertView {
                model: "t",
                names: &names,
                crits: &crits,
                influence: &influence,
                contracts: &contracts,
            },
            Dirty::Full,
            1,
        );
        // Push row 0 past its guarantee.
        influence.set_row_col(0, &[0.0, 0.9, 0.4], &[0.0, 0.0, 0.1]);
        let view = CertView {
            model: "t",
            names: &names,
            crits: &crits,
            influence: &influence,
            contracts: &contracts,
        };
        let inc = warm.certify(&view, Dirty::Rows(&[0]), 1);
        assert_eq!(inc.verified, 1, "only the dirty row is re-verified");
        assert!(!inc.certified);
        let scratch = Certifier::new().certify(&view, Dirty::Full, 4);
        assert_eq!(inc.report.render(), scratch.report.render());
        assert_eq!(
            inc.bound.influence_bound.to_bits(),
            scratch.bound.influence_bound.to_bits()
        );
        assert!(inc.report.render().contains("C017"));
    }

    #[test]
    fn partial_coverage_warns_but_does_not_certify_or_block() {
        let (names, crits, influence) = fixture();
        let mut contracts = ContractSet::new();
        contracts.insert(Contract::new("a", 0.5, 1.0, 1));
        let view = CertView {
            model: "t",
            names: &names,
            crits: &crits,
            influence: &influence,
            contracts: &contracts,
        };
        let out = Certifier::new().certify(&view, Dirty::Full, 1);
        assert!(!out.certified);
        assert!(!out.report.has_errors(), "{}", out.report.render());
        assert_eq!(out.report.count(Severity::Warn), 2, "{}", out.report.render());
    }
}
