//! Pre-flight gates: wiring the analyzer into the build pipelines.
//!
//! `fcm-check` depends on `fcm-alloc` and `fcm-sim`, so those crates
//! cannot call it directly — the dependency would be circular. Instead
//! they expose function-pointer hooks (the same pattern the substrate
//! pool uses for its observability counters): [`install`] plugs
//! [`alloc_preflight`] into [`fcm_alloc::pipeline::set_preflight`] and
//! [`sim_preflight`] into [`fcm_sim::model::set_preflight`]. From then
//! on every [`fcm_alloc::CondensePipeline::run_policy`] run and every
//! [`fcm_sim::SystemSpecBuilder::build`] re-validates its input and
//! fails fast with the rendered `Error` diagnostics when the model is
//! unsound. Binaries treat a gate rejection as a usage-class failure
//! (exit 2): the run never started.
//!
//! While no gate is installed the hooks cost one relaxed atomic load —
//! default behaviour and performance are unchanged.

use fcm_alloc::SwGraph;
use fcm_sim::SystemSpec;

use crate::diag::{Code, Diagnostic, Report};
use crate::model::SystemModel;
use crate::rules::run_checks_with_threads;

/// Analyses a bare SW graph (the alloc pipeline's input): edge
/// influence domains (C008), timing satisfiability (C014).
#[must_use]
pub fn check_sw_graph(g: &SwGraph) -> Report {
    let model = SystemModel {
        name: "alloc.preflight".to_string(),
        sw: Some(g.clone()),
        ..SystemModel::default()
    };
    // Single-threaded: the gate runs inline inside the caller's own
    // (possibly pooled) work, so nesting another fan-out buys nothing.
    run_checks_with_threads(&model, 1)
}

/// Analyses a fully-placed live model — SW graph plus a concrete
/// clustering/mapping and shed policy — with the whole allocation rule
/// set (anti-affinity C012, capacity, shed-line C015, …). The query
/// adapter behind the serve layer's `check` op: long-running services
/// assemble the view here instead of duplicating model plumbing.
#[must_use]
pub fn check_placed_model(
    name: &str,
    g: &SwGraph,
    clustering: fcm_alloc::Clustering,
    mapping: fcm_alloc::Mapping,
    hw: fcm_alloc::HwGraph,
    shed: fcm_alloc::ShedPolicy,
) -> Report {
    let model = SystemModel::new(name)
        .with_sw(g.clone())
        .with_clustering(clustering)
        .with_mapping(mapping, hw)
        .with_shed(shed);
    run_checks_with_threads(&model, 1)
}

/// Analyses a built [`SystemSpec`] (the simulator's input) without
/// executing it: per-processor utilisation and recovery parameters.
#[must_use]
pub fn check_system_spec(spec: &SystemSpec) -> Report {
    let mut report = Report::new("sim.preflight");
    for p in 0..spec.processors {
        let u = spec.utilisation(p);
        if u > 1.0 {
            report.diagnostics.push(Diagnostic::error(
                Code(14),
                format!("spec/processor[{p}]"),
                format!("periodic utilisation {u:.3} exceeds 1.0: EDF cannot schedule it"),
            ));
        }
    }
    // Same paths as the catalog's C016 rule (`recovery/...`): one code
    // renders one path family wherever it fires, so reports from the
    // gate and the full engine sort and diff identically.
    if let Some(w) = &spec.watchdog {
        if w.heartbeat_period == 0 {
            report.diagnostics.push(Diagnostic::error(
                Code(16),
                "recovery/watchdog".to_string(),
                "heartbeat period 0: node failures are never detected".to_string(),
            ));
        }
    }
    if let Some(r) = &spec.retry {
        if r.max_retries > 0 && r.backoff_base == 0 {
            report.diagnostics.push(Diagnostic::error(
                Code(16),
                "recovery/retry".to_string(),
                format!("backoff base 0 with {} retries: restarts busy-loop", r.max_retries),
            ));
        }
    }
    report.sort();
    report
}

/// The alloc-pipeline hook body: reject SW graphs with `Error` findings.
///
/// # Errors
///
/// The rendered `Error` diagnostic lines, one per line.
pub fn alloc_preflight(g: &SwGraph) -> Result<(), String> {
    let report = check_sw_graph(g);
    if report.has_errors() {
        Err(report.error_lines())
    } else {
        Ok(())
    }
}

/// The simulator hook body: reject system specs with `Error` findings.
///
/// # Errors
///
/// The rendered `Error` diagnostic lines, one per line.
pub fn sim_preflight(spec: &SystemSpec) -> Result<(), String> {
    let report = check_system_spec(spec);
    if report.has_errors() {
        Err(report.error_lines())
    } else {
        Ok(())
    }
}

/// Installs both pre-flight gates process-wide.
pub fn install() {
    fcm_alloc::pipeline::set_preflight(Some(alloc_preflight));
    fcm_sim::model::set_preflight(Some(sim_preflight));
}

/// Removes both gates (tests that need an ungated pipeline).
pub fn uninstall() {
    fcm_alloc::pipeline::set_preflight(None);
    fcm_sim::model::set_preflight(None);
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcm_sim::model::SystemSpecBuilder;

    #[test]
    fn spec_gate_flags_overutilised_processors() {
        let mut b = SystemSpecBuilder::new(1);
        b.task("t0", 0).periodic(10, 0, 7).build().unwrap();
        b.task("t1", 0).periodic(10, 0, 7).build().unwrap();
        let spec = b.build().unwrap();
        let r = check_system_spec(&spec);
        assert!(r.has_errors());
        assert!(r.error_lines().contains("utilisation"), "{}", r.error_lines());
    }

    #[test]
    fn spec_gate_accepts_a_feasible_spec() {
        let mut b = SystemSpecBuilder::new(1);
        b.task("t0", 0).periodic(10, 0, 4).build().unwrap();
        let spec = b.build().unwrap();
        assert!(!check_system_spec(&spec).has_errors());
    }
}
