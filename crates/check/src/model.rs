//! The analyzable system model: raw views over every design artefact.
//!
//! The construction APIs in `fcm-core` and `fcm-alloc` enforce their
//! invariants *by construction* — an [`FcmHierarchy`] cannot hold a
//! level-skipping edge, a [`Clustering`] rejects replica conflicts. A
//! static analyzer is only useful if it can also *represent* broken
//! models (imported from a design tool, hand-edited, drifted across
//! refactors), so [`SystemModel`] is built from plain-data **views**:
//! every field is public, nothing is validated on construction, and all
//! judgement is deferred to the rule catalog in [`crate::rules`].
//!
//! Views are extracted from the real types ([`HierarchyView::from`] an
//! `&FcmHierarchy`, [`RecoveryView`] from a recovery spec's fields) or
//! assembled directly in tests to describe a deliberately broken model.

use fcm_alloc::{Clustering, HwGraph, Mapping, ShedPolicy, SwGraph};
use fcm_core::{FcmHierarchy, HierarchyLevel};
use fcm_graph::{InfluenceMatrix, Matrix};

use crate::contract::ContractSet;

/// One FCM as the analyzer sees it: plain data, no invariants.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FcmNodeView {
    /// Identifier (the arena index of the source hierarchy).
    pub id: u64,
    /// Display name.
    pub name: String,
    /// Ladder rank: 0 = procedure (leaf), 1 = task, 2 = process.
    pub rank: usize,
    /// Declared parent, if any.
    pub parent: Option<u64>,
    /// Declared children.
    pub children: Vec<u64>,
    /// Criticality attribute (for the monotonicity rule).
    pub criticality: u32,
}

/// The rank-to-name mapping used in model paths (`hierarchy/task[7]`).
#[must_use]
pub fn level_name(rank: usize) -> String {
    match rank {
        0 => "procedure".to_string(),
        1 => "task".to_string(),
        2 => "process".to_string(),
        r => format!("level{r}"),
    }
}

/// A whole FCM tree (or forest) as plain data.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HierarchyView {
    /// Every FCM, in id order.
    pub nodes: Vec<FcmNodeView>,
}

impl HierarchyView {
    /// Looks a node up by id.
    #[must_use]
    pub fn find(&self, id: u64) -> Option<&FcmNodeView> {
        self.nodes.iter().find(|n| n.id == id)
    }

    /// The model path of node `id`, e.g. `hierarchy/task[7]`. Unknown
    /// ids render as `hierarchy/fcm[id]`.
    #[must_use]
    pub fn path_of(&self, id: u64) -> String {
        match self.find(id) {
            Some(n) => format!("hierarchy/{}[{}]", level_name(n.rank), id),
            None => format!("hierarchy/fcm[{id}]"),
        }
    }

    /// The top rank present (roots should live there).
    #[must_use]
    pub fn top_rank(&self) -> usize {
        self.nodes.iter().map(|n| n.rank).max().unwrap_or(0)
    }
}

impl From<&FcmHierarchy> for HierarchyView {
    fn from(h: &FcmHierarchy) -> HierarchyView {
        let nodes = h
            .iter()
            .map(|f| FcmNodeView {
                id: f.id().0,
                name: f.name().to_string(),
                rank: match f.level() {
                    HierarchyLevel::Procedure => 0,
                    HierarchyLevel::Task => 1,
                    HierarchyLevel::Process => 2,
                },
                parent: f.parent().map(|p| p.0),
                children: f.children().iter().map(|c| c.0).collect(),
                criticality: f.attributes().criticality.0,
            })
            .collect();
        HierarchyView { nodes }
    }
}

/// A declared R5 retest plan for one modified FCM: retesting `modified`
/// must cover its parent interface and every sibling interface. Plans
/// drift when the tree is edited without regenerating them — exactly
/// what rule C007 catches.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetestView {
    /// The FCM assumed modified.
    pub modified: u64,
    /// The declared parent interface to retest.
    pub parent: Option<u64>,
    /// The declared sibling interfaces to retest.
    pub siblings: Vec<u64>,
}

/// One Eq. 1 fault-influence factor triple, unvalidated.
#[derive(Debug, Clone, PartialEq)]
pub struct FactorView {
    /// Source FCM name.
    pub from: String,
    /// Target FCM name.
    pub to: String,
    /// `p_k1`: fault-occurrence probability.
    pub occurrence: f64,
    /// `p_k2`: fault-transmission probability.
    pub transmission: f64,
    /// `p_k3`: fault-manifestation probability.
    pub manifestation: f64,
}

impl FactorView {
    /// Eq. 1: `p_k = p_k1 · p_k2 · p_k3`.
    #[must_use]
    pub fn probability(&self) -> f64 {
        self.occurrence * self.transmission * self.manifestation
    }
}

/// The node-failure recovery parameters, unvalidated.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryView {
    /// Watchdog heartbeat period (0 = broken: nothing is ever detected).
    pub heartbeat_period: u64,
    /// Latency from the detecting heartbeat to the detection event.
    pub detection_latency: u64,
    /// Retry budget per killed job.
    pub max_retries: u32,
    /// Base backoff delay (0 with retries = busy-loop restart).
    pub backoff_base: u64,
    /// Checkpoint interval (0 = restarts lose all progress).
    pub checkpoint_every: u64,
}

/// A complete (or partial) system model to analyse.
///
/// Every part is optional: rules skip what is absent, so the same
/// catalog serves a full experiment workload, a graph-only pre-flight
/// gate, or a hierarchy-only design review.
#[derive(Debug, Clone, Default)]
pub struct SystemModel {
    /// Display name (used in reports).
    pub name: String,
    /// The FCM tree.
    pub hierarchy: Option<HierarchyView>,
    /// Declared R5 retest plans.
    pub retest: Vec<RetestView>,
    /// Eq. 1 factor triples.
    pub factors: Vec<FactorView>,
    /// The stated node-level influence matrix (dense or CSR — the
    /// C009/C010/C011 checks are representation-aware).
    pub influence: Option<InfluenceMatrix>,
    /// The SW graph (expanded, replica-tagged).
    pub sw: Option<SwGraph>,
    /// The clustering of the SW graph.
    pub clustering: Option<Clustering>,
    /// The cluster → HW assignment.
    pub mapping: Option<Mapping>,
    /// The HW platform.
    pub hw: Option<HwGraph>,
    /// Recovery parameters.
    pub recovery: Option<RecoveryView>,
    /// Degraded-mode shed policy.
    pub shed: Option<ShedPolicy>,
    /// Per-FCM rely-guarantee contracts (the C017–C022 family).
    pub contracts: Option<ContractSet>,
}

impl SystemModel {
    /// An empty model named `name`.
    pub fn new(name: impl Into<String>) -> SystemModel {
        SystemModel {
            name: name.into(),
            ..SystemModel::default()
        }
    }

    /// Attaches a hierarchy view extracted from a real tree.
    #[must_use]
    pub fn with_hierarchy(mut self, h: &FcmHierarchy) -> SystemModel {
        self.hierarchy = Some(HierarchyView::from(h));
        self
    }

    /// Declares retest plans consistent with the current hierarchy view
    /// (one per non-root node). Tests mutate these to model plan drift.
    #[must_use]
    pub fn with_retest_from_view(mut self) -> SystemModel {
        if let Some(view) = &self.hierarchy {
            self.retest = view
                .nodes
                .iter()
                .filter_map(|n| {
                    let p = view.find(n.parent?)?;
                    Some(RetestView {
                        modified: n.id,
                        parent: Some(p.id),
                        siblings: p.children.iter().copied().filter(|&c| c != n.id).collect(),
                    })
                })
                .collect();
        }
        self
    }

    /// Attaches Eq. 1 factor triples.
    #[must_use]
    pub fn with_factors(mut self, factors: Vec<FactorView>) -> SystemModel {
        self.factors = factors;
        self
    }

    /// Attaches a stated dense influence matrix, kept dense so the
    /// diagnostics scan every entry exactly as before.
    #[must_use]
    pub fn with_influence(mut self, m: Matrix) -> SystemModel {
        self.influence = Some(InfluenceMatrix::Dense(m));
        self
    }

    /// Attaches a stated influence matrix in either representation —
    /// large sparse fleets hand the checker their CSR form directly.
    #[must_use]
    pub fn with_influence_matrix(mut self, m: InfluenceMatrix) -> SystemModel {
        self.influence = Some(m);
        self
    }

    /// Attaches the SW graph.
    #[must_use]
    pub fn with_sw(mut self, g: SwGraph) -> SystemModel {
        self.sw = Some(g);
        self
    }

    /// Attaches the clustering.
    #[must_use]
    pub fn with_clustering(mut self, c: Clustering) -> SystemModel {
        self.clustering = Some(c);
        self
    }

    /// Attaches the mapping and its HW platform.
    #[must_use]
    pub fn with_mapping(mut self, m: Mapping, hw: HwGraph) -> SystemModel {
        self.mapping = Some(m);
        self.hw = Some(hw);
        self
    }

    /// Attaches recovery parameters.
    #[must_use]
    pub fn with_recovery(mut self, r: RecoveryView) -> SystemModel {
        self.recovery = Some(r);
        self
    }

    /// Attaches the shed policy.
    #[must_use]
    pub fn with_shed(mut self, s: ShedPolicy) -> SystemModel {
        self.shed = Some(s);
        self
    }

    /// Attaches per-FCM rely-guarantee contracts.
    #[must_use]
    pub fn with_contracts(mut self, c: ContractSet) -> SystemModel {
        self.contracts = Some(c);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fcm_core::AttributeSet;

    #[test]
    fn view_extraction_preserves_links_and_ranks() {
        let mut h = FcmHierarchy::new();
        let p = h
            .add_root("p1", HierarchyLevel::Process, AttributeSet::default().with_criticality(7))
            .unwrap();
        let t = h
            .add_child(p, "t1", AttributeSet::default().with_criticality(7))
            .unwrap();
        let view = HierarchyView::from(&h);
        assert_eq!(view.nodes.len(), 2);
        let pv = view.find(p.0).unwrap();
        let tv = view.find(t.0).unwrap();
        assert_eq!(pv.rank, 2);
        assert_eq!(tv.rank, 1);
        assert_eq!(tv.parent, Some(p.0));
        assert_eq!(pv.children, vec![t.0]);
        assert_eq!(pv.criticality, 7);
        assert_eq!(view.path_of(t.0), format!("hierarchy/task[{}]", t.0));
    }

    #[test]
    fn retest_from_view_lists_parent_and_siblings() {
        let mut h = FcmHierarchy::new();
        let p = h.add_root("p", HierarchyLevel::Process, AttributeSet::default()).unwrap();
        let a = h.add_child(p, "a", AttributeSet::default()).unwrap();
        let b = h.add_child(p, "b", AttributeSet::default()).unwrap();
        let m = SystemModel::new("m").with_hierarchy(&h).with_retest_from_view();
        let ra = m.retest.iter().find(|r| r.modified == a.0).unwrap();
        assert_eq!(ra.parent, Some(p.0));
        assert_eq!(ra.siblings, vec![b.0]);
    }
}
