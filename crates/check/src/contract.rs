//! Per-FCM rely-guarantee contracts (DESIGN.md §13).
//!
//! A [`Contract`] gives one FCM a **guarantee** it upholds (a max on its
//! outgoing influence row sum), a **rely** it assumes of the rest of the
//! system (a max on the incoming interference the others may send it), a
//! **criticality floor**, and optional per-edge caps that tighten the
//! guarantee on named targets. A [`ContractSet`] is the model-level view
//! the compositional rules `C017`–`C022` certify against: every
//! guarantee is checked against its actual matrix row in O(degree), every
//! rely is discharged from the *other* FCMs' guarantees without touching
//! the matrix at all, and a system-level separation bound is derived from
//! the contracts alone ([`certified_bound`]) — conservative against the
//! exact Eq. 3 series because row sums bound every term of the series.
//!
//! The functions here are the single implementation shared by the rule
//! catalog (`rules.rs`) and the incremental certifier (`certify.rs`), so
//! a cached verdict is bitwise-identical to a from-scratch rule run.

use std::collections::BTreeMap;

use fcm_graph::{fnv, InfluenceMatrix};
use fcm_substrate::Json;

use crate::diag::{Code, Diagnostic, Severity};

/// Schema tag of the contract-file JSON document.
pub const CONTRACTS_SCHEMA: &str = "fcm-contracts/v1";

/// The rely-guarantee contract of one FCM.
#[derive(Debug, Clone, PartialEq)]
pub struct Contract {
    /// Name of the FCM this contract binds (an SW-graph node name).
    pub fcm: String,
    /// Guaranteed max outgoing influence: the FCM promises its matrix
    /// row sum never exceeds this.
    pub guarantee: f64,
    /// Relied max incoming interference: the FCM assumes the combined
    /// influence the others may send it never exceeds this.
    pub rely: f64,
    /// Criticality floor: the FCM's declared criticality must be ≥ this.
    pub floor: u32,
    /// Optional per-edge caps `(target, cap)` tightening the guarantee
    /// on named outgoing edges; kept sorted by target name.
    pub caps: Vec<(String, f64)>,
}

impl Contract {
    /// Creates a contract with no per-edge caps.
    pub fn new(fcm: impl Into<String>, guarantee: f64, rely: f64, floor: u32) -> Contract {
        Contract { fcm: fcm.into(), guarantee, rely, floor, caps: Vec::new() }
    }

    /// Adds (or replaces) a per-edge cap, keeping caps sorted by target.
    #[must_use]
    pub fn with_cap(mut self, target: impl Into<String>, cap: f64) -> Contract {
        let target = target.into();
        match self.caps.binary_search_by(|(t, _)| t.as_str().cmp(&target)) {
            Ok(i) => self.caps[i].1 = cap,
            Err(i) => self.caps.insert(i, (target, cap)),
        }
        self
    }

    /// The cap on the outgoing edge to `target`, when one is declared.
    #[must_use]
    pub fn cap_to(&self, target: &str) -> Option<f64> {
        self.caps
            .binary_search_by(|(t, _)| t.as_str().cmp(target))
            .ok()
            .map(|i| self.caps[i].1)
    }

    /// A deterministic fingerprint of every field, by exact bit pattern —
    /// one half of the certifier's `(state hash, contract hash)` cache
    /// key.
    #[must_use]
    pub fn fingerprint(&self) -> u64 {
        let mut h = fnv::text(fnv::OFFSET, &self.fcm);
        h = fnv::value(h, self.guarantee);
        h = fnv::value(h, self.rely);
        h = fnv::word(h, u64::from(self.floor));
        for (target, cap) in &self.caps {
            h = fnv::value(fnv::text(h, target), *cap);
        }
        h
    }

    /// Canonical JSON form (`caps` present only when non-empty).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut doc = Json::object()
            .set("fcm", self.fcm.as_str())
            .set("guarantee", self.guarantee)
            .set("rely", self.rely)
            .set("floor", f64::from(self.floor));
        if !self.caps.is_empty() {
            let mut caps = Json::object();
            for (target, cap) in &self.caps {
                caps = caps.set(target, *cap);
            }
            doc = doc.set("caps", caps);
        }
        doc
    }

    /// Parses and validates one contract.
    ///
    /// # Errors
    ///
    /// A message naming the malformed field: missing/empty `fcm`,
    /// non-finite or negative `guarantee`/`rely`/cap values, or a
    /// non-integral `floor`.
    pub fn from_json(doc: &Json) -> Result<Contract, String> {
        let fcm = doc
            .get("fcm")
            .and_then(Json::as_str)
            .filter(|s| !s.is_empty())
            .ok_or("contract needs a non-empty \"fcm\" name")?
            .to_string();
        let bound = |key: &str| -> Result<f64, String> {
            let v = doc
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("contract {fcm:?} needs a numeric \"{key}\""))?;
            if !v.is_finite() || v < 0.0 {
                return Err(format!("contract {fcm:?}: \"{key}\" {v} is not a finite bound ≥ 0"));
            }
            Ok(v)
        };
        let guarantee = bound("guarantee")?;
        let rely = bound("rely")?;
        let floor_raw = doc
            .get("floor")
            .and_then(Json::as_f64)
            .ok_or_else(|| format!("contract {fcm:?} needs a numeric \"floor\""))?;
        if floor_raw.fract() != 0.0 || !(0.0..=f64::from(u32::MAX)).contains(&floor_raw) {
            return Err(format!("contract {fcm:?}: floor {floor_raw} is not a criticality rank"));
        }
        let mut c = Contract::new(fcm.clone(), guarantee, rely, floor_raw as u32);
        if let Some(caps) = doc.get("caps") {
            let Json::Obj(entries) = caps else {
                return Err(format!("contract {fcm:?}: \"caps\" must be an object"));
            };
            for (target, cap) in entries {
                let v = cap
                    .as_f64()
                    .filter(|v| v.is_finite() && *v >= 0.0)
                    .ok_or_else(|| format!("contract {fcm:?}: cap to {target:?} is malformed"))?;
                c = c.with_cap(target.as_str(), v);
            }
        }
        Ok(c)
    }
}

/// The system-level view: one contract per FCM, unique by name and kept
/// in name order (so every fold over the set is deterministic).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ContractSet {
    contracts: Vec<Contract>,
}

impl ContractSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> ContractSet {
        ContractSet::default()
    }

    /// Number of contracts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.contracts.len()
    }

    /// Whether the set is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.contracts.is_empty()
    }

    /// Inserts a contract, replacing any previous one for the same FCM.
    pub fn insert(&mut self, c: Contract) {
        match self.contracts.binary_search_by(|x| x.fcm.as_str().cmp(&c.fcm)) {
            Ok(i) => self.contracts[i] = c,
            Err(i) => self.contracts.insert(i, c),
        }
    }

    /// Removes the contract for `fcm`, returning whether one existed.
    pub fn remove(&mut self, fcm: &str) -> bool {
        match self.contracts.binary_search_by(|x| x.fcm.as_str().cmp(fcm)) {
            Ok(i) => {
                self.contracts.remove(i);
                true
            }
            Err(_) => false,
        }
    }

    /// The contract for `fcm`, when present.
    #[must_use]
    pub fn get(&self, fcm: &str) -> Option<&Contract> {
        self.contracts
            .binary_search_by(|x| x.fcm.as_str().cmp(fcm))
            .ok()
            .map(|i| &self.contracts[i])
    }

    /// Iterates the contracts in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Contract> + '_ {
        self.contracts.iter()
    }

    /// Canonical JSON document (`fcm-contracts/v1`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::object()
            .set("schema", CONTRACTS_SCHEMA)
            .set("contracts", Json::Arr(self.contracts.iter().map(Contract::to_json).collect()))
    }

    /// Parses a contract-file document.
    ///
    /// # Errors
    ///
    /// Wrong schema tag, a malformed contract, or two contracts naming
    /// the same FCM.
    pub fn from_json(doc: &Json) -> Result<ContractSet, String> {
        match doc.get("schema").and_then(Json::as_str) {
            Some(CONTRACTS_SCHEMA) => {}
            other => return Err(format!("expected schema {CONTRACTS_SCHEMA:?}, got {other:?}")),
        }
        let items = doc
            .get("contracts")
            .and_then(Json::as_array)
            .ok_or("document needs a \"contracts\" array")?;
        let mut set = ContractSet::new();
        for item in items {
            let c = Contract::from_json(item)?;
            if set.get(&c.fcm).is_some() {
                return Err(format!("duplicate contract for {:?}", c.fcm));
            }
            set.insert(c);
        }
        Ok(set)
    }
}

/// The system-level certification derived from a [`ContractSet`] alone
/// — no matrix access (see [`certified_bound`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CertifiedBound {
    /// The largest guarantee in the set (`0` for an empty set).
    pub max_guarantee: f64,
    /// Certified upper bound on any entry of the truncated Eq. 3 walk
    /// series plus its dropped tail; `∞` when the contracts admit a
    /// divergent series.
    pub influence_bound: f64,
    /// Certified lower bound on every pairwise separation:
    /// `1 − min(1, influence_bound)`; `0` when not certified.
    pub separation_floor: f64,
    /// Whether the contracts certify convergence (all guarantees are
    /// finite bounds with `max < 1`).
    pub converges: bool,
}

impl CertifiedBound {
    /// JSON form for `stats`/`certify` responses. `influence_bound` and
    /// `separation_floor` are emitted only when the bound converges (an
    /// infinite bound has no JSON number).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let doc = Json::object()
            .set("converges", self.converges)
            .set("max_guarantee", self.max_guarantee);
        if self.converges {
            doc.set("influence_bound", self.influence_bound)
                .set("separation_floor", self.separation_floor)
        } else {
            doc
        }
    }
}

/// The actual outgoing influence row sum of FCM `i` — the same
/// ascending-column fold in both representations that rule C010 uses, so
/// guarantees verify bitwise-identically across `Dense` and `Sparse`.
#[must_use]
pub fn row_sum(mat: &InfluenceMatrix, i: usize) -> f64 {
    let mut sum = 0.0;
    match mat {
        InfluenceMatrix::Dense(d) => {
            for j in 0..d.cols() {
                sum += d.get(i, j).unwrap_or(0.0);
            }
        }
        InfluenceMatrix::Sparse(s) => {
            if i < s.rows() {
                let (_, vals) = s.row(i);
                for &v in vals {
                    sum += v;
                }
            }
        }
    }
    sum
}

/// C017 — the FCM's actual row sum must be within its guarantee.
#[must_use]
pub fn guarantee_diag(name: &str, row_sum: f64, c: &Contract) -> Option<Diagnostic> {
    (row_sum > c.guarantee).then(|| {
        Diagnostic::error(
            Code(17),
            format!("contracts/{name}"),
            format!(
                "outgoing influence row sum {row_sum} exceeds the guaranteed max {}",
                c.guarantee
            ),
        )
    })
}

/// C018 — every declared per-edge cap must hold on the actual matrix
/// entry. Caps naming FCMs absent from the model are C021's findings,
/// not ours.
#[must_use]
pub fn cap_diags(
    name: &str,
    i: usize,
    mat: &InfluenceMatrix,
    index: &BTreeMap<String, usize>,
    c: &Contract,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (target, cap) in &c.caps {
        let Some(&j) = index.get(target) else { continue };
        let v = mat.get(i, j).unwrap_or(0.0);
        if v > *cap {
            out.push(Diagnostic::error(
                Code(18),
                format!("contracts/{name}"),
                format!("influence {v} into {target} exceeds the per-edge cap {cap}"),
            ));
        }
    }
    out
}

/// C020 — the FCM's declared criticality must reach the contract floor.
#[must_use]
pub fn floor_diag(name: &str, criticality: u32, c: &Contract) -> Option<Diagnostic> {
    (criticality < c.floor).then(|| {
        Diagnostic::error(
            Code(20),
            format!("contracts/{name}"),
            format!("criticality {criticality} is below the contract floor {}", c.floor),
        )
    })
}

/// C021 (warn half) — an FCM without a contract leaves the composition
/// uncertifiable, but partial adoption must not block anything.
#[must_use]
pub fn missing_diag(name: &str) -> Diagnostic {
    Diagnostic::warn(
        Code(21),
        format!("contracts/{name}"),
        "FCM has no contract: the compositional rules cannot certify the system".to_string(),
    )
}

/// C021 (error half) — contracts or caps naming FCMs the model does not
/// have are broken references, not partial adoption. Also reports
/// whether every contract's own `fcm` resolved (cap targets excluded):
/// combined with `set.len() == names.len()` that is exactly [`covers`]
/// — a length-matched injection into the name set is a bijection — and
/// it is what the certifier's per-pass hot path uses instead of the
/// O(n log n) lookup loop in [`covers`].
///
/// The scan is a single merge walk: the set is name-sorted and the
/// index's keys iterate sorted, so membership of every contract name
/// costs O(n) comparisons total, not O(n log n) lookups.
#[must_use]
pub fn dangling_scan(index: &BTreeMap<String, usize>, set: &ContractSet) -> (Vec<Diagnostic>, bool) {
    let mut out = Vec::new();
    let mut names_resolved = true;
    let mut keys = index.keys();
    let mut cursor = keys.next();
    for c in set.iter() {
        while cursor.is_some_and(|k| k.as_str() < c.fcm.as_str()) {
            cursor = keys.next();
        }
        if cursor.is_none_or(|k| *k != c.fcm) {
            names_resolved = false;
            out.push(Diagnostic::error(
                Code(21),
                format!("contracts/{}", c.fcm),
                "contract names an FCM absent from the model".to_string(),
            ));
        }
        for (target, _) in &c.caps {
            if !index.contains_key(target) {
                out.push(Diagnostic::error(
                    Code(21),
                    format!("contracts/{}", c.fcm),
                    format!("per-edge cap names unknown FCM {target}"),
                ));
            }
        }
    }
    (out, names_resolved)
}

/// The diagnostics half of [`dangling_scan`].
#[must_use]
pub fn dangling_diags(index: &BTreeMap<String, usize>, set: &ContractSet) -> Vec<Diagnostic> {
    dangling_scan(index, set).0
}

/// Whether the set covers exactly the model's FCMs — the precondition
/// for discharging relies (C019) and certifying a bound (C022).
#[must_use]
pub fn covers(names: &[String], set: &ContractSet) -> bool {
    names.len() == set.len() && names.iter().all(|n| set.get(n).is_some())
}

/// The incoming interference each contract's FCM is entitled to assume,
/// entailed purely from the *other* contracts: every FCM `j ≠ i` may
/// send `i` at most `min(gⱼ, cap(j→i))`, so the entailed total is
/// `Σⱼ gⱼ − gᵢ` adjusted down by every cap that undercuts its
/// guarantee. Returned in set (name) order; one shared fold so rule
/// C019, the certifier, and [`synthesize`] agree bitwise.
#[must_use]
pub fn entailed_incoming(set: &ContractSet) -> Vec<f64> {
    let mut total = 0.0;
    for c in set.iter() {
        total += c.guarantee;
    }
    let mut adjust: BTreeMap<&str, f64> = BTreeMap::new();
    for c in set.iter() {
        for (target, cap) in &c.caps {
            if *cap < c.guarantee && set.get(target).is_some() {
                *adjust.entry(target.as_str()).or_insert(0.0) += cap - c.guarantee;
            }
        }
    }
    set.iter()
        .map(|c| total - c.guarantee + adjust.get(c.fcm.as_str()).copied().unwrap_or(0.0))
        .collect()
}

/// C019 — every rely must be entailed by the others' guarantees. Pure
/// contract arithmetic: the matrix is never read, which is what lets a
/// local edit discharge globally. Callers gate on [`covers`].
#[must_use]
pub fn rely_diags(set: &ContractSet) -> Vec<Diagnostic> {
    let entailed = entailed_incoming(set);
    set.iter()
        .zip(&entailed)
        .filter(|(c, e)| **e > c.rely)
        .map(|(c, e)| {
            Diagnostic::error(
                Code(19),
                format!("contracts/{}", c.fcm),
                format!(
                    "relied max incoming interference {} is below what the other contracts permit ({e})",
                    c.rely
                ),
            )
        })
        .collect()
}

/// C022 / the certified system bound, from contracts alone.
///
/// With `G = max guarantee < 1` every row sum of the influence matrix is
/// ≤ `G` once C017 holds, so every entry of `Pᵏ` is ≤ `Gᵏ` and the
/// truncated Eq. 3 series plus its dropped tail is bounded by
/// `Σ_{k=1..order} Gᵏ + G^{order+1}/(1−G)` — the certified influence
/// bound, conservative against the exact series on every model
/// (`crates/check/tests/contract_props.rs` proves it on generated dense
/// and CSR models).
#[must_use]
pub fn certified_bound(set: &ContractSet, order: usize) -> CertifiedBound {
    let mut g = 0.0f64;
    let mut well_formed = true;
    for c in set.iter() {
        if !c.guarantee.is_finite() || c.guarantee < 0.0 {
            well_formed = false;
        }
        g = g.max(c.guarantee);
    }
    let converges = well_formed && g < 1.0;
    if !converges {
        return CertifiedBound {
            max_guarantee: g,
            influence_bound: f64::INFINITY,
            separation_floor: 0.0,
            converges,
        };
    }
    let mut sum = 0.0;
    let mut power = 1.0;
    for _ in 1..=order {
        power *= g;
        sum += power;
    }
    let tail = if g > 0.0 { power * g / (1.0 - g) } else { 0.0 };
    let bound = sum + tail;
    CertifiedBound {
        max_guarantee: g,
        influence_bound: bound,
        separation_floor: 1.0 - bound.min(1.0),
        converges,
    }
}

/// C022 — contracts that cover the model but admit a divergent series
/// certify nothing; say so once.
#[must_use]
pub fn convergence_diag(bound: &CertifiedBound) -> Option<Diagnostic> {
    (!bound.converges).then(|| {
        Diagnostic::new(
            Code(22),
            Severity::Warn,
            "contracts".to_string(),
            format!(
                "contracts do not certify convergence: max guarantee {} admits a divergent Eq. 3 series",
                bound.max_guarantee
            ),
        )
    })
}

/// Synthesizes the tightest passing [`ContractSet`] for a model: each
/// guarantee is the FCM's actual row sum (so C017 holds with equality),
/// each floor its declared criticality, and each rely exactly the
/// interference the other guarantees entail (the same
/// [`entailed_incoming`] fold C019 checks, so the set passes it
/// bitwise). `checktool --emit-contracts` and the workload generators
/// call this.
#[must_use]
pub fn synthesize(names: &[String], crits: &[u32], mat: &InfluenceMatrix) -> ContractSet {
    let mut set = ContractSet::new();
    for (i, name) in names.iter().enumerate() {
        let floor = crits.get(i).copied().unwrap_or(0);
        set.insert(Contract::new(name.clone(), row_sum(mat, i), 0.0, floor));
    }
    let relies = entailed_incoming(&set);
    let mut out = ContractSet::new();
    for (c, rely) in set.iter().zip(relies) {
        let mut c = c.clone();
        c.rely = rely;
        out.insert(c);
    }
    out
}

/// [`synthesize`] over a [`SystemModel`]'s SW graph and influence
/// matrix — `None` when either is absent or their shapes disagree.
#[must_use]
pub fn synthesize_for_model(m: &crate::model::SystemModel) -> Option<ContractSet> {
    let (g, mat) = (m.sw.as_ref()?, m.influence.as_ref()?);
    let n = g.node_count();
    if mat.rows() != n || mat.cols() != n {
        return None;
    }
    let names: Vec<String> = g.nodes().map(|(_, node)| node.name.clone()).collect();
    let crits: Vec<u32> = g.nodes().map(|(_, node)| node.attributes.criticality.0).collect();
    Some(synthesize(&names, &crits, mat))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_set() -> ContractSet {
        let mut set = ContractSet::new();
        set.insert(Contract::new("b", 0.4, 0.9, 2));
        set.insert(Contract::new("a", 0.3, 0.9, 5).with_cap("b", 0.1));
        set
    }

    #[test]
    fn set_is_name_ordered_and_json_round_trips() {
        let set = demo_set();
        let names: Vec<&str> = set.iter().map(|c| c.fcm.as_str()).collect();
        assert_eq!(names, ["a", "b"]);
        let doc = set.to_json();
        let back = ContractSet::from_json(&doc).unwrap();
        assert_eq!(back, set);
        assert_eq!(back.to_json().to_string_pretty(), doc.to_string_pretty());
    }

    #[test]
    fn from_json_rejects_malformed_documents() {
        let bad = [
            "{\"schema\":\"nope\",\"contracts\":[]}",
            "{\"schema\":\"fcm-contracts/v1\"}",
            "{\"schema\":\"fcm-contracts/v1\",\"contracts\":[{\"fcm\":\"a\",\"guarantee\":-1,\"rely\":0,\"floor\":0}]}",
            "{\"schema\":\"fcm-contracts/v1\",\"contracts\":[{\"fcm\":\"a\",\"guarantee\":0.1,\"rely\":0.2,\"floor\":1.5}]}",
            "{\"schema\":\"fcm-contracts/v1\",\"contracts\":[{\"fcm\":\"a\",\"guarantee\":0.1,\"rely\":0.2,\"floor\":0},{\"fcm\":\"a\",\"guarantee\":0.1,\"rely\":0.2,\"floor\":0}]}",
        ];
        for text in bad {
            let doc = Json::parse(text).unwrap();
            assert!(ContractSet::from_json(&doc).is_err(), "{text}");
        }
    }

    #[test]
    fn fingerprint_tracks_every_field() {
        let base = Contract::new("a", 0.3, 0.2, 1);
        let mut seen = vec![base.fingerprint()];
        for variant in [
            Contract::new("b", 0.3, 0.2, 1),
            Contract::new("a", 0.4, 0.2, 1),
            Contract::new("a", 0.3, 0.5, 1),
            Contract::new("a", 0.3, 0.2, 2),
            Contract::new("a", 0.3, 0.2, 1).with_cap("b", 0.1),
        ] {
            let f = variant.fingerprint();
            assert!(!seen.contains(&f), "collision for {variant:?}");
            seen.push(f);
        }
    }

    #[test]
    fn entailment_respects_caps() {
        let set = demo_set();
        let entailed = entailed_incoming(&set);
        // Into a: only b's guarantee. Into b: a's guarantee capped at 0.1.
        assert!((entailed[0] - 0.4).abs() < 1e-12, "{entailed:?}");
        assert!((entailed[1] - 0.1).abs() < 1e-12, "{entailed:?}");
        assert!(rely_diags(&set).is_empty());
        let mut tight = demo_set();
        tight.insert(Contract::new("a", 0.3, 0.05, 5).with_cap("b", 0.1));
        let diags = rely_diags(&tight);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].path, "contracts/a");
    }

    #[test]
    fn certified_bound_matches_the_closed_form() {
        let b = certified_bound(&demo_set(), 4);
        assert!(b.converges);
        assert!((b.max_guarantee - 0.4).abs() < 1e-15);
        let series: f64 = (1..=4).map(|k| 0.4f64.powi(k)).sum();
        let tail = 0.4f64.powi(5) / 0.6;
        assert!((b.influence_bound - (series + tail)).abs() < 1e-12);
        assert!((b.separation_floor - (1.0 - b.influence_bound)).abs() < 1e-12);
        assert!(convergence_diag(&b).is_none());

        let mut wild = demo_set();
        wild.insert(Contract::new("c", 1.0, 0.0, 0));
        let nb = certified_bound(&wild, 4);
        assert!(!nb.converges);
        assert!(nb.influence_bound.is_infinite());
        assert_eq!(nb.separation_floor, 0.0);
        assert!(convergence_diag(&nb).is_some());
        assert!(nb.to_json().get("influence_bound").is_none());
    }
}
