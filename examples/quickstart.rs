//! Quickstart: the full DDSI pipeline on a four-process system.
//!
//! Run with `cargo run --example quickstart`.

use ddsi::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the software as process-level FCMs with attributes.
    let mut builder = SwGraphBuilder::new();
    let control = builder.add_process(
        "control",
        AttributeSet::default()
            .with_criticality(9)
            .with_fault_tolerance(FaultTolerance::DUPLEX)
            .with_timing(0, 20, 5),
    );
    let sensing = builder.add_process(
        "sensing",
        AttributeSet::default()
            .with_criticality(7)
            .with_timing(0, 15, 4),
    );
    let logging = builder.add_process(
        "logging",
        AttributeSet::default()
            .with_criticality(2)
            .with_timing(10, 80, 6),
    );
    let ui = builder.add_process(
        "ui",
        AttributeSet::default()
            .with_criticality(3)
            .with_timing(5, 60, 5),
    );

    // 2. Quantify influence (Eq. 1 + Eq. 2) from fault factors.
    let sensing_to_control = Influence::from_factors(&[
        FaultFactor::new(FactorKind::SharedMemory, 0.4, 0.8, 0.9)?,
        FaultFactor::new(FactorKind::Timing, 0.2, 0.5, 0.6)?,
    ]);
    println!("influence(sensing → control) = {sensing_to_control}");
    builder.add_influence(sensing, control, sensing_to_control.value())?;
    builder.add_influence(control, ui, 0.3)?;
    builder.add_influence(ui, logging, 0.2)?;
    builder.add_influence(sensing, logging, 0.1)?;
    let sw = builder.build();

    // 3. Replicate per fault-tolerance requirements (duplex control).
    let expanded = expand_replicas(&sw);
    println!(
        "expanded {} processes into {} replica nodes",
        sw.node_count(),
        expanded.graph.node_count()
    );

    // 4. Separation including transitive paths (Eq. 3).
    let analysis = SeparationAnalysis::from_graph(&sw)?;
    println!(
        "separation(sensing, logging) = {:.4}",
        analysis.separation(sensing, logging, 4)
    );

    // 5. Cluster with H1 and map with Approach A onto three processors.
    let hw = HwGraph::complete(3);
    let clustering = h1(&expanded.graph, 3)?;
    let mapping = approach_a(
        &expanded.graph,
        &clustering,
        &hw,
        &ImportanceWeights::default(),
    )?;
    for (cluster, hw_node) in mapping.iter() {
        println!(
            "cluster {} -> {}",
            clustering.cluster_name(&expanded.graph, cluster),
            hw.node(hw_node).expect("mapped node exists").name
        );
    }

    // 6. Judge the result.
    let quality = MappingQuality::evaluate(&expanded.graph, &clustering, &mapping, &hw, 5);
    println!("quality: {quality}");
    let reliability = ReliabilityModel {
        trials: 20_000,
        ..ReliabilityModel::default()
    }
    .evaluate(&expanded.graph, &clustering, &mapping);
    println!(
        "mission failure probability ≈ {:.4} ({} trials)",
        reliability.mission_failure, reliability.trials
    );
    Ok(())
}
