//! Software evolution under the framework: modification, bounded
//! recertification (R5), and requirement-driven re-integration (R4).
//!
//! The paper's introduction lists "supporting SW evolution and
//! recertification" among the framework's goals. This example plays a
//! maintenance scenario on the avionics hierarchy:
//!
//! 1. the fully-certified baseline;
//! 2. a procedure-level bug fix — the certification ledger invalidates
//!    exactly the R5 retest set;
//! 3. a requirement change forcing two tasks of different processes to
//!    communicate — rule R4 merges the parent processes;
//! 4. recertification of the outstanding work.
//!
//! Run with `cargo run --example evolution`.

use ddsi::core::certification::CertificationLedger;
use ddsi::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Build a three-level avionics hierarchy.
    let mut h = FcmHierarchy::new();
    let nav = h.add_root(
        "nav",
        HierarchyLevel::Process,
        AttributeSet::default().with_criticality(7),
    )?;
    let guidance = h.add_root(
        "guidance",
        HierarchyLevel::Process,
        AttributeSet::default().with_criticality(9),
    )?;
    let kalman = h.add_child(nav, "kalman", AttributeSet::default().with_criticality(7))?;
    let waypoints = h.add_child(
        nav,
        "waypoints",
        AttributeSet::default().with_criticality(4),
    )?;
    let law = h.add_child(
        guidance,
        "control_law",
        AttributeSet::default().with_criticality(9),
    )?;
    let predict = h.add_child(kalman, "predict", AttributeSet::default())?;
    let update = h.add_child(kalman, "update", AttributeSet::default())?;
    let _gains = h.add_child(law, "gains", AttributeSet::default())?;

    println!("baseline: {} FCMs across two processes", h.len());
    let mut ledger = CertificationLedger::certify_all(&h);
    assert!(ledger.is_fully_certified(&h));
    println!("initial certification complete\n");

    // --- 1. A bug fix in the predict procedure.
    let invalidated = ledger.record_modification(&h, predict)?;
    println!(
        "bug fix in `predict`: {invalidated} certificates invalidated \
         (the procedure, its parent task, and the predict-update interface)"
    );
    println!(
        "outstanding modules: {:?}",
        ledger
            .outstanding_modules(&h)
            .iter()
            .map(|&id| h.fcm(id).map(|f| f.name().to_string()).unwrap_or_default())
            .collect::<Vec<_>>()
    );
    println!(
        "untouched: `waypoints`, `control_law`, `gains` keep their certificates \
         ({} of {} modules still certified)\n",
        h.len() - ledger.outstanding_modules(&h).len(),
        h.len()
    );
    let issued = ledger.recertify_outstanding(&h);
    println!(
        "recertified with {issued} new certificates (naive recertification: {})\n",
        h.naive_retest_set(predict)?.len()
    );

    // --- 2. A requirement change: kalman must now feed the control law
    // directly. Rule R4: their parents must integrate.
    println!("requirement change: `kalman` and `control_law` must communicate");
    let merged_task = h.integrate_across(kalman, law, "kalman_law")?;
    let merged_process = h
        .fcm(merged_task)?
        .parent()
        .expect("merged task has a parent");
    println!(
        "R4 merged the processes into `{}` (criticality {})",
        h.fcm(merged_process)?.name(),
        h.fcm(merged_process)?.attributes().criticality
    );
    println!(
        "`waypoints` migrated with its process: parent is now `{}`",
        h.fcm(h.fcm(waypoints)?.parent().expect("waypoints has a parent"))?
            .name()
    );
    h.verify()?;

    // --- 3. Fresh certification state for the restructured system.
    let mut ledger = CertificationLedger::new();
    println!(
        "\nafter restructuring: {} modules and {} interfaces to certify",
        ledger.outstanding_modules(&h).len(),
        ledger.outstanding_interfaces(&h).len()
    );
    ledger.recertify_outstanding(&h);
    assert!(ledger.is_fully_certified(&h));
    println!("system recertified");
    let _ = update;
    Ok(())
}
