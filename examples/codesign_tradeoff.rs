//! HW/SW codesign: the integration-depth tradeoff and platform
//! selection — the analyses the paper defers to "a later study".
//!
//! 1. Sweeps the integration depth of the avionics suite and locates the
//!    knee ("Is there a limit to the level of integration one should
//!    design for?").
//! 2. Selects the cheapest platform from a menu under a mission-failure
//!    target (the future-work HW/SW tradeoff "when design restrictions
//!    are provided on the choice of an available HW platform").
//! 3. Shows the extended level ladder (the OO footnote's object level).
//!
//! Run with `cargo run --release --example codesign_tradeoff`.

use ddsi::core::ladder::{GenericFcmHierarchy, LevelLadder};
use ddsi::eval::platform::{select_platform, PlatformOption};
use ddsi::eval::tradeoff::integration_sweep;
use ddsi::prelude::*;
use ddsi::workloads::avionics;

fn equipped_platform(k: usize) -> HwGraph {
    let mut hw = HwGraph::complete(k);
    if k >= 1 {
        hw.node_mut(NodeIdx(0))
            .expect("node 0 exists")
            .resources
            .insert("display".into());
    }
    if k >= 2 {
        hw.node_mut(NodeIdx(1))
            .expect("node 1 exists")
            .resources
            .insert("radio".into());
    }
    hw
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (expanded, _) = avionics::expanded_suite();
    let g = &expanded.graph;
    let model = ReliabilityModel {
        p_hw: 0.05,
        p_sw: 0.05,
        cross_node_attenuation: 0.2,
        critical_at: 7,
        trials: 20_000,
        seed: 1998,
    };
    let weights = ImportanceWeights::default();

    println!("== integration-depth tradeoff (12 SW nodes) ==");
    let curve = integration_sweep(g, 1..=g.node_count(), equipped_platform, &model, &weights);
    print!("{curve}");
    if let Some(knee) = curve.knee(0.01) {
        println!(
            "knee: {} processors (mission failure {:.4}) — integrating deeper \
             saves hardware but costs more than 1% mission reliability",
            knee.clusters, knee.reliability.mission_failure
        );
    }

    println!("\n== platform selection under a 16% mission-failure target ==");
    let options = vec![
        PlatformOption::new("4-node bare", HwGraph::complete(4), 4.0),
        PlatformOption::new("6-node equipped", equipped_platform(6), 6.5),
        PlatformOption::new("8-node equipped", equipped_platform(8), 8.5),
        PlatformOption::new("12-node equipped", equipped_platform(12), 12.5),
    ];
    let selection = select_platform(g, &options, &model, &weights, 0.16);
    print!("{selection}");
    if let Some(name) = selection.chosen_name() {
        println!("selected: {name}");
    }

    println!("\n== extended hierarchy: the OO object level ==");
    let mut h = GenericFcmHierarchy::new(LevelLadder::with_objects());
    let process = h.add_root(
        "fms",
        "process",
        AttributeSet::default().with_criticality(7),
    )?;
    let task = h.add_child(process, "route_planner", AttributeSet::default())?;
    let object = h.add_child(task, "leg", AttributeSet::default())?;
    let method = h.add_child(object, "distance_to", AttributeSet::default())?;
    println!("ladder: {}", h.ladder());
    println!(
        "{} lives at the {} level; modifying it retests {} FCM(s) under R5",
        h.fcm(method)?.name(),
        h.ladder().name(h.fcm(method)?.rank()),
        h.retest_set(method)?.size()
    );
    Ok(())
}
