//! Measuring influence with the fault-injection simulator.
//!
//! The paper requires the influence parameters (Eq. 1's p₁, p₂, p₃) to be
//! *measured* — transmission from the medium, manifestation "by injecting
//! faults into the target FCM" — and names that measurement apparatus as
//! future work. This example is that apparatus in action:
//!
//! 1. estimates p₂ and p₃ for the avionics control loop;
//! 2. compares the measured influence with the analytic Eq. 1/Eq. 2 value;
//! 3. replays the paper's §4.2.3 claim that preemptive scheduling reduces
//!    the transmission of timing faults.
//!
//! Run with `cargo run --example fault_injection_study` (release mode
//! recommended: `--release`).

use ddsi::prelude::*;
use ddsi::sim::fault::FaultKind;
use ddsi::sim::model::SchedulingPolicy;
use ddsi::workloads::avionics;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (spec, roles) = avionics::control_loop_system(SchedulingPolicy::PreemptiveEdf)?;
    let campaign = InfluenceCampaign::new(spec.clone(), 400, 4000, 99);

    println!("== component probabilities (paper Eq. 1) ==");
    let p2 = campaign.measure_transmission(roles.sensors, roles.sensor_shm)?;
    println!(
        "p2 (sensor_image transmission): measured {:.3} ± {:.3}  (model 0.8)",
        p2.estimate, p2.ci_halfwidth
    );
    let p3 = campaign.measure_manifestation(roles.sensors, roles.autopilot)?;
    println!(
        "p3 (autopilot vulnerability):  measured {:.3} ± {:.3}  (model 0.7)",
        p3.estimate, p3.ci_halfwidth
    );

    println!("\n== measured vs analytic influence (Eq. 2) ==");
    let measured = campaign.measure_influence(roles.sensors, roles.autopilot)?;
    let analytic = Influence::from_factors(&[FaultFactor::new(
        FactorKind::SharedMemory,
        1.0, // occurrence forced by injection
        0.8,
        0.7,
    )?]);
    println!(
        "infl(sensors → autopilot): measured {:.3} ± {:.3}, analytic {:.3}",
        measured.estimate,
        measured.ci_halfwidth,
        analytic.value()
    );
    let chained = campaign.measure_influence(roles.sensors, roles.display)?;
    println!(
        "infl(sensors → display):   measured {:.3} (two-hop chain, attenuated)",
        chained.estimate
    );

    println!("\n== full measured influence matrix ==");
    let quick = InfluenceCampaign::new(spec, 400, 400, 7);
    print!("{}", quick.influence_matrix());

    println!("== isolation ablation: timing-fault transmission (paper §4.2.3) ==");
    for policy in [
        SchedulingPolicy::NonPreemptiveFifo,
        SchedulingPolicy::PreemptiveEdf,
    ] {
        let (spec, roles) = avionics::control_loop_system(policy)?;
        let campaign = InfluenceCampaign::new(spec, 400, 400, 31);
        let infl = campaign.measure_influence_with(
            roles.maintenance,
            roles.autopilot,
            FaultKind::TimingOverrun { factor: 8 },
        )?;
        println!(
            "  {:?}: infl(maintenance overrun → autopilot) = {:.3}",
            policy, infl.estimate
        );
    }
    println!("(preemption drives the timing-fault influence toward zero)");
    Ok(())
}
