//! Integrating a synthetic avionics suite — the paper's motivating
//! scenario ("display, sensor, collision avoidance, and navigation SW
//! onto a shared platform").
//!
//! The example expands the suite's fault-tolerance requirements into
//! replicas, integrates it onto a six-cabinet platform with every
//! strategy the paper describes, and compares fault containment,
//! criticality separation, and end-to-end mission reliability.
//!
//! Run with `cargo run --example flight_control`.

use ddsi::prelude::*;
use ddsi::workloads::avionics;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (suite, nodes) = avionics::suite();
    println!(
        "avionics suite: {} functions, {} influences",
        suite.node_count(),
        suite.edge_count()
    );
    println!(
        "autopilot: {}  (TMR, most critical)",
        suite.node(nodes.autopilot).expect("node exists").attributes
    );

    let (expanded, _) = avionics::expanded_suite();
    let g = &expanded.graph;
    let hw = avionics::platform();
    println!(
        "\nafter replica expansion: {} SW nodes onto {} cabinets",
        g.node_count(),
        hw.len()
    );

    let weights = ImportanceWeights::default();
    let model = ReliabilityModel {
        p_hw: 0.02,
        p_sw: 0.05,
        cross_node_attenuation: 0.2,
        critical_at: 7,
        trials: 40_000,
        seed: 2026,
    };

    let mut cmp = Comparison::new();
    cmp.run_strategy("H1 + A", g, &hw, &model, || {
        let c = h1(g, hw.len())?;
        let m = approach_a(g, &c, &hw, &weights)?;
        Ok((c, m))
    });
    cmp.run_strategy("H1' pair-all", g, &hw, &model, || {
        let c = h1_pair_all(g, hw.len())?;
        let m = approach_a(g, &c, &hw, &weights)?;
        Ok((c, m))
    });
    cmp.run_strategy("H2 min-cut", g, &hw, &model, || {
        let c = h2(g, hw.len(), BisectPolicy::LargestPart)?;
        let m = approach_a(g, &c, &hw, &weights)?;
        Ok((c, m))
    });
    cmp.run_strategy("H3 spheres", g, &hw, &model, || {
        let c = h3(g, hw.len(), &weights)?;
        let m = approach_a(g, &c, &hw, &weights)?;
        Ok((c, m))
    });
    cmp.run_strategy("Approach B", g, &hw, &model, || {
        approach_b(g, &hw, &weights)
    });

    println!("\n{cmp}");
    if let Some(best) = cmp.best_containment() {
        println!("best fault containment: {}", best.name);
    }
    if let Some(best) = cmp.most_reliable() {
        println!(
            "most reliable: {} (mission failure {:.4})",
            best.name, best.reliability.mission_failure
        );
    }

    // Show where the resource-bound functions landed under H1 + A.
    let c = h1(g, hw.len())?;
    let m = approach_a(g, &c, &hw, &weights)?;
    println!("\nplacement under H1 + A:");
    for (cluster, node) in m.iter() {
        println!(
            "  {}: {{{}}}",
            hw.node(node).expect("mapped node exists").name,
            c.cluster_name(g, cluster)
        );
    }
    Ok(())
}
