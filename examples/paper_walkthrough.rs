//! Reproduces the worked example of the paper's Section 6 step by step:
//! Table 1, the Fig. 3 influence graph, the Fig. 4 replica expansion, the
//! Fig. 5 cluster-influence computation, the Fig. 6 influence-driven
//! reduction (Approach A), the Fig. 7 criticality pairing (Approach B),
//! and the Fig. 8 timing refinement.
//!
//! Run with `cargo run --example paper_walkthrough`.

use ddsi::prelude::*;
use ddsi::workloads::paper;

fn print_clusters(title: &str, g: &SwGraph, c: &Clustering) {
    println!("\n{title}");
    for i in 0..c.len() {
        let attrs = c.combined_attributes(g, i);
        println!("  node {} = {{{}}}  [{attrs}]", i, c.cluster_name(g, i));
    }
    println!(
        "  residual cross-node influence: {:.4}",
        c.cross_influence(g)
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Table 1: attributes of the example processes ==");
    print!("{}", paper::render_table1());

    println!("\n== Fig. 3: initial SW influence graph ==");
    let g = paper::fig3_graph();
    print!("{}", g.to_edge_list());

    println!("== Fig. 4: replica expansion (p1 TMR, p2/p3 duplex) ==");
    let ex = paper::fig4_expansion();
    println!(
        "{} nodes after expansion: {}",
        ex.graph.node_count(),
        ex.graph
            .nodes()
            .map(|(_, n)| n.name.clone())
            .collect::<Vec<_>>()
            .join(", ")
    );

    println!("\n== Fig. 5: Eq. 4 cluster influence ==");
    let c123 = Clustering::new(
        &g,
        vec![
            vec![NodeIdx(0), NodeIdx(1), NodeIdx(2)],
            vec![NodeIdx(3)],
            vec![NodeIdx(4)],
            vec![NodeIdx(5)],
            vec![NodeIdx(6)],
            vec![NodeIdx(7)],
        ],
    )?;
    let cond = c123.condensed(&g);
    let w: f64 = *cond
        .graph
        .edge_weight_between(
            cond.group_of(NodeIdx(0)).expect("p1 is clustered"),
            cond.group_of(NodeIdx(3)).expect("p4 is clustered"),
        )
        .expect("influence edge onto p4 exists");
    println!("infl({{p1,p2,p3}} → p4) = 1 − (1−0.7)(1−0.2) = {w:.2}");

    println!("\n== Fig. 6: H1 reduction of the 12-node graph to 6 HW nodes ==");
    let hw = paper::hw_platform();
    let h1_clusters = h1(&ex.graph, hw.len())?;
    print_clusters(
        "clusters (Approach A / heuristic H1):",
        &ex.graph,
        &h1_clusters,
    );
    let mapping = approach_a(&ex.graph, &h1_clusters, &hw, &ImportanceWeights::default())?;
    for (cluster, node) in mapping.iter() {
        println!(
            "  {} hosts {{{}}}",
            hw.node(node).expect("mapped node exists").name,
            h1_clusters.cluster_name(&ex.graph, cluster)
        );
    }

    println!("\n== Fig. 7: criticality-driven integration (Approach B) ==");
    let crit = criticality_pairing(&ex.graph, hw.len())?;
    print_clusters(
        "clusters (most-with-least criticality pairing):",
        &ex.graph,
        &crit,
    );

    println!("\n== Fig. 8: timing-ordered refinement to 5 nodes ==");
    let timed = timing_refinement(&ex.graph, 5)?;
    print_clusters("clusters (first-fit in EST order):", &ex.graph, &timed);

    println!("\n== Comparing the three integrations ==");
    let model = ReliabilityModel {
        trials: 20_000,
        ..ReliabilityModel::default()
    };
    let weights = ImportanceWeights::default();
    let mut cmp = Comparison::new();
    cmp.run_strategy("H1+A", &ex.graph, &hw, &model, || {
        let c = h1(&ex.graph, hw.len())?;
        let m = approach_a(&ex.graph, &c, &hw, &weights)?;
        Ok((c, m))
    });
    cmp.run_strategy("criticality B", &ex.graph, &hw, &model, || {
        let c = criticality_pairing(&ex.graph, hw.len())?;
        let m = approach_a(&ex.graph, &c, &hw, &weights)?;
        Ok((c, m))
    });
    cmp.run_strategy("timing", &ex.graph, &hw, &model, || {
        let c = timing_refinement(&ex.graph, 5)?;
        let m = approach_a(&ex.graph, &c, &hw, &weights)?;
        Ok((c, m))
    });
    print!("{cmp}");
    Ok(())
}
